"""Overload management: scheduling, shedding, and QoS (slides 42-44, 47).

A bursty stream overloads a two-operator query.  This example shows the
three levers the tutorial surveys:

1. **Operator scheduling** — FIFO vs Greedy vs Chain queue memory on the
   slide-43 burst pattern;
2. **Load shedding** — random vs semantic shedding and their effect on a
   grouped-count answer (slide 44);
3. **QoS-driven degradation** — Aurora-style utility graphs deciding
   *which* output to shed first (slide 47).

Run:  python examples/overload_management.py
"""

import collections

from repro.core import ListSource, Plan, Record, SimConfig, Simulation
from repro.dsms import latency_qos, loss_qos, shedding_order
from repro.operators import Select
from repro.scheduling import ChainScheduler, FIFOScheduler, GreedyScheduler
from repro.shedding import RandomShedder, SemanticShedder, shed_stream
from repro.workloads import bursty_gaps, take_gaps


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def scheduling_demo() -> None:
    section("Operator scheduling under bursts (slides 42-43)")
    gaps = take_gaps(bursty_gaps(1.0, 5.0, 5.0), 15)
    times, t = [], 0.0
    for g in gaps:
        t += g
        times.append(t)
    rows = [{"v": i, "ts": ts} for i, ts in enumerate(times)]

    def build():
        plan = Plan()
        plan.add_input("S")
        op1 = plan.add(
            Select(lambda r: True, name="op1", selectivity=0.2),
            upstream=["S"],
        )
        op2 = plan.add(
            Select(lambda r: True, name="op2", selectivity=0.0),
            upstream=[op1],
        )
        plan.mark_output(op2, "out")
        return plan

    print(f"{len(rows)} tuples in bursts of 5 (avg rate 0.5/s)")
    print(f"{'scheduler':>10} | {'peak mem':>8} | {'mean mem':>8}")
    for sched in (FIFOScheduler(), GreedyScheduler(), ChainScheduler()):
        sim = Simulation(build(), sched, SimConfig(sample_interval=1.0))
        res = sim.run([ListSource("S", rows, ts_attr="ts")])
        print(f"{sched.name:>10} | {res.memory.max():8.1f} "
              f"| {res.memory.mean():8.2f}")


def shedding_demo() -> None:
    section("Random vs semantic load shedding (slide 44)")
    records = [
        Record({"g": i % 5, "v": i}, ts=float(i), seq=i) for i in range(4000)
    ]
    true_counts = collections.Counter(r["g"] for r in records)
    # The standing query only reports group 0 (a HAVING-style focus).
    print("standing query focuses on group 0; system must shed 50%")
    print(f"{'policy':>10} | {'group-0 count':>13} | {'true':>5} | err")
    for name, shedder in (
        ("random", RandomShedder(0.5, seed=3)),
        (
            "semantic",
            SemanticShedder(
                utility=lambda r: 1.0 if r["g"] == 0 else 0.0,
                drop_rate=0.5,
            ),
        ),
    ):
        kept = shed_stream(records, shedder)
        counts = collections.Counter(r["g"] for r in kept)
        g0 = counts[0]
        if name == "random":
            g0 = g0 / shedder.keep_rate  # unbiased rescaling
        err = abs(g0 - true_counts[0]) / true_counts[0]
        print(f"{name:>10} | {g0:13.1f} | {true_counts[0]:>5} | {err:.3f}")
    print("(semantic shedding keeps the queried group exact; random is "
          "unbiased but noisy)")


def qos_demo() -> None:
    section("QoS-driven shedding order (slide 47, Aurora)")
    dashboards = loss_qos(tolerable_loss=0.4, name="dashboard")
    billing = loss_qos(tolerable_loss=0.05, name="billing")
    alerting = latency_qos(good_until=0.5, zero_at=2.0)
    print("loss-tolerance graphs: dashboard knee at 40%, billing at 5%")
    order = shedding_order(
        [("dashboard", dashboards, 0.0), ("billing", billing, 0.0)]
    )
    print(f"shed first: {order[0]}  (flattest utility slope)")
    print(f"latency QoS: utility at 0.3s = {alerting.utility(0.3):.2f}, "
          f"at 1.5s = {alerting.utility(1.5):.2f}")


def main() -> None:
    scheduling_demo()
    shedding_demo()
    qos_demo()


if __name__ == "__main__":
    main()
