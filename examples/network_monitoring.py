"""Network monitoring with the Gigascope substrate (slides 10-13).

Reproduces the tutorial's two IP-network applications on a synthetic
packet trace:

* **P2P traffic detection** — compares port-based (Netflow-style)
  accounting against GSQL payload inspection; the paper reports payload
  search identifying ~3x more P2P traffic (slide 10).
* **Web client RTT monitoring** — the slide-13 GSQL join of SYN and
  SYN-ACK streams recovering the round-trip-time distribution.
* **Two-level decomposition** — the per-source traffic query split into
  a bounded LFTA and a merging HFTA, with data-reduction statistics
  (slides 37, 54).

Run:  python examples/network_monitoring.py
"""

from repro.core import ListSource, run_plan
from repro.cql import compile_query
from repro.gigascope import TCP, decompose, gigascope_catalog, to_stream_schema
from repro.synopses import GKQuantiles
from repro.workloads import NetflowConfig, PacketGenerator


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def p2p_detection(packets) -> None:
    section("P2P detection: ports vs payload (slide 10)")
    catalog = gigascope_catalog()

    def total_volume(where: str) -> float:
        plan = compile_query(
            f"select sum(length) as vol from TCP where {where}", catalog
        )
        res = run_plan(plan, [ListSource("TCP", packets, ts_attr="ts")])
        rows = res.values()
        return rows[0]["vol"] or 0 if rows else 0

    port_based = total_volume(
        "is_p2p_port(src_port) = true or is_p2p_port(dst_port) = true"
    )
    payload_based = total_volume("matches_p2p_keyword(payload) = true")
    ratio = payload_based / max(port_based, 1)
    print(f"port-based (Netflow-style) P2P volume : {port_based:>10} bytes")
    print(f"payload-based (Gigascope) P2P volume  : {payload_based:>10} bytes")
    print(f"payload/port ratio                    : {ratio:>10.2f}x "
          f"(paper: ~3x)")


def rtt_monitoring(packets) -> None:
    section("Web client RTT monitoring (slides 11, 13)")
    schema = to_stream_schema(TCP)
    catalog = gigascope_catalog()
    catalog.register_stream("tcp_syn", schema)
    catalog.register_stream("tcp_syn_ack", schema)
    plan = compile_query(
        "select S.ts, (A.ts - S.ts) as rtt, S.src_ip "
        "from tcp_syn [range 2] S, tcp_syn_ack [range 2] A "
        "where S.src_ip = A.dst_ip and S.dst_ip = A.src_ip "
        "and S.src_port = A.dst_port and S.dst_port = A.src_port",
        catalog,
    )
    syns = [p for p in packets if p["flags"] == "SYN"]
    acks = [p for p in packets if p["flags"] == "SYN-ACK"]
    res = run_plan(
        plan,
        {
            "tcp_syn": ListSource("tcp_syn", syns, ts_attr="ts"),
            "tcp_syn_ack": ListSource("tcp_syn_ack", acks, ts_attr="ts"),
        },
    )
    rtts = [r["rtt"] for r in res.records()]
    gk = GKQuantiles(0.01)
    gk.extend(rtts)
    print(f"handshakes joined: {len(rtts)}")
    for q in (0.5, 0.9, 0.99):
        print(f"  p{int(q * 100):>2} RTT: {gk.query(q) * 1000:6.1f} ms")
    print(f"(GK summary used {gk.memory()} entries for {len(rtts)} samples "
          f"- the slide-53 engineering point)")


def two_level(packets) -> None:
    section("Two-level LFTA/HFTA decomposition (slides 37, 54)")
    catalog = gigascope_catalog()
    decomposition = decompose(
        "select tb, src_ip, count(*) as pkts, sum(length) as vol "
        "from IPv4 where protocol = 6 group by ts/30 as tb, src_ip",
        catalog,
        max_groups=16,
    )
    print("placement decided by the decomposer:")
    for piece, level in decomposition.placement.items():
        print(f"  {level:>4} <- {piece}")
    result = decomposition.pipeline.run(
        ListSource("IPv4", packets, ts_attr="ts")
    )
    raw = len(packets)
    shipped = decomposition.pipeline.shipped_rows
    print(f"raw packets          : {raw}")
    print(f"rows shipped to HFTA : {shipped} "
          f"({raw / max(shipped, 1):.1f}x reduction)")
    print(f"early LFTA evictions : {decomposition.pipeline.evictions}")
    print(f"final result rows    : {len(result.records())}")


def main() -> None:
    packets = PacketGenerator(NetflowConfig(seed=17)).generate(6000)
    print(f"synthetic trace: {len(packets)} packets "
          f"({packets[-1]['ts']:.1f} time units)")
    p2p_detection(packets)
    rtt_monitoring(packets)
    two_level(packets)


if __name__ == "__main__":
    main()
