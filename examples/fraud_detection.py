"""Telecom fraud detection with Hancock-style signatures (slides 6-8).

The tutorial's first application: track the calling pattern of every
customer line, blend each day's behaviour into a persistent signature,
and raise real-time fraud alerts when today deviates from the profile.

This example also demonstrates the lesson the slide closes with —
"essential to consider I/O issues for data streams" — by comparing
per-element signature updates against Hancock's sorted block processing
under the simulated disk model (slides 21, 56).

Run:  python examples/fraud_detection.py
"""

from repro.hancock import (
    FraudDetector,
    PagedSignatureStore,
    SignatureStore,
    block_cost,
    per_element_cost,
)
from repro.workloads import CDRConfig, CDRGenerator


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def run_detection(days: int = 5, calls_per_day: int = 4000) -> None:
    section(f"Fraud detection over {days} days of call records")
    gen = CDRGenerator(CDRConfig(seed=23))
    detector = FraudDetector(store=SignatureStore(), intl_factor=4.0)
    print(f"{len(gen.fraud_callers)} fraudulent lines hidden among "
          f"{gen.config.n_callers} callers")
    for day in range(days):
        block = gen.generate_sorted_by_origin(calls_per_day)
        alerts = detector.process_day(block)
        flagged = sorted(a["origin"] for a in alerts)
        print(f"day {day}: {len(block)} calls, {len(alerts)} alerts "
              f"-> lines {flagged[:6]}{'...' if len(flagged) > 6 else ''}")

    all_flagged = {a["origin"] for a in detector.alerts}
    hits = all_flagged & gen.fraud_callers
    precision = len(hits) / max(1, len(all_flagged))
    recall = len(hits) / len(gen.fraud_callers)
    print(f"\nsignature store now profiles {len(detector.store)} lines")
    print(f"precision {precision:.2f}, recall {recall:.2f} "
          f"against the injected fraud set")


def show_signature(detector_days: int = 3) -> None:
    section("What a signature looks like (slide 8's mySig)")
    gen = CDRGenerator(CDRConfig(seed=23))
    detector = FraudDetector()
    for _ in range(detector_days):
        detector.process_day(gen.generate_sorted_by_origin(3000))
    some_line = next(iter(detector.store.keys()))
    print(f"line {some_line}: {detector.store.get(some_line)}")


def io_comparison() -> None:
    section("Per-element vs block I/O (slides 6, 21, 56)")
    gen = CDRGenerator(CDRConfig(n_callers=2000, seed=29))
    calls = gen.generate(20000)
    print(f"{len(calls)} calls over {gen.config.n_callers} lines; "
          f"signature store: 64 signatures/page, 8-page cache")
    per_el = per_element_cost(
        calls, PagedSignatureStore(page_size=64, cache_pages=8)
    )
    blocked = block_cost(
        calls, PagedSignatureStore(page_size=64, cache_pages=8)
    )
    print(f"per-element (arrival order) I/O time : {per_el:>10.0f}")
    print(f"Hancock block (sorted by line) I/O   : {blocked:>10.0f}")
    print(f"block processing wins by             : {per_el / blocked:>10.1f}x")


def main() -> None:
    run_detection()
    show_signature()
    io_comparison()


if __name__ == "__main__":
    main()
