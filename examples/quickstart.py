"""Quickstart: the repro stream-processing library in five minutes.

Covers the core workflow surveyed in *Data Stream Query Processing*
(Koudas & Srivastava, ICDE 2005):

1. declare a stream schema,
2. run a continuous query — programmatically and in CQL,
3. scope operators with windows,
4. join two streams,
5. watch resource behaviour under a scheduler in simulated time.

Run:  python examples/quickstart.py
"""

from repro.core import Field, ListSource, Plan, Schema, SimConfig, Simulation, run_plan
from repro.cql import Catalog, compile_query
from repro.operators import AggSpec, Select, WindowedAggregate, WindowJoin
from repro.scheduling import ChainScheduler, FIFOScheduler
from repro.windows import TimeWindow, TumblingWindow


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    # ------------------------------------------------------------------
    section("1. A stream schema and some data")
    traffic = Schema(
        [
            Field("ts", float),
            Field("src_ip", int),
            Field("length", int, bounded=True, domain=(40, 1500)),
        ],
        ordering="ts",
        name="Traffic",
    )
    rows = [
        {"ts": float(i), "src_ip": i % 4, "length": 100 + (i % 6) * 250}
        for i in range(60)
    ]
    print(f"schema: {traffic}")
    print(f"{len(rows)} packets, first: {rows[0]}")

    # ------------------------------------------------------------------
    section("2a. A query built from operators")
    plan = Plan()
    plan.add_input("Traffic")
    big = plan.add(
        Select(lambda r: r["length"] > 512, name="big"), upstream=["Traffic"]
    )
    per_minute = plan.add(
        WindowedAggregate(
            TumblingWindow(10.0),
            ["src_ip"],
            [AggSpec("n", "count"), AggSpec("bytes", "sum", "length")],
        ),
        upstream=[big],
    )
    plan.mark_output(per_minute, "out")
    result = run_plan(plan, [ListSource("Traffic", rows, ts_attr="ts")])
    for record in result.records()[:4]:
        print(record.values)

    # ------------------------------------------------------------------
    section("2b. The same query in CQL/GSQL")
    catalog = Catalog()
    catalog.register_stream("Traffic", traffic)
    cql_plan = compile_query(
        "select tb, src_ip, count(*) as n, sum(length) as bytes "
        "from Traffic where length > 512 group by ts/10 as tb, src_ip",
        catalog,
    )
    cql_result = run_plan(
        cql_plan, [ListSource("Traffic", rows, ts_attr="ts")]
    )
    for row in cql_result.values()[:4]:
        print(row)

    # ------------------------------------------------------------------
    section("3. Windows bound state (slide 26)")
    sliding = compile_query(
        "select count(*) as in_window from Traffic [rows 5]", catalog
    )
    out = run_plan(sliding, [ListSource("Traffic", rows, ts_attr="ts")])
    print("per-arrival window sizes:", [r["in_window"] for r in out.records()][:8])

    # ------------------------------------------------------------------
    section("4. A window join (slides 30-32)")
    join = WindowJoin(
        left_window=TimeWindow(3.0),
        right_window=TimeWindow(3.0),
        left_keys=["src_ip"],
        right_keys=["src_ip"],
    )
    jplan = Plan()
    jplan.add_input("A")
    jplan.add_input("B")
    jplan.add(join, upstream=["A", "B"])
    jplan.mark_output(join, "out")
    a_rows = [{"ts": float(i), "src_ip": i % 4, "length": 99} for i in range(20)]
    b_rows = [{"ts": i + 0.5, "src_ip": i % 4, "length": 99} for i in range(20)]
    b_rows = [dict(r, other=1) for r in b_rows]
    for r in b_rows:
        del r["length"]
    joined = run_plan(
        jplan,
        {
            "A": ListSource("A", a_rows, ts_attr="ts"),
            "B": ListSource("B", b_rows, ts_attr="ts"),
        },
    )
    print(f"join produced {len(joined.records())} pairs within the window")

    # ------------------------------------------------------------------
    section("5. Resource behaviour under schedulers (slide 43)")
    for scheduler in (FIFOScheduler(), ChainScheduler()):
        sim_plan = Plan()
        sim_plan.add_input("S")
        op1 = sim_plan.add(
            Select(lambda r: True, name="op1", selectivity=0.2),
            upstream=["S"],
        )
        op2 = sim_plan.add(
            Select(lambda r: True, name="op2", selectivity=0.0),
            upstream=[op1],
        )
        sim_plan.mark_output(op2, "out")
        burst = [{"v": i, "ts": float(i)} for i in range(5)]
        sim = Simulation(sim_plan, scheduler, SimConfig(sample_interval=1.0))
        res = sim.run([ListSource("S", burst, ts_attr="ts")])
        print(
            f"{scheduler.name:>6}: memory over time = "
            f"{[round(v, 1) for v in res.memory.values[:5]]}"
        )
    print("\n(The FIFO/Chain rows reproduce the slide-43 table exactly.)")


if __name__ == "__main__":
    main()
