"""Punctuation semantics over an auction stream (slide 28, TMSF03).

The tutorial's canonical punctuation example: bids arrive for many
overlapping auctions; each auction's close is announced by an in-band
punctuation.  Punctuation-aware operators can then:

* emit each auction's result the moment it closes (not at end of
  stream — streams never end),
* purge the closed auction's state immediately, keeping memory bounded
  by the number of *open* auctions rather than all auctions ever seen.

The example contrasts the punctuated plan with a blocking aggregate that
ignores punctuations, measuring result latency and state held.

Run:  python examples/auction_analytics.py
"""

from repro.core import Punctuation, Record
from repro.operators import AggSpec, Aggregate, DropPunctuations, WindowedAggregate
from repro.operators.base import run_chain
from repro.windows import PunctuationWindow
from repro.workloads import AuctionConfig, AuctionGenerator


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    generator = AuctionGenerator(AuctionConfig(n_auctions=30, open_auctions=5))
    elements = generator.elements()
    bids = sum(1 for e in elements if isinstance(e, Record))
    puncts = sum(1 for e in elements if isinstance(e, Punctuation))
    print(f"auction stream: {bids} bids, {puncts} close punctuations, "
          f"{generator.config.open_auctions} auctions open at a time")

    # ------------------------------------------------------------------
    section("Punctuation-aware aggregation (slide 28)")
    punctuated = WindowedAggregate(
        PunctuationWindow(("auction",)),
        ["auction"],
        [
            AggSpec("winning_bid", "max", "price"),
            AggSpec("bids", "count"),
            AggSpec("bidders", "count_distinct", "bidder"),
        ],
    )
    results_positions = []
    peak_state = 0.0
    out_count = 0
    for i, el in enumerate(elements):
        for result in punctuated.process(el, 0):
            if isinstance(result, Record):
                out_count += 1
                results_positions.append(i)
        peak_state = max(peak_state, punctuated.memory())
    leftovers = punctuated.flush()
    print(f"results emitted mid-stream : {out_count} (all {out_count} "
          f"auctions closed by punctuation)")
    print(f"results waiting for flush  : {len(leftovers)}")
    print(f"peak group state           : {peak_state:.0f} "
          f"(bounded by open auctions)")
    mean_pos = sum(results_positions) / len(results_positions)
    print(f"mean emission position     : element {mean_pos:.0f} of "
          f"{len(elements)}")

    # ------------------------------------------------------------------
    section("Blocking aggregation, punctuations stripped (the contrast)")
    blocking = Aggregate(
        ["auction"],
        [
            AggSpec("winning_bid", "max", "price"),
            AggSpec("bids", "count"),
            AggSpec("bidders", "count_distinct", "bidder"),
        ],
    )
    chain = [DropPunctuations(), blocking]
    mid_stream = 0
    peak_state_blocking = 0.0
    for el in elements:
        produced = []
        step = [el]
        for op in chain:
            nxt = []
            for e in step:
                nxt.extend(op.process(e, 0))
            step = nxt
        mid_stream += sum(1 for e in step if isinstance(e, Record))
        peak_state_blocking = max(peak_state_blocking, blocking.memory())
    final = blocking.flush()
    print(f"results emitted mid-stream : {mid_stream}")
    print(f"results only at end        : {len(final)}")
    print(f"peak group state           : {peak_state_blocking:.0f} "
          f"(grows with every auction ever seen)")

    # ------------------------------------------------------------------
    section("Winners")
    punctuated.reset()
    out = run_chain([WindowedAggregate(
        PunctuationWindow(("auction",)),
        ["auction"],
        [AggSpec("winning_bid", "max", "price")],
    )], elements)
    top = sorted(
        (r for r in out if isinstance(r, Record)),
        key=lambda r: -r["winning_bid"],
    )[:5]
    for r in top:
        print(f"  auction {r['auction']:>3}: winning bid {r['winning_bid']:8.2f}")


if __name__ == "__main__":
    main()
