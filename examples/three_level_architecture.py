"""The end-to-end three-level architecture (slides 14-15, 54).

Two observation points run resource-limited low-level DSMSs (bounded
LFTA tables), a high-level DSMS merges their partial results, and a
DBMS stores the final rows for audit queries — including the slide-15
point that the database can *audit* the stream system's answers.

Also shows the standing-query facade: continuous CQL queries receiving
results incrementally as elements are pushed (slide 16's persistent
queries over transient data).

Run:  python examples/three_level_architecture.py
"""

from repro.aggregates import AggSpec
from repro.dsms import StreamSystem, ThreeLevelPipeline
from repro.windows import TumblingWindow
from repro.workloads import NetflowConfig, PacketGenerator, packet_schema


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def three_level_demo() -> None:
    section("Low-level DSMS -> high-level DSMS -> DBMS")
    generator = PacketGenerator(NetflowConfig(seed=41))
    packets = generator.generate(8000)
    midpoint = len(packets) // 2
    pipeline = ThreeLevelPipeline(
        n_points=2,
        window=TumblingWindow(20.0),
        group_attrs=["src_ip"],
        aggregates=[
            AggSpec("pkts", "count"),
            AggSpec("bytes", "sum", "length"),
        ],
        max_groups_low=16,
        point_filter=lambda r: r["protocol"] == 6,
    )
    rows = pipeline.run([packets[:midpoint], packets[midpoint:]])
    s = pipeline.stats
    print(f"raw packets at observation points : {s.raw_tuples}")
    print(f"partial rows shipped upward       : {s.low_level_out} "
          f"({s.reduction_low():.1f}x reduction)")
    print(f"final rows at the high level      : {s.high_level_out}")
    print(f"rows stored in the DBMS           : {s.db_rows} "
          f"({s.reduction_total():.1f}x total reduction)")

    section("Auditing the stream answer at the DBMS (slide 15)")
    audit = pipeline.audit(
        "select tb, sum(pkts) as pkts, sum(bytes) as bytes "
        "from stream_results group by tb"
    )
    for row in audit[:5]:
        print(row)
    total = sum(r["pkts"] for r in audit)
    print(f"audit total = {total} packets "
          f"(equals the stream system's own count)")


def standing_query_demo() -> None:
    section("Standing queries over a live stream (slide 16)")
    system = StreamSystem()
    system.register_stream("Traffic", packet_schema())
    heavy_hits = []
    system.submit(
        "heavy",
        "select tb, src_ip, count(*) as n from Traffic "
        "group by ts/10 as tb, src_ip having count(*) > 40",
        callback=lambda r: heavy_hits.append((r["tb"], r["src_ip"], r["n"])),
    )
    system.submit("all_count", "select src_ip, count(*) as n from Traffic group by src_ip")
    packets = PacketGenerator(NetflowConfig(seed=43)).generate(4000)
    system.push_many("Traffic", packets)
    print(f"pushed {system.pushed} packets; "
          f"{len(heavy_hits)} heavy-hitter rows streamed out so far")
    for hit in heavy_hits[:5]:
        print(f"  bucket {hit[0]}, src_ip {hit[1]}: {hit[2]} packets")
    results = system.finish_all()
    print(f"on shutdown, 'all_count' flushed "
          f"{len(results['all_count'])} per-source totals")


def main() -> None:
    three_level_demo()
    standing_query_demo()


if __name__ == "__main__":
    main()
