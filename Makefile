# Convenience targets for the repro DSMS.

.PHONY: install test bench examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

all: test bench
