"""M11 — Time-machine overhead and offline scheduler payoff.

Two acceptance gates:

1. **Recording overhead** — journaling every ingress element, feedback
   exchange, and periodic checkpoint must not dominate execution:
   ``record_run`` end-to-end wall time <= ``OVERHEAD_GATE`` x a plain
   ``run_plan`` of the same workload, and the replayed outputs must be
   bit-identical to the recorded ones (a benchmark of an unfaithful
   tape would measure nothing).

2. **Offline scheduler experimentation** — replaying one recorded
   bursty selective-chain trace through :class:`ReplayBench`, the
   learning-automata scheduler (arXiv:1110.1700) must hold mean queue
   memory at least ``MEMORY_GATE`` x below FIFO's.  Makespan is
   work-conserving-invariant on a fully drained trace, so memory is
   the discriminating metric (slide 43's argument).

Timings interleave record and plain runs round-robin and keep best-of,
so machine drift hits both equally.  ``--smoke`` runs reduced gates
(CI); ``--check-json`` strict-parses committed baselines; no flag
records ``BENCH_m11.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import interleaved_best, write_baseline  # noqa: E402

from repro.core import ListSource, Punctuation, Record, run_plan
from repro.core.graph import linear_plan
from repro.operators import Select
from repro.replay import ReplayBench, TimeMachine, record_run

N = 20000
BATCH = 64
BURST = 200
GAP = 600.0
PUNCT_EVERY = 200
CHECKPOINT_EVERY = 4
OVERHEAD_GATE = 2.0  # record_run may cost at most 2x a plain run
MEMORY_GATE = 1.2  # fifo mean memory >= 1.2x learning-automata
REPO_ROOT = Path(__file__).resolve().parent.parent


def _build():
    """Cheap 10%-selective sieve in front of a 10x-cost filter: the
    chain whose backlog behaviour separates depth-first (FIFO) from
    release-rate-aware service orders."""
    return linear_plan(
        "in",
        [
            Select(
                lambda r: r["v"] % 10 == 0, name="sieve", cost_per_tuple=1.0
            ),
            Select(
                lambda r: r["v"] % 20 == 0, name="heavy",
                cost_per_tuple=10.0,
            ),
        ],
        "out",
    )


def _trace(n: int) -> list:
    """Bursts of ``BURST`` back-to-back arrivals separated by idle gaps
    — the drifting-load shape the learning automaton is built for."""
    elements, t = [], 0.0
    for i in range(n):
        if i % BURST == 0 and i:
            t += GAP
        t += 0.01
        elements.append(Record({"v": i, "ts": t}, ts=t, seq=i))
        if (i + 1) % PUNCT_EVERY == 0:
            elements.append(Punctuation.time_bound("ts", t, ts=t))
    return elements


def _overhead(n: int, repeats: int) -> dict:
    """Best-of wall time: plain run vs recorded run, plus fidelity."""
    elements = _trace(n)
    state: dict = {}

    def plain():
        state["plain"] = run_plan(
            _build(), {"in": ListSource("in", elements)}, batch_size=BATCH
        )

    def recorded():
        state["result"], state["log"] = record_run(
            _build(),
            {"in": ListSource("in", elements)},
            batch_size=BATCH,
            checkpoint_every=CHECKPOINT_EVERY,
        )

    best = interleaved_best(
        {"plain": plain, "recorded": recorded}, repeats=repeats
    )
    if state["result"].outputs != state["plain"].outputs:
        raise SystemExit("recorded run diverged from the plain run")
    replayed = TimeMachine(_build, state["log"]).replay()
    for out, want in state["result"].outputs.items():
        if replayed.outputs[out] != want:
            raise SystemExit(
                f"replay diverged from the recording on output {out!r}"
            )
    return {
        "e2e_seconds_best": {k: round(v, 6) for k, v in best.items()},
        "overhead_ratio": round(best["recorded"] / best["plain"], 4),
        "n_epochs": state["log"].n_epochs,
        "log": state["log"],
    }


def _scheduler_payoff(log) -> dict:
    """Replay the recorded trace under every scheduler; gate on the
    fifo / learning-automata mean-memory ratio."""
    bench = ReplayBench(log, _build)
    by = ReplayBench.by_name(bench.run())
    ratio = by["fifo"].mean_memory / by["learning_automata"].mean_memory
    return {
        "schedulers": {
            name: {
                "mean_memory": round(report.mean_memory, 2),
                "peak_memory": round(report.peak_memory, 2),
                "mean_latency": round(report.mean_latency, 2),
                "makespan": round(report.makespan, 2),
            }
            for name, report in sorted(by.items())
        },
        "memory_ratio_fifo_over_la": round(ratio, 4),
    }


def compare(n: int = N, repeats: int = 3) -> dict:
    overhead = _overhead(n, repeats)
    log = overhead.pop("log")
    payoff = _scheduler_payoff(log)
    return {
        "n_tuples": n,
        "batch_size": BATCH,
        "burst": BURST,
        "checkpoint_every": CHECKPOINT_EVERY,
        **overhead,
        **payoff,
    }


def _gated_compare(n: int, repeats: int, attempts: int = 3) -> dict:
    """Re-measure before failing the overhead gate (wall-clock timing
    on shared CI machines; the memory ratio is deterministic)."""
    payload: dict = {}
    for _ in range(attempts):
        payload = compare(n, repeats)
        if payload["overhead_ratio"] <= OVERHEAD_GATE:
            break
    return payload


def smoke(n: int = 6000, repeats: int = 3) -> dict:
    payload = _gated_compare(n, repeats)
    if payload["overhead_ratio"] > OVERHEAD_GATE:
        raise SystemExit(
            f"recording overhead is {payload['overhead_ratio']:.2f}x "
            f"(gate: <= {OVERHEAD_GATE}x)"
        )
    ratio = payload["memory_ratio_fifo_over_la"]
    if ratio < MEMORY_GATE:
        raise SystemExit(
            f"learning-automata memory win over fifo is {ratio:.2f}x "
            f"(gate: >= {MEMORY_GATE}x)"
        )
    return payload


def check_committed_json() -> list[str]:
    """Strict-parse every committed BENCH_*.json baseline."""
    paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        raise SystemExit("no BENCH_*.json baselines found")

    def refuse(constant: str):
        raise SystemExit(
            f"{path}: contains non-strict JSON constant {constant!r}"
        )

    for path in paths:
        json.loads(path.read_text(), parse_constant=refuse)
    return [p.name for p in paths]


# -- pytest entry point -----------------------------------------------------


def test_m11_replay(report):
    emit, table = report
    payload = _gated_compare(N, repeats=3)
    table(
        ["scheduler", "mean mem", "peak mem", "mean latency"],
        [
            [
                name,
                stats["mean_memory"],
                stats["peak_memory"],
                stats["mean_latency"],
            ]
            for name, stats in payload["schedulers"].items()
        ],
        title="M11: schedulers on the recorded bursty trace",
    )
    emit(
        f"(recording overhead {payload['overhead_ratio']}x, "
        f"fifo/la memory ratio "
        f"{payload['memory_ratio_fifo_over_la']}x)"
    )
    assert payload["overhead_ratio"] <= OVERHEAD_GATE
    assert payload["memory_ratio_fifo_over_la"] >= MEMORY_GATE


# -- baseline recording -----------------------------------------------------


def record_baseline(path: str | Path | None = None) -> dict:
    payload = compare(N, repeats=3)
    baseline = {f"m11_{k}": v for k, v in payload.items()}
    return write_baseline("BENCH_m11.json", baseline, path)


if __name__ == "__main__":
    if "--check-json" in sys.argv:
        checked = check_committed_json()
        print(f"strict-JSON ok: {', '.join(checked)}")
    elif "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print(
            f"smoke ok: <= {OVERHEAD_GATE}x recording overhead, "
            f">= {MEMORY_GATE}x fifo/la memory ratio"
        )
    else:
        print(json.dumps(record_baseline(), indent=2))
