"""E6 — Gigascope two-level partial aggregation (slide 37).

"Gigascope applies partial aggregation on low-level data streams:
bounded number of groups maintained at low level, unbounded number of
groups maintainable at high level."

The bench runs the slide's per-source per-minute traffic query through
the LFTA/HFTA pipeline, sweeping the LFTA group-table bound, and
reports:

* rows shipped across the LFTA→HFTA boundary (data reduction),
* early evictions forced by the bound,
* correctness: HFTA results must equal single-level aggregation for
  every bound.

Expected reproduction (shape): shipped rows and evictions fall as the
table grows; answers are identical at every point; even the tightest
bound ships far fewer rows than raw packets.
"""

import pytest

from repro.aggregates import AggSpec
from repro.core import ListSource, run_plan
from repro.cql import compile_query
from repro.gigascope import TwoLevelAggregation, gigascope_catalog
from repro.windows import TumblingWindow
from repro.workloads import NetflowConfig, PacketGenerator


def specs():
    return [AggSpec("n", "count"), AggSpec("vol", "sum", "length")]


def reference_rows(packets):
    plan = compile_query(
        "select tb, src_ip, count(*) as n, sum(length) as vol "
        "from IPv4 group by ts/30 as tb, src_ip",
        gigascope_catalog(),
    )
    res = run_plan(plan, [ListSource("IPv4", packets, ts_attr="ts")])
    return sorted(
        (r["tb"], r["src_ip"], r["n"], r["vol"]) for r in res.records()
    )


def test_e6_lfta_bound_sweep(benchmark, report):
    emit, table = report
    packets = PacketGenerator(NetflowConfig(seed=19)).generate(5000)
    reference = reference_rows(packets)

    def run():
        rows = []
        for max_groups in (2, 4, 8, 16, 64, 256):
            pipeline = TwoLevelAggregation(
                "IPv4",
                TumblingWindow(30.0),
                ["src_ip"],
                specs(),
                max_groups=max_groups,
            )
            res = pipeline.run(ListSource("IPv4", packets, ts_attr="ts"))
            got = sorted(
                (r["tb"], r["src_ip"], r["n"], r["vol"])
                for r in res.records()
            )
            rows.append(
                [
                    max_groups,
                    pipeline.shipped_rows,
                    len(packets) / pipeline.shipped_rows,
                    pipeline.evictions,
                    got == reference,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        [
            "LFTA max groups",
            "rows shipped",
            "reduction vs raw",
            "early evictions",
            "answers exact",
        ],
        rows,
        title=f"E6 two-level aggregation over {len(packets)} packets",
    )
    assert all(r[4] for r in rows), "HFTA must always recover exact answers"
    shipped = [r[1] for r in rows]
    assert shipped == sorted(shipped, reverse=True), (
        "bigger LFTA tables must ship fewer rows"
    )
    assert shipped[0] < len(packets), "even a 2-group LFTA reduces data"
    assert rows[-1][3] == 0, "a large table needs no early evictions"
