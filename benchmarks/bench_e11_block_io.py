"""E11 — Per-element vs Hancock block processing I/O (slides 6, 21, 56).

"Signature computation is I/O intensive" (slide 6); "block processing:
multiple passes to optimize I/O cost" (slide 21); "Hancock pays
attention to I/O issues when computing signatures, other stream systems
do not" (slide 56).

The bench updates per-line signatures for a day of call records under
the simulated paged store, comparing arrival-order (per-element) access
with Hancock's sort-by-line block discipline, sweeping block size and
cache size.

Expected reproduction (shape): block processing wins by 1-2 orders of
magnitude.  Per-element cost is driven by call volume (each arrival is
a potential random page miss) while block cost is driven by page count
(one sequential pass), so the advantage is largest when many calls
share few pages and narrows as the cache approaches the working set.
"""

import pytest

from repro.hancock import PagedSignatureStore, block_cost, per_element_cost
from repro.workloads import CDRConfig, CDRGenerator


def make_calls(n_callers, n_calls, seed=37):
    gen = CDRGenerator(CDRConfig(n_callers=n_callers, seed=seed))
    return gen.generate(n_calls)


def store():
    # Small cache relative to the signature working set, so arrival-order
    # access genuinely thrashes (the slide-6 regime).
    return PagedSignatureStore(page_size=16, cache_pages=4)


def test_e11_discipline_comparison(benchmark, report):
    emit, table = report

    def run():
        rows = []
        for n_callers in (200, 1000, 4000):
            calls = make_calls(n_callers, 12000)
            per_el = per_element_cost(calls, store())
            blocked = block_cost(calls, store())
            rows.append([n_callers, per_el, blocked, per_el / blocked])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["distinct lines", "per-element I/O", "block I/O", "advantage"],
        rows,
        title="E11 I/O cost of signature updates (12000 calls/day)",
    )
    advantages = [r[3] for r in rows]
    assert all(a > 3 for a in advantages), "block must win clearly"
    # Per-element cost scales with the number of *calls* (every arrival
    # risks a random page miss); block cost scales with the number of
    # *pages* (one sequential pass).  With calls fixed, more distinct
    # lines mean more pages per block pass, so the advantage narrows —
    # but block processing must stay clearly ahead throughout.
    per_element = [r[1] for r in rows]
    assert max(per_element) / min(per_element) < 2.5, (
        "per-element cost is driven by call volume, not line count"
    )


def test_e11_cache_sweep(benchmark, report):
    emit, table = report
    calls = make_calls(1500, 10000)

    def run():
        rows = []
        for cache_pages in (2, 8, 32, 128):
            s = PagedSignatureStore(page_size=16, cache_pages=cache_pages)
            per_el = per_element_cost(calls, s)
            s2 = PagedSignatureStore(page_size=16, cache_pages=cache_pages)
            blocked = block_cost(calls, s2)
            rows.append([cache_pages, per_el, blocked, per_el / blocked])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["cache pages", "per-element I/O", "block I/O", "advantage"],
        rows,
        title="E11b cache size vs access discipline",
    )
    per_el_costs = [r[1] for r in rows]
    assert per_el_costs == sorted(per_el_costs, reverse=True), (
        "more cache monotonically helps random access"
    )
    # The crossover story: with a cache holding the whole working set
    # (1500 lines / 16 per page < 128 pages), disciplines converge.
    assert rows[-1][3] < rows[0][3]
