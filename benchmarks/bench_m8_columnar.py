"""M8 — Columnar vectorized execution throughput (wall-clock).

Measures tuples/sec of the three execution tiers on vectorizable
(``Col``-expression) variants of the two standard workloads:

* **tuple** — one element per dispatch (the M1 baseline path);
* **row-batch** — micro-batched row dispatch (the M2 tier), at
  ``batch_size`` in {256, 1024, 4096};
* **columnar** — struct-of-arrays ``ColumnBatch`` dispatch through the
  operators' ``process_columns`` kernels, same batch sizes; and
* **columnar+fused** — the same chain collapsed by
  :func:`repro.columnar.fuse_chain` into one :class:`FusedOperator`
  (masks and projections composed batch-local, no per-operator queue
  hops).

The pure-Python column backend is the headline (the engine must not
need numpy); when numpy is importable the fused numpy legs are recorded
next to it.  All tiers are checked element-identical before any number
is reported — the wider oracle is ``tests/columnar/test_differential.py``.

Acceptance (the M8 gate, checked at batch_size=4096, the columnar
operating point): columnar >= 2x row-batch and >= 5x tuple-at-a-time on
the CDR plan with the pure-Python backend.

Run as a script to record ``BENCH_m8.json`` (add ``--smoke`` for the
tiny CI variant that checks the gate end-to-end in seconds).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import interleaved_best, write_baseline  # noqa: E402

from repro.columnar import HAVE_NUMPY, Col, fuse_chain
from repro.core import ListSource, run_plan
from repro.core.graph import linear_plan
from repro.operators import AggSpec, Aggregate, Select, WindowedAggregate
from repro.operators.project import Project
from repro.windows import TumblingWindow
from repro.workloads import CDRGenerator, PacketGenerator

BATCH_SIZES = [256, 1024, 4096]
GATE_BATCH = 4096
N = 30000


def cdr_ops():
    """The CDR acceptance chain with a vectorizable ``Col`` predicate."""
    return [
        Select(Col("is_intl"), name="intl"),
        Project(
            {
                "origin": "origin",
                "connect_ts": "connect_ts",
                "duration": "duration",
            },
            name="proj",
        ),
        Aggregate(
            ["origin"],
            [AggSpec("n", "count"), AggSpec("talk", "sum", "duration")],
            name="per_origin",
        ),
    ]


def netflow_ops():
    return [
        Select(Col("length") > 512, name="big"),
        Project(
            {"ts": "ts", "src_ip": "src_ip", "length": "length"},
            name="proj",
        ),
        WindowedAggregate(
            TumblingWindow(10.0),
            ["src_ip"],
            [AggSpec("n", "count"), AggSpec("vol", "sum", "length")],
            name="per_bucket",
        ),
    ]


def _plan(make_ops, input_name: str, fused: bool = False):
    ops = make_ops()
    return linear_plan(input_name, fuse_chain(ops) if fused else ops)


def _cdr_source(n: int = N) -> ListSource:
    return ListSource(
        "calls", CDRGenerator().generate(n), ts_attr="connect_ts"
    )


def _netflow_source(n: int = N) -> ListSource:
    return ListSource(
        "Traffic", PacketGenerator().generate(n), ts_attr="ts"
    )


WORKLOADS = {
    "cdr": (cdr_ops, "calls", _cdr_source),
    "netflow": (netflow_ops, "Traffic", _netflow_source),
}


def _tiers(make_ops, input_name, source, batch_size):
    """The named runs for one (workload, batch_size) cell.

    Returned as closures so :func:`interleaved_best` can round-robin
    them — machine drift then biases every tier equally instead of
    flattering whichever representation runs on the quiet stretch.
    """
    plain = _plan(make_ops, input_name)
    fused = _plan(make_ops, input_name, fused=True)
    runs = {
        "row_batch": lambda: run_plan(
            plain, [source], batch_size=batch_size
        ),
        "columnar": lambda: run_plan(
            plain,
            [source],
            batch_size=batch_size,
            representation="columnar",
            column_backend="python",
        ),
        "columnar_fused": lambda: run_plan(
            fused,
            [source],
            batch_size=batch_size,
            representation="columnar",
            column_backend="python",
        ),
    }
    if HAVE_NUMPY:
        runs["columnar_numpy"] = lambda: run_plan(
            plain,
            [source],
            batch_size=batch_size,
            representation="columnar",
            column_backend="numpy",
        )
        runs["columnar_fused_numpy"] = lambda: run_plan(
            fused,
            [source],
            batch_size=batch_size,
            representation="columnar",
            column_backend="numpy",
        )
    return runs


def _check_tiers_identical(make_ops, input_name, source) -> None:
    """Every tier must emit byte-for-byte the tuple path's outputs."""
    want = run_plan(_plan(make_ops, input_name), [source], batch_size=1)
    for bs in BATCH_SIZES:
        for name, fn in _tiers(make_ops, input_name, source, bs).items():
            got = fn()
            if got.outputs != want.outputs:
                raise AssertionError(
                    f"{name} @ batch_size={bs} diverged from the "
                    f"tuple-at-a-time output"
                )


def columnar_scaling(n: int = N, repeats: int = 3) -> dict:
    """Tuples/sec per workload per tier per batch size (the M8 table).

    The tuple tier has no batch-size axis; it is measured once per
    workload (interleaved into the first ladder so it shares the same
    noise regime as the batched tiers).
    """
    results: dict = {}
    for wname, (make_ops, input_name, make_source) in WORKLOADS.items():
        source = make_source(n)
        _check_tiers_identical(make_ops, input_name, source)
        per_tier: dict[str, dict[str, float]] = {}
        tuple_tps = None
        for bs in BATCH_SIZES:
            runs = _tiers(make_ops, input_name, source, bs)
            if tuple_tps is None:
                plain = _plan(make_ops, input_name)
                runs = {
                    "tuple": lambda: run_plan(plain, [source], batch_size=1),
                    **runs,
                }
            best = interleaved_best(runs, repeats=repeats, warmup=1)
            if "tuple" in best:
                tuple_tps = round(n / best.pop("tuple"), 1)
            for tier, seconds in best.items():
                per_tier.setdefault(tier, {})[str(bs)] = round(
                    n / seconds, 1
                )
        results[wname] = {"tuple": tuple_tps, **per_tier}
    return results


def _gate_ratios(scaling: dict) -> tuple[float, float]:
    """(columnar/row-batch, columnar/tuple) on CDR at the gate size."""
    cdr = scaling["cdr"]
    col = cdr["columnar"][str(GATE_BATCH)]
    return col / cdr["row_batch"][str(GATE_BATCH)], col / cdr["tuple"]


# -- pytest entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def cdr_source():
    return _cdr_source()


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("tier", ["row_batch", "columnar", "columnar_fused"])
def test_m8_cdr_tier_throughput(benchmark, cdr_source, tier, batch_size):
    make_ops, input_name, _ = WORKLOADS["cdr"]
    run = _tiers(make_ops, input_name, cdr_source, batch_size)[tier]
    result = benchmark(run)
    assert result.records()


def test_m8_columnar_report(report):
    """The M8 table: tuples/sec per tier, plus the 2x/5x gate."""
    emit, table = report
    scaling = columnar_scaling(n=N, repeats=3)
    tiers = [t for t in scaling["cdr"] if t != "tuple"]
    rows = []
    for wname, by_tier in scaling.items():
        rows.append([wname, "tuple"] + [by_tier["tuple"]] * len(BATCH_SIZES))
        for tier in tiers:
            rows.append(
                [wname, tier]
                + [by_tier[tier][str(bs)] for bs in BATCH_SIZES]
            )
    table(
        ["workload", "tier"] + [f"bs={bs} tup/s" for bs in BATCH_SIZES],
        rows,
        title="M8: columnar execution throughput (python backend"
        + (" + numpy legs" if HAVE_NUMPY else "; numpy absent") + ")",
    )
    emit(
        "(differential suite tests/columnar/test_differential.py proves "
        "columnar/fused outputs identical across the plan registry)"
    )
    vs_rb, vs_tuple = _gate_ratios(scaling)
    emit(
        f"gate @ bs={GATE_BATCH}: columnar = {vs_rb:.2f}x row-batch, "
        f"{vs_tuple:.2f}x tuple (need >= 2x / >= 5x)"
    )
    assert vs_rb >= 2.0, (
        f"columnar @ bs={GATE_BATCH} is only {vs_rb:.2f}x row-batch on "
        f"the CDR plan (expected >= 2x, pure-Python backend)"
    )
    assert vs_tuple >= 5.0, (
        f"columnar @ bs={GATE_BATCH} is only {vs_tuple:.2f}x tuple-at-a-"
        f"time on the CDR plan (expected >= 5x, pure-Python backend)"
    )


# -- baseline recording ----------------------------------------------------


def record_baseline(path: str | Path | None = None, n: int = N) -> dict:
    """Write the M8 columnar baseline for future PRs to diff against."""
    scaling = columnar_scaling(n=n, repeats=3)
    vs_rb, vs_tuple = _gate_ratios(scaling)
    baseline = {
        "n_tuples": n,
        "batch_sizes": BATCH_SIZES,
        "gate_batch_size": GATE_BATCH,
        "column_backend": "python",
        "numpy_available": HAVE_NUMPY,
        "m8_tuples_per_sec": scaling,
        "m8_cdr_columnar_vs_row_batch": round(vs_rb, 2),
        "m8_cdr_columnar_vs_tuple": round(vs_tuple, 2),
    }
    return write_baseline("BENCH_m8.json", baseline, path)


def smoke(n: int = 16384) -> dict:
    """Tiny CI variant: equality across every tier at every batch size,
    then the >= 2x-over-row-batch gate at the operating point."""
    make_ops, input_name, make_source = WORKLOADS["cdr"]
    source = make_source(n)
    _check_tiers_identical(make_ops, input_name, source)
    plain = _plan(make_ops, input_name)
    runs = {
        "tuple": lambda: run_plan(plain, [source], batch_size=1),
        **_tiers(make_ops, input_name, source, GATE_BATCH),
    }
    best = interleaved_best(runs, repeats=3, warmup=1)
    tps = {name: round(n / s, 1) for name, s in best.items()}
    vs_rb = tps["columnar"] / tps["row_batch"]
    if vs_rb < 2.0:
        raise AssertionError(
            f"smoke: columnar @ bs={GATE_BATCH} is only {vs_rb:.2f}x "
            f"row-batch on the CDR plan (expected >= 2x)"
        )
    return {
        "n_tuples": n,
        "batch_size": GATE_BATCH,
        "tuples_per_sec": tps,
        "columnar_vs_row_batch": round(vs_rb, 2),
        "columnar_vs_tuple": round(tps["columnar"] / tps["tuple"], 2),
        "outputs_identical": True,
    }


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print("smoke ok: all tiers identical, columnar >= 2x row-batch")
    else:
        recorded = record_baseline()
        print(json.dumps(recorded, indent=2))
