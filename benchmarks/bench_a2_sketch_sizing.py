"""Ablation A2 — Count-Min shape: width vs depth at a fixed space budget.

The synopsis substrate (E10) sizes Count-Min from (ε, δ); this ablation
asks how the *shape* of a fixed cell budget should be split.  Theory:
width controls the additive error magnitude (ε = e/width), depth only
the failure probability (δ = e^-depth) — so at fixed space, wide and
shallow should dominate average error, with depth 1 occasionally
catastrophic.

Also sweeps GK's compress trigger implicitly via epsilon, reporting the
space/error frontier the slide-53 engineering point lives on.
"""

import collections

import pytest

from repro.synopses import CountMinSketch, GKQuantiles
from repro.workloads import ZipfGenerator

BUDGET = 2048  # total counters
N = 20000


def stream(seed=23):
    return ZipfGenerator(3000, 1.05, seed=seed).sample_many(N)


def test_a2_countmin_shape(benchmark, report):
    emit, table = report
    keys = stream()
    truth = collections.Counter(keys)

    def run():
        rows = []
        for depth in (1, 2, 4, 8, 16):
            width = BUDGET // depth
            cm = CountMinSketch(width=width, depth=depth, seed=7)
            cm.extend(keys)
            errors = sorted(cm.estimate(k) - c for k, c in truth.items())
            mean_err = sum(errors) / len(errors)
            worst = errors[-1]
            rows.append([f"{width}x{depth}", mean_err, worst])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["shape (w x d)", "mean overcount", "worst overcount"],
        rows,
        title=f"A2 Count-Min shape at a fixed {BUDGET}-cell budget",
    )
    mean_errs = [r[1] for r in rows]
    # Mean error tracks 1/width: the wide-shallow end must beat the
    # narrow-deep end clearly.
    assert mean_errs[0] < mean_errs[-1] / 2
    # But depth >= 2 protects the tail: the deepest config's worst case
    # must not explode relative to its mean the way depth-1 can.
    worst = {r[0]: r[2] for r in rows}
    assert all(e >= 0 for e in mean_errs), "CM never undercounts"


def test_a2_gk_space_error_frontier(benchmark, report):
    emit, table = report
    values = [float(v) for v in stream(seed=29)]
    exact = sorted(values)

    def rank_error(answer, q):
        positions = [i for i, v in enumerate(exact) if v == answer]
        target = q * len(exact)
        return min(abs(i - target) for i in positions) / len(exact)

    def run():
        rows = []
        for eps in (0.1, 0.05, 0.02, 0.01, 0.005):
            gk = GKQuantiles(eps)
            gk.extend(values)
            worst = max(
                rank_error(gk.query(q), q) for q in (0.25, 0.5, 0.75, 0.95)
            )
            rows.append([eps, gk.memory(), worst, 2 * eps])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["epsilon", "summary entries", "worst rank error", "bound (2 eps)"],
        rows,
        title="A2b GK space/error frontier",
    )
    sizes = [r[1] for r in rows]
    assert sizes == sorted(sizes), "tighter epsilon costs more entries"
    for _eps, _size, err, bound in rows:
        assert err <= bound + 1e-9, "rank error within the GK guarantee"
    assert sizes[-1] < N / 10, "still far below exact state"
