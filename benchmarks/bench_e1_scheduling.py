"""E1 — Operator scheduling memory table (slide 43, [BBDM03]).

Paper's table: queue memory at t = 0..4 under Greedy vs FIFO for a
two-operator chain (costs 1, selectivities 0.2 and 0) fed one tuple per
second in a burst.

    Time | Greedy | FIFO
       0 |    1.0 |  1.0
       1 |    1.2 |  1.2
       2 |    1.4 |  2.0
       3 |    1.6 |  2.2
       4 |    1.8 |  3.0

Expected reproduction: exact equality (the table is analytic).  Chain is
included as the third policy (it coincides with Greedy on this chain)
and a longer bursty run compares peak memory across all policies.
"""

import pytest

from repro.core import ListSource, Plan, SimConfig, Simulation
from repro.operators import Select
from repro.scheduling import (
    ChainScheduler,
    FIFOScheduler,
    GreedyScheduler,
    RoundRobinScheduler,
)
from repro.workloads import bursty_gaps, take_gaps

SLIDE_GREEDY = [1.0, 1.2, 1.4, 1.6, 1.8]
SLIDE_FIFO = [1.0, 1.2, 2.0, 2.2, 3.0]


def slide_plan():
    plan = Plan()
    plan.add_input("S")
    op1 = plan.add(
        Select(lambda r: True, name="op1", selectivity=0.2), upstream=["S"]
    )
    op2 = plan.add(
        Select(lambda r: True, name="op2", selectivity=0.0), upstream=[op1]
    )
    plan.mark_output(op2, "out")
    return plan


def memory_series(scheduler, n_tuples=5, pattern=None):
    if pattern is None:
        rows = [{"v": i, "ts": float(i)} for i in range(n_tuples)]
    else:
        times, t = [], 0.0
        for g in take_gaps(pattern, n_tuples):
            t += g
            times.append(t)
        rows = [{"v": i, "ts": ts} for i, ts in enumerate(times)]
    sim = Simulation(slide_plan(), scheduler, SimConfig(sample_interval=1.0))
    return sim.run([ListSource("S", rows, ts_attr="ts")])


def test_e1_slide43_table(benchmark, report):
    emit, table = report
    result = benchmark.pedantic(
        lambda: {
            "greedy": memory_series(GreedyScheduler()).memory.values[:5],
            "fifo": memory_series(FIFOScheduler()).memory.values[:5],
            "chain": memory_series(ChainScheduler()).memory.values[:5],
        },
        rounds=3,
        iterations=1,
    )
    rows = [
        [t, result["greedy"][t], result["fifo"][t], result["chain"][t],
         SLIDE_GREEDY[t], SLIDE_FIFO[t]]
        for t in range(5)
    ]
    table(
        ["Time", "Greedy", "FIFO", "Chain", "paper Greedy", "paper FIFO"],
        rows,
        title="E1 slide-43 queue memory (exact reproduction)",
    )
    assert [round(v, 6) for v in result["greedy"]] == SLIDE_GREEDY
    assert [round(v, 6) for v in result["fifo"]] == SLIDE_FIFO


def test_e1_policy_sweep_bursty(benchmark, report):
    emit, table = report
    pattern = bursty_gaps(1.0, 5.0, 5.0)
    schedulers = {
        "fifo": FIFOScheduler,
        "greedy": GreedyScheduler,
        "chain": ChainScheduler,
        "round_robin": RoundRobinScheduler,
    }

    def run_all():
        out = {}
        for name, factory in schedulers.items():
            res = memory_series(factory(), n_tuples=40, pattern=pattern)
            out[name] = (res.memory.max(), res.memory.mean())
        return out

    result = benchmark.pedantic(run_all, rounds=2, iterations=1)
    table(
        ["policy", "peak memory", "mean memory"],
        [[n, p, m] for n, (p, m) in result.items()],
        title="E1b policy sweep on sustained bursts (40 tuples)",
    )
    # Shape: memory-aware policies dominate FIFO on bursts.
    assert result["greedy"][0] <= result["fifo"][0]
    assert result["chain"][0] <= result["fifo"][0]
