"""E7 — P2P traffic detection: ports vs payload (slide 10).

"Netflow can be used to determine P2P traffic volumes using TCP port
numbers... P2P traffic might not use known P2P port numbers.  Using
Gigascope['s] SQL-based packet monitor [to] search for P2P-related
keywords within each TCP datagram identified **3 times more traffic**
as P2P than Netflow."

The synthetic trace plants the causal structure (all P2P flows carry
keywords; a third use well-known ports), and both classifiers run as
GSQL queries over the same packets.

Expected reproduction: payload/port volume ratio ≈ 3 (up to the mix of
handshake packets, which carry no payload).
"""

import pytest

from repro.core import ListSource, run_plan
from repro.cql import compile_query
from repro.gigascope import gigascope_catalog
from repro.workloads import NetflowConfig, PacketGenerator


def classify_volumes(packets):
    catalog = gigascope_catalog()

    def volume(where):
        plan = compile_query(
            f"select sum(length) as vol from TCP where {where}", catalog
        )
        res = run_plan(plan, [ListSource("TCP", packets, ts_attr="ts")])
        rows = res.values()
        return rows[0]["vol"] or 0 if rows else 0

    port = volume(
        "is_p2p_port(src_port) = true or is_p2p_port(dst_port) = true"
    )
    payload = volume("matches_p2p_keyword(payload) = true")
    total = volume("length > 0")
    return port, payload, total


def test_e7_p2p_ratio(benchmark, report):
    emit, table = report
    packets = PacketGenerator(
        NetflowConfig(p2p_fraction=0.3, seed=27)
    ).generate(8000)

    port, payload, total = benchmark.pedantic(
        lambda: classify_volumes(packets), rounds=1, iterations=1
    )
    ratio = payload / max(port, 1)
    table(
        ["classifier", "P2P bytes", "share of total"],
        [
            ["port-based (Netflow)", port, port / total],
            ["payload-based (Gigascope)", payload, payload / total],
        ],
        title="E7 P2P detection (slide 10)",
    )
    emit(f"payload/port ratio = {ratio:.2f}x   (paper: ~3x)")
    assert 2.0 < ratio < 4.5, f"ratio {ratio} out of the paper's ballpark"


def test_e7_known_port_share_sweep(benchmark, report):
    emit, table = report

    def run():
        rows = []
        for share in (1.0, 0.5, 1 / 3, 0.25, 0.1):
            pkts = PacketGenerator(
                NetflowConfig(
                    p2p_fraction=0.3,
                    p2p_known_port_fraction=share,
                    seed=29,
                )
            ).generate(4000)
            port, payload, _total = classify_volumes(pkts)
            rows.append([f"{share:.2f}", payload / max(port, 1)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["known-port share of P2P", "payload/port ratio"],
        rows,
        title="E7b how the ratio depends on port compliance",
    )
    ratios = [r[1] for r in rows]
    assert ratios == sorted(ratios), (
        "the less P2P respects known ports, the bigger payload's edge"
    )
