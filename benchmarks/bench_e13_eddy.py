"""E13 — Adaptive query plans: eddies vs a fixed plan (slide 22, [AH00]).

"Adaptive query plans have been studied: eddies for volatile,
unpredictable environments.  Data stream systems: adaptive query
operators, adaptive plans."

The workload drifts: for the first half of the stream predicate A is
the selective killer, for the second half predicate B is.  A fixed plan
frozen at the phase-1 optimum pays for its stale ordering in phase 2;
the eddy re-learns and keeps per-tuple work near the oracle.

Expected reproduction (shape): fixed-optimal-for-phase-1 degrades after
the drift; the eddy tracks within ~20% of the per-phase oracle; answers
are identical for all strategies.
"""

import pytest

from repro.core import Record
from repro.operators import Eddy, EddyFilter, FixedFilterChain


def drifting_stream(n=4000, cut=2000):
    """Phase 1: v < 1000 (A kills); phase 2: v >= 5000 (B kills)."""
    out = []
    for i in range(n):
        v = i if i < cut else 5000 + i
        out.append(Record({"v": v}, ts=float(i), seq=i))
    return out


def make_filters():
    # A passes large values; B passes small ones.  In phase 1 A drops
    # everything; in phase 2 B does.
    return [
        EddyFilter("A", lambda r: r["v"] >= 2000, cost=1.0),
        EddyFilter("B", lambda r: r["v"] < 3000, cost=1.0),
    ]


def test_e13_adaptivity(benchmark, report):
    emit, table = report
    data = drifting_stream()

    def run():
        eddy = Eddy(make_filters(), epsilon=0.05, decay=0.995, seed=7)
        eddy_out = sum(len(eddy.process(r)) for r in data)
        fixed_good_p1 = FixedFilterChain(make_filters())  # A first
        fixed_out = sum(len(fixed_good_p1.process(r)) for r in data)
        fs = make_filters()
        fixed_good_p2 = FixedFilterChain([fs[1], fs[0]])  # B first
        fixed2_out = sum(len(fixed_good_p2.process(r)) for r in data)
        # Oracle: best order per phase = 1 evaluation per tuple + the
        # passing tuples' second evaluation (none pass here).
        oracle = float(len(data))
        return {
            "eddy": (eddy.work_done, eddy_out),
            "fixed A-first": (fixed_good_p1.work_done, fixed_out),
            "fixed B-first": (fixed_good_p2.work_done, fixed2_out),
            "oracle": (oracle, 0),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["strategy", "predicate evaluations", "results"],
        [[name, work, results] for name, (work, results) in out.items()],
        title="E13 eddy vs fixed plans across a selectivity drift",
    )
    eddy_work = out["eddy"][0]
    worst_fixed = max(out["fixed A-first"][0], out["fixed B-first"][0])
    oracle = out["oracle"][0]
    assert out["eddy"][1] == out["fixed A-first"][1] == out["fixed B-first"][1]
    assert eddy_work < worst_fixed, "eddy must beat the stale fixed plan"
    assert eddy_work < oracle * 1.25, "eddy should track the oracle closely"


def test_e13_learning_curve(benchmark, report):
    emit, table = report
    data = drifting_stream()

    def run():
        eddy = Eddy(make_filters(), epsilon=0.05, decay=0.995, seed=11)
        window = 500
        rows = []
        work_before = 0.0
        for i, r in enumerate(data):
            eddy.process(r)
            if (i + 1) % window == 0:
                rows.append(
                    [
                        f"{i + 1 - window}-{i + 1}",
                        (eddy.work_done - work_before) / window,
                        "->".join(eddy.current_order()),
                    ]
                )
                work_before = eddy.work_done
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["tuples", "work per tuple", "eddy order"],
        rows,
        title="E13b eddy learning curve (drift at tuple 2000)",
    )
    # After settling in each phase, per-tuple work approaches 1.0.
    assert rows[1][1] < 1.2, "phase-1 steady state"
    assert rows[-1][1] < 1.2, "phase-2 steady state after re-learning"
    assert rows[1][2].startswith("A"), "phase 1: A is the killer"
    assert rows[-1][2].startswith("B"), "phase 2: B is the killer"
