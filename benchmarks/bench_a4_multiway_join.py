"""Ablation A4 — multi-join probe ordering ([GO03], extension).

The deck's references include Golab-Özsu's sliding-window multi-joins;
their central question is the *probe order*: when a tuple arrives, in
which sequence should the other windows be probed?  Probing the most
selective stream first short-circuits non-matches early and keeps
intermediate results small.

The bench joins four streams with deliberately skewed match rates: one
"sparse" stream (few matching tuples) and three "dense" ones.  Probe
orders compared: naive fixed order (worst: dense streams first),
smallest-window-first, and fewest-matches-first (GO03's heuristic).

Expected shape: identical results for every order; CPU falls from fixed
to smallest-window to fewest-matches; the advantage grows with the
density skew.
"""

import pytest

from repro.core import Record
from repro.operators import MultiJoin
from repro.windows import TimeWindow
from repro.workloads import ZipfGenerator


def make_arrivals(n_per_dense=300, n_sparse=20, keys=6, seed=5):
    """Port 0..2 dense, port 3 sparse; all ts-interleaved."""
    gen = ZipfGenerator(keys, 0.3, seed=seed)
    events = []
    i = 0
    for port in range(3):
        for t in range(n_per_dense):
            ts = t * 0.1 + port * 0.001
            events.append(
                (ts, port, gen.sample())
            )
    for t in range(n_sparse):
        events.append((t * 1.5, 3, gen.sample()))
    events.sort()
    return [
        (port, Record({"k": k, f"v{port}": i}, ts=ts, seq=i))
        for i, (ts, port, k) in enumerate(events)
    ]


def run_order(arrivals, order, window=3.0):
    # Fixed order probes ports in index order: the sparse stream (port
    # 3) is probed *last* — the worst case the heuristics fix.
    mj = MultiJoin(
        [TimeWindow(window)] * 4, [["k"]] * 4, probe_order=order
    )
    results = 0
    for port, rec in arrivals:
        results += len(mj.process(rec, port))
    return results, mj.cpu_used


def test_a4_probe_order_comparison(benchmark, report):
    emit, table = report
    arrivals = make_arrivals()

    def run():
        rows = []
        for order in ("fixed", "smallest_window", "fewest_matches"):
            results, cpu = run_order(arrivals, order)
            rows.append([order, results, cpu])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["probe order", "results", "CPU (abstract)"],
        rows,
        title="A4 multi-join probe ordering (GO03) — 3 dense + 1 sparse stream",
    )
    results = {r[0]: r[1] for r in rows}
    cpu = {r[0]: r[2] for r in rows}
    assert len(set(results.values())) == 1, "orders must agree on answers"
    assert cpu["fewest_matches"] < cpu["fixed"], (
        "selectivity-aware probing must beat the naive order"
    )
    assert cpu["smallest_window"] < cpu["fixed"]


def test_a4_skew_sweep(benchmark, report):
    emit, table = report

    def run():
        rows = []
        for n_dense in (50, 150, 300, 600):
            arrivals = make_arrivals(n_per_dense=n_dense)
            _res_f, cpu_fixed = run_order(arrivals, "fixed")
            _res_s, cpu_smart = run_order(arrivals, "fewest_matches")
            rows.append(
                [n_dense, cpu_fixed, cpu_smart, cpu_fixed / cpu_smart]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["dense tuples/stream", "CPU fixed", "CPU fewest-matches",
         "advantage"],
        rows,
        title="A4b ordering advantage vs density skew",
    )
    advantages = [r[3] for r in rows]
    assert all(a >= 1.0 for a in advantages)
    assert advantages[-1] > advantages[0], (
        "the denser the mismatched streams, the more ordering matters"
    )
