"""M2 — Micro-batch execution throughput (wall-clock, informational).

Measures tuples/sec of the push engine at ``batch_size`` in
{1, 16, 256, 4096} on two workloads:

* **CDR** — the select → project → aggregate chain over the call-detail
  stream (the plan named by the M2 acceptance criteria);
* **netflow** — select → project → tumbling aggregation over the packet
  stream.

Like M1, these are engineering-hygiene numbers, not paper
reproductions: they certify that the micro-batched path amortizes
per-element dispatch (>= 2x at batch_size=256 vs 1) and give future
PRs a perf trajectory (recorded in ``BENCH_m1_m2.json`` by running this
file as a script).  Output *correctness* across batch sizes is the job
of ``tests/core/test_batch_equivalence.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from _harness import throughput, write_baseline
from repro.core import ListSource, Record, run_plan
from repro.core.graph import linear_plan
from repro.operators import AggSpec, Aggregate, Select, WindowedAggregate
from repro.operators.project import Project
from repro.windows import TumblingWindow
from repro.workloads import CDRGenerator, PacketGenerator

BATCH_SIZES = [1, 16, 256, 4096]
N = 20000


def cdr_plan():
    """The select → project → aggregate CDR plan (acceptance plan)."""
    return linear_plan(
        "calls",
        [
            Select(lambda r: r["is_intl"], name="intl"),
            Project(
                {
                    "origin": "origin",
                    "connect_ts": "connect_ts",
                    "duration": "duration",
                },
                name="proj",
            ),
            Aggregate(
                ["origin"],
                [AggSpec("n", "count"), AggSpec("talk", "sum", "duration")],
                name="per_origin",
            ),
        ],
    )


def netflow_plan():
    return linear_plan(
        "Traffic",
        [
            Select(lambda r: r["length"] > 512, name="big"),
            Project(
                {"ts": "ts", "src_ip": "src_ip", "length": "length"},
                name="proj",
            ),
            WindowedAggregate(
                TumblingWindow(10.0),
                ["src_ip"],
                [AggSpec("n", "count"), AggSpec("vol", "sum", "length")],
                name="per_bucket",
            ),
        ],
    )


def _cdr_source(n: int = N) -> ListSource:
    return ListSource(
        "calls", CDRGenerator().generate(n), ts_attr="connect_ts"
    )


def _netflow_source(n: int = N) -> ListSource:
    return ListSource(
        "Traffic", PacketGenerator().generate(n), ts_attr="ts"
    )


WORKLOADS = {
    "cdr": (cdr_plan, _cdr_source),
    "netflow": (netflow_plan, _netflow_source),
}


def measure_throughput(
    plan, source: ListSource, batch_size: int | None, repeats: int = 3
) -> float:
    """Best-of-``repeats`` tuples/sec over the pre-stamped source."""
    return throughput(
        lambda: run_plan(plan, [source], batch_size=batch_size),
        len(source),
        repeats=repeats,
    )


def batch_scaling(n: int = N, repeats: int = 3) -> dict[str, dict[str, float]]:
    """Tuples/sec per workload per batch size (the M2 table)."""
    results: dict[str, dict[str, float]] = {}
    for name, (make_plan, make_source) in WORKLOADS.items():
        source = make_source(n)
        plan = make_plan()
        results[name] = {
            str(bs): round(measure_throughput(plan, source, bs, repeats), 1)
            for bs in BATCH_SIZES
        }
    return results


# -- pytest-benchmark entry points ----------------------------------------


@pytest.fixture(scope="module")
def cdr_source():
    return _cdr_source()


@pytest.fixture(scope="module")
def netflow_source():
    return _netflow_source()


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_m2_cdr_batch_throughput(benchmark, cdr_source, batch_size):
    plan = cdr_plan()
    result = benchmark(
        lambda: run_plan(plan, [cdr_source], batch_size=batch_size)
    )
    assert result.records()


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_m2_netflow_batch_throughput(benchmark, netflow_source, batch_size):
    plan = netflow_plan()
    result = benchmark(
        lambda: run_plan(plan, [netflow_source], batch_size=batch_size)
    )
    assert result.records()


def test_m2_batch_scaling_report(report):
    """The M2 table: tuples/sec at each batch size, plus the 2x check."""
    emit, table = report
    scaling = batch_scaling(n=N, repeats=3)
    rows = [
        [workload]
        + [by_size[str(bs)] for bs in BATCH_SIZES]
        + [round(by_size[str(BATCH_SIZES[-1])] / by_size["1"], 2)]
        for workload, by_size in scaling.items()
    ]
    table(
        ["workload"]
        + [f"bs={bs} tup/s" for bs in BATCH_SIZES]
        + ["max speedup"],
        rows,
        title="M2: micro-batch throughput scaling",
    )
    emit(
        "(differential suite tests/core/test_batch_equivalence.py proves "
        "outputs are identical at every batch size)"
    )
    # Acceptance: >= 2x at batch_size=256 vs 1 on the CDR chain.
    speedup = scaling["cdr"]["256"] / scaling["cdr"]["1"]
    assert speedup >= 2.0, (
        f"batch_size=256 is only {speedup:.2f}x batch_size=1 on the CDR "
        f"select->project->aggregate plan (expected >= 2x)"
    )


# -- baseline recording ----------------------------------------------------


def _m1_baseline(n: int = 5000) -> dict[str, float]:
    """Quick re-measurement of the M1 hot paths for the trajectory file."""
    packets = PacketGenerator().generate(n)
    records = [Record(p, ts=p["ts"], seq=i) for i, p in enumerate(packets)]

    op = Select(lambda r: r["length"] > 512)
    t0 = time.perf_counter()
    for r in records:
        op.process(r)
    select_tps = n / (time.perf_counter() - t0)

    agg = WindowedAggregate(
        TumblingWindow(10.0),
        ["src_ip"],
        [AggSpec("n", "count"), AggSpec("vol", "sum", "length")],
    )
    t0 = time.perf_counter()
    for r in records:
        agg.process(r, 0)
    agg.flush()
    agg_tps = n / (time.perf_counter() - t0)

    return {
        "select_tuples_per_sec": round(select_tps, 1),
        "tumbling_agg_tuples_per_sec": round(agg_tps, 1),
    }


def record_baseline(path=None) -> dict:
    """Write the M1+M2 throughput baseline for future PRs to diff against."""
    baseline = {
        "n_tuples": N,
        "batch_sizes": BATCH_SIZES,
        "m1_tuple_at_a_time": _m1_baseline(),
        "m2_tuples_per_sec": batch_scaling(n=N, repeats=3),
    }
    scaling = baseline["m2_tuples_per_sec"]
    baseline["m2_speedup_256_vs_1"] = {
        w: round(by["256"] / by["1"], 2) for w, by in scaling.items()
    }
    return write_baseline("BENCH_m1_m2.json", baseline, path)


if __name__ == "__main__":
    recorded = record_baseline()
    print(json.dumps(recorded, indent=2))
