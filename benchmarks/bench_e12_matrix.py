"""E12 — The comparative system matrix (slide 52).

The tutorial closes Part II with a table contrasting Aurora, Gigascope,
Hancock, STREAM, and Telegraph along six dimensions.  The bench
regenerates that table from the live profile objects and then *runs*
each profile's engine configuration on a common overloaded workload,
verifying the signature behaviours the matrix claims:

* Aurora (QoS-based, load shedding) is the only profile that sheds;
* STREAM (optimize space) has the lowest peak memory among non-shedders;
* all profiles process the same stream (comparability).
"""

import pytest

from repro.dsms import PROFILES, comparative_matrix, run_profile_demo

SLIDE_52 = {
    "Aurora": {
        "Architecture": "low-level",
        "Data Model": "RS-in RS-out",
        "Query Language": "Operators",
        "Query Answers": "approximate",
        "Query Plan": "QoS-based, load shedding",
    },
    "Gigascope": {
        "Architecture": "two level (low, high)",
        "Data Model": "S-in S-out",
        "Query Language": "GSQL",
        "Query Answers": "exact",
        "Query Plan": "decomposition, avoid drops",
    },
    "Hancock": {
        "Architecture": "High-level",
        "Data Model": "RS-in R-out",
        "Query Language": "Procedural",
        "Query Answers": "exact, signatures",
        "Query Plan": "optimize for I/O, process blocks",
    },
    "STREAM": {
        "Architecture": "low-level",
        "Data Model": "RS-in RS-out",
        "Query Language": "CQL",
        "Query Answers": "approximate",
        "Query Plan": "optimize space, static analysis",
    },
    "Telegraph": {
        "Architecture": "high-level",
        "Data Model": "RS-in RS-out",
        "Query Language": "SQL-based",
        "Query Answers": "exact",
        "Query Plan": "adaptive plans, multi-query",
    },
}


def test_e12_matrix_reproduction(benchmark, report):
    emit, table = report
    matrix = benchmark.pedantic(comparative_matrix, rounds=5, iterations=1)
    table(
        ["System", "Architecture", "Data Model", "Query Language",
         "Query Answers", "Query Plan"],
        [
            [row["System"], row["Architecture"], row["Data Model"],
             row["Query Language"], row["Query Answers"], row["Query Plan"]]
            for row in matrix
        ],
        title="E12 comparative matrix (slide 52, exact reproduction)",
    )
    for row in matrix:
        expected = SLIDE_52[row["System"]]
        for column, value in expected.items():
            assert row[column] == value, (
                f"{row['System']}/{column}: {row[column]!r} != {value!r}"
            )


def test_e12_profiles_behave_as_claimed(benchmark, report):
    emit, table = report

    def run():
        return {
            name: run_profile_demo(name, n_tuples=60, burst_rate=4.0)
            for name in PROFILES
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["profile", "scheduler", "peak memory", "output", "shed"],
        [
            [o["system"], o["scheduler"], o["peak_memory"],
             o["output_weight"], o["shed"]]
            for o in out.values()
        ],
        title="E12b profiles executed on a common overloaded burst",
    )
    assert out["aurora"]["shed"] > 0
    non_shedders = [n for n in PROFILES if n != "aurora"]
    assert all(out[n]["shed"] == 0 for n in non_shedders)
    peaks = {n: out[n]["peak_memory"] for n in non_shedders}
    assert peaks["stream"] == min(peaks.values())
