"""E9 — Load shedding and answer quality (slide 44).

"When input stream rate exceeds system capacity a stream manager can
shed load...  Load shedding affects queries and their answers.  Random
and semantic load shedding."

The standing query is a grouped count with a HAVING-style focus on one
group.  The bench sweeps the required drop fraction and reports answer
error for:

* random shedding with unbiased rescaling,
* semantic shedding that protects the queried group,
* plus a feedback controller keeping simulated queue memory bounded.

Expected reproduction (shape): semantic error stays ~0 on the queried
group until the drop rate exceeds the share of expendable tuples; random
error grows with the drop rate; the controller keeps peak memory near
its watermark while admitting as much as capacity allows.
"""

import collections

import pytest

from repro.core import ListSource, Plan, Record, SimConfig, Simulation
from repro.operators import Select
from repro.scheduling import FIFOScheduler
from repro.shedding import LoadController, RandomShedder, SemanticShedder, shed_stream


def records(n=6000, groups=5):
    return [
        Record({"g": i % groups, "v": i}, ts=float(i), seq=i)
        for i in range(n)
    ]


def group0_error(kept, true_count, rescale=None):
    counts = collections.Counter(r["g"] for r in kept)
    estimate = counts[0]
    if rescale:
        estimate /= rescale
    return abs(estimate - true_count) / true_count


def test_e9_accuracy_vs_drop_rate(benchmark, report):
    emit, table = report
    data = records()
    true_count = sum(1 for r in data if r["g"] == 0)

    def run():
        rows = []
        for drop in (0.1, 0.3, 0.5, 0.7, 0.9):
            rnd = RandomShedder(drop, seed=int(drop * 100))
            kept_rnd = shed_stream(data, rnd)
            err_rnd = group0_error(kept_rnd, true_count, rnd.keep_rate)
            sem = SemanticShedder(
                utility=lambda r: 1.0 if r["g"] == 0 else 0.0,
                drop_rate=drop,
            )
            kept_sem = shed_stream(data, sem)
            err_sem = group0_error(kept_sem, true_count)
            rows.append([drop, err_rnd, err_sem, 1 - sem.keep_rate])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["target drop", "random error (rescaled)", "semantic error",
         "semantic realized drop"],
        rows,
        title="E9 answer error on the queried group vs shed fraction",
    )
    # Shape: semantic shedding never harms the queried group — it
    # refuses to shed protected tuples, so its realized drop rate caps
    # at the expendable share (80% here) instead.
    for _drop, _err_rnd, err_sem, _realized in rows:
        assert err_sem == pytest.approx(0.0, abs=1e-9)
    assert rows[-1][3] < 0.85, (
        "semantic shedding cannot exceed the expendable pool"
    )
    for drop, _e, _s, realized in rows[:-1]:
        assert realized == pytest.approx(drop, abs=0.02)
    # Random shedding is noisy everywhere but unbiased (error modest).
    assert all(err < 0.2 for _d, err, _s, _r in rows)


def test_e9_feedback_controller(benchmark, report):
    emit, table = report
    # Overloaded operator: service 2x slower than arrivals.
    rows = [{"v": i, "ts": i * 0.5} for i in range(300)]

    def run(controller):
        plan = Plan()
        plan.add_input("S")
        op = plan.add(
            Select(lambda r: True, name="work", cost_per_tuple=1.0),
            upstream=["S"],
        )
        plan.mark_output(op, "out")
        sim = Simulation(
            plan,
            FIFOScheduler(),
            SimConfig(sample_interval=5.0, shedder=controller),
        )
        return sim.run([ListSource("S", rows, ts_attr="ts")])

    def run_both():
        unprotected = run(None)
        ctl = LoadController(
            low_watermark=5.0, high_watermark=15.0, max_drop_rate=1.0, seed=2
        )
        protected = run(ctl)
        return unprotected, protected, ctl

    unprotected, protected, ctl = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    table(
        ["configuration", "peak memory", "tuples shed", "served"],
        [
            ["no shedding", unprotected.memory.max(), 0,
             unprotected.output_count["out"]],
            ["controller(5,15)", protected.memory.max(), protected.shed,
             protected.output_count["out"]],
        ],
        title="E9b feedback load shedding under 2x overload",
    )
    assert protected.memory.max() < unprotected.memory.max() / 2
    assert protected.shed > 0
