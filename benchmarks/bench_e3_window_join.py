"""E3 — Binary window-join strategies (slides 32-33, [KNV03]).

Paper's figure contrasts hash-based and (indexed) nested-loop window
joins, and observes:

* hash wins when the system is **CPU-limited** (cheap probes);
* NL wins when **memory-limited** (no hash-table overhead);
* **asymmetric** processing pays off when arrival rates differ — give
  the fast stream a hash-organized window to probe cheaply, while the
  slow stream's rare arrivals can afford to scan.

Expected reproduction (shape): hash-hash minimizes CPU per result,
nl-nl minimizes memory, and with asymmetric rates the best asymmetric
configuration beats the wrong symmetric one on CPU while saving memory
over full hash-hash.
"""

import itertools

import pytest

from repro.core import Record
from repro.operators import WindowJoin
from repro.windows import TimeWindow
from repro.workloads import ZipfGenerator, poisson_gaps, take_gaps


def make_arrivals(rate_a, rate_b, n, window, seed=7):
    """Interleaved (port, record) arrivals at the two rates."""
    keys = ZipfGenerator(50, 0.8, seed=seed)
    events = []
    for port, rate in ((0, rate_a), (1, rate_b)):
        t = 0.0
        for gap in take_gaps(poisson_gaps(rate, seed=seed + port), n):
            t += gap
            events.append((t, port))
    events.sort()
    return [
        (port, Record({"k": keys.sample()}, ts=t, seq=i))
        for i, (t, port) in enumerate(events)
    ]


def run_join(elements, left_strategy, right_strategy, window=4.0):
    join = WindowJoin(
        TimeWindow(window),
        TimeWindow(window),
        ["k"],
        ["k"],
        left_strategy=left_strategy,
        right_strategy=right_strategy,
    )
    peak_mem = 0.0
    for port, el in elements:
        join.process(el, port)
        peak_mem = max(peak_mem, join.memory())
    return {
        "results": join.results,
        "cpu": join.cpu_used,
        "cpu_per_result": join.cpu_used / max(1, join.results),
        "peak_memory": peak_mem,
    }


STRATEGIES = list(itertools.product(["hash", "nl"], repeat=2))


def test_e3_strategy_matrix(benchmark, report):
    emit, table = report
    elements = make_arrivals(20.0, 20.0, 400, window=4.0)

    def run():
        return {
            (ls, rs): run_join(elements, ls, rs) for ls, rs in STRATEGIES
        }

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    table(
        ["left", "right", "results", "CPU", "CPU/result", "peak memory"],
        [
            [ls, rs, o["results"], o["cpu"], o["cpu_per_result"],
             o["peak_memory"]]
            for (ls, rs), o in out.items()
        ],
        title="E3 window-join strategy matrix (equal rates 20/s, T=4)",
    )
    results = {k: v["results"] for k, v in out.items()}
    assert len(set(results.values())) == 1, "strategies must agree on answers"
    # CPU-limited view: hash-hash cheapest per result.
    assert out[("hash", "hash")]["cpu"] == min(o["cpu"] for o in out.values())
    # Memory-limited view: nl-nl smallest footprint.
    assert out[("nl", "nl")]["peak_memory"] == min(
        o["peak_memory"] for o in out.values()
    )


def test_e3_rate_ratio_sweep(benchmark, report):
    emit, table = report

    def run():
        rows = []
        for ratio in (1, 2, 4, 8, 16):
            elements = make_arrivals(8.0 * ratio, 8.0, 150 * ratio, 4.0)
            # Asymmetric A: fast stream probes a hash window of the slow
            # stream? No — the *slow side's* window is organized for the
            # fast stream's probes; compare both asymmetric options.
            hash_slow = run_join(elements, "nl", "hash")
            hash_fast = run_join(elements, "hash", "nl")
            both_hash = run_join(elements, "hash", "hash")
            rows.append(
                [
                    f"{ratio}:1",
                    both_hash["cpu"],
                    hash_fast["cpu"],
                    hash_slow["cpu"],
                    hash_fast["peak_memory"],
                    both_hash["peak_memory"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        [
            "rate A:B",
            "CPU hash/hash",
            "CPU hash(A)/nl(B)",
            "CPU nl(A)/hash(B)",
            "mem hash/nl",
            "mem hash/hash",
        ],
        rows,
        title="E3b asymmetric processing vs arrival-rate ratio",
    )
    # Shape (slide 33): as the ratio grows, organizing the *fast* side's
    # window as a hash (probed by the slow side rarely, maintained
    # cheaply) and scanning the slow side's small window becomes
    # competitive: the gap between the best asymmetric plan and
    # hash/hash narrows relative to the worst asymmetric plan.
    last = rows[-1]
    best_asym = min(last[2], last[3])
    worst_asym = max(last[2], last[3])
    assert best_asym < worst_asym
