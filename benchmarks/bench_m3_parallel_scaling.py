"""M3 — Shared-nothing partition-parallel scaling (wall-clock).

Measures tuples/sec of :class:`repro.parallel.ShardedEngine` at
``n_shards`` in {1, 2, 4, 8} on the thread and process backends, over
two round-robin-partitioned workloads:

* **CDR** — the select → project → blocking-aggregate chain (the M2
  acceptance plan); round-robin forces the *partial* strategy:
  shard-local ``GroupPartial`` push-down + coordinator merge, so the
  process backend ships only per-group aggregate states back through
  the pipe;
* **netflow** — select → project → tumbling aggregation; round-robin
  again selects the partial strategy, with bucket-keyed shard states.

The interesting comparison is thread vs process: shard work is pure
Python, so the thread backend is GIL-serialized (its curve stays flat —
it exists for its zero setup cost and for exactness testing), while the
process backend forks one worker per shard and scales with physical
cores until the coordinator's serial section (partition + merge,
Amdahl) dominates.  On a single-core host the process curve is flat
too — the scaling assertion is therefore gated on available CPUs, and
``BENCH_m3.json`` records the CPU count next to the numbers.

Output *correctness* of every strategy/backend is the job of
``tests/parallel/test_sharded_equivalence.py``; this file only times.

Run as a script to record ``BENCH_m3.json`` (add ``--smoke`` for the
tiny CI variant that exercises both backends end-to-end in seconds).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.core import ListSource, run_plan
from repro.parallel import RoundRobinPartition, ShardedEngine

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import throughput, write_baseline  # noqa: E402
from bench_m2_batch_throughput import (  # noqa: E402
    _cdr_source,
    _netflow_source,
    cdr_plan,
    netflow_plan,
)

SHARD_COUNTS = [1, 2, 4, 8]
BACKENDS = ["thread", "process"]
N = 60000

WORKLOADS = {
    "cdr": (cdr_plan, _cdr_source),
    "netflow": (netflow_plan, _netflow_source),
}


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_sharded(
    plan,
    source: ListSource,
    n_shards: int,
    backend: str,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` tuples/sec through the sharded engine."""
    engine = ShardedEngine(
        plan, RoundRobinPartition(n_shards), backend=backend
    )
    return throughput(
        lambda: engine.run([source]), len(source), repeats=repeats
    )


def parallel_scaling(
    n: int = N,
    repeats: int = 3,
    shard_counts=None,
    backends=None,
) -> dict:
    """Tuples/sec per workload per backend per shard count (M3 table)."""
    shard_counts = shard_counts or SHARD_COUNTS
    backends = backends or BACKENDS
    results: dict = {}
    for name, (make_plan, make_source) in WORKLOADS.items():
        source = make_source(n)
        plan = make_plan()
        per_backend: dict = {}
        for backend in backends:
            per_backend[backend] = {
                str(s): round(
                    measure_sharded(plan, source, s, backend, repeats), 1
                )
                for s in shard_counts
            }
        results[name] = per_backend
    return results


# -- pytest entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def cdr_source():
    return _cdr_source(N)


@pytest.fixture(scope="module")
def netflow_source():
    return _netflow_source(N)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", [1, 4])
def test_m3_cdr_sharded_throughput(benchmark, cdr_source, n_shards, backend):
    plan = cdr_plan()
    engine = ShardedEngine(
        plan, RoundRobinPartition(n_shards), backend=backend
    )
    result = benchmark(lambda: engine.run([cdr_source]))
    assert result.records()


def test_m3_parallel_scaling_report(report):
    """The M3 table: tuples/sec per backend per shard count."""
    emit, table = report
    cpus = available_cpus()
    scaling = parallel_scaling(n=N, repeats=3)
    rows = []
    for workload, per_backend in scaling.items():
        for backend, by_shards in per_backend.items():
            rows.append(
                [workload, backend]
                + [by_shards[str(s)] for s in SHARD_COUNTS]
                + [round(by_shards["4"] / by_shards["1"], 2)]
            )
    table(
        ["workload", "backend"]
        + [f"shards={s} tup/s" for s in SHARD_COUNTS]
        + ["4-shard speedup"],
        rows,
        title=f"M3: partition-parallel scaling ({cpus} CPUs visible)",
    )
    emit(
        "(differential suite tests/parallel/test_sharded_equivalence.py "
        "proves sharded outputs identical to a single engine)"
    )
    # Acceptance: >= 2x at 4 process-backed shards vs 1 shard on the CDR
    # partial-aggregate plan.  Process parallelism needs processors: the
    # check is meaningless below 4 cores (the curve is necessarily flat
    # when all forks timeshare one core), so it is gated, not faked.
    speedup = scaling["cdr"]["process"]["4"] / scaling["cdr"]["process"]["1"]
    if cpus < 4:
        pytest.skip(
            f"only {cpus} CPU(s) visible: 4-shard process speedup was "
            f"{speedup:.2f}x; >= 2x requires >= 4 cores"
        )
    assert speedup >= 2.0, (
        f"4 process shards are only {speedup:.2f}x one shard on the CDR "
        f"partial-aggregate plan (expected >= 2x on {cpus} cores)"
    )


# -- baseline recording ----------------------------------------------------


def record_baseline(path: str | Path | None = None, n: int = N) -> dict:
    """Write the M3 scaling baseline for future PRs to diff against."""
    single = {}
    for name, (make_plan, make_source) in WORKLOADS.items():
        source = make_source(n)
        plan = make_plan()
        single[name] = round(
            throughput(
                lambda: run_plan(plan, [source], batch_size="auto"),
                n,
                repeats=1,
            ),
            1,
        )
    baseline = {
        "n_tuples": n,
        "cpus": available_cpus(),
        "shard_counts": SHARD_COUNTS,
        "single_engine_tuples_per_sec": single,
        "m3_tuples_per_sec": parallel_scaling(n=n, repeats=3),
    }
    scaling = baseline["m3_tuples_per_sec"]
    baseline["m3_speedup_4_shards_vs_1"] = {
        w: {b: round(by["4"] / by["1"], 2) for b, by in per.items()}
        for w, per in scaling.items()
    }
    return write_baseline("BENCH_m3.json", baseline, path)


def smoke(n: int = 2000) -> dict:
    """Tiny CI variant: both backends, shards {1, 2}, plus an output
    equality spot-check against the single engine."""
    results = parallel_scaling(
        n=n, repeats=1, shard_counts=[1, 2], backends=BACKENDS
    )
    for name, (make_plan, make_source) in WORKLOADS.items():
        source = make_source(n)
        plan = make_plan()
        want = run_plan(plan, [source]).outputs
        for backend in BACKENDS:
            engine = ShardedEngine(
                plan, RoundRobinPartition(2), backend=backend
            )
            got = engine.run([source]).outputs
            if got != want:
                raise AssertionError(
                    f"smoke: {name}/{backend} sharded output differs "
                    f"from single engine"
                )
    return results


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print("smoke ok: both backends match the single engine")
    else:
        recorded = record_baseline()
        print(json.dumps(recorded, indent=2))
