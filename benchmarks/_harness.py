"""Shared measurement harness for the milestone benchmarks.

Every ``bench_m*.py`` used to carry its own copy of the same three
idioms — a best-of-N ``perf_counter`` loop, an interleaved variant for
config ladders (so drift hits every configuration equally), and the
strict-JSON baseline writer (``allow_nan=False``, two-space indent,
trailing newline).  They live here now; the benches import them.

Timing conventions:

* **best-of, not mean-of** — these benches quantify the *capability* of
  a code path on a noisy shared machine; the minimum over repeats is
  the standard estimator for that (it discards scheduler noise, which
  is strictly additive).
* **warmup runs are discarded** — the first execution pays allocator
  and bytecode-cache effects the steady state doesn't.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Mapping

REPO_ROOT = Path(__file__).resolve().parent.parent


def best_of(
    fn: Callable[[], Any], repeats: int = 3, warmup: int = 0
) -> tuple[float, Any]:
    """``(best_seconds, last_result)`` of ``fn()`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def throughput(
    fn: Callable[[], Any], n: int, repeats: int = 3, warmup: int = 0
) -> float:
    """Best-of-``repeats`` items/sec for a run that processes ``n`` items."""
    best, _ = best_of(fn, repeats=repeats, warmup=warmup)
    return n / best


def interleaved_best(
    runs: Mapping[str, Callable[[], Any]],
    repeats: int = 5,
    warmup: int = 0,
) -> dict[str, float]:
    """Best-of seconds per named run, *interleaved* across repeats.

    Round-robin order means thermal / load drift during the measurement
    biases every configuration equally instead of penalizing whichever
    one happens to run last.
    """
    for _ in range(warmup):
        for fn in runs.values():
            fn()
    best = {name: float("inf") for name in runs}
    for _ in range(repeats):
        for name, fn in runs.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def baseline_path(filename: str, path: str | Path | None = None) -> Path:
    """Resolve a baseline file: explicit ``path`` wins, else repo root."""
    return Path(path) if path is not None else REPO_ROOT / filename


def write_baseline(
    filename: str, payload: dict, path: str | Path | None = None
) -> dict:
    """Write ``payload`` as strict JSON (no NaN/Inf) and return it."""
    baseline_path(filename, path).write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n"
    )
    return payload
