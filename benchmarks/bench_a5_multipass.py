"""Ablation/extension A5 — one pass approximate vs multi-pass exact
quantiles (slide 21, [MP80]).

Slide 21's contrast: "per-element processing: single pass to reduce
drops; block processing: multiple passes to optimize I/O cost", with
[MP80]'s limited-memory selection as the classical multi-pass result.
The low level must answer in one pass (GK, approximate); the high
level can re-read stored blocks and answer exactly (Munro-Paterson).

The bench sweeps working memory and reports, for the median of a
20k-value stream: GK's error and memory (1 pass) vs Munro-Paterson's
pass count (0 error).

Expected shape: MP is exact at every memory level with passes falling
as memory grows (the MP80 trade); GK's one-pass error falls with its
summary size but never reaches zero.
"""

import random

import pytest

from repro.synopses import GKQuantiles, MultiPassSelection


def data(n=20000, seed=13):
    rng = random.Random(seed)
    return [rng.random() * 1e6 for _ in range(n)]


def test_a5_passes_vs_error(benchmark, report):
    emit, table = report
    values = data()
    exact_sorted = sorted(values)
    true_median = exact_sorted[len(values) // 2]

    def run():
        rows = []
        for memory, eps in ((32, 0.05), (128, 0.01), (1024, 0.002)):
            mp = MultiPassSelection(lambda: iter(values), memory=memory)
            mp_value = mp.quantile(0.5)
            gk = GKQuantiles(eps)
            gk.extend(values)
            gk_value = gk.query(0.5)
            gk_rank_err = abs(
                exact_sorted.index(gk_value) - len(values) / 2
            ) / len(values)
            rows.append(
                [
                    memory,
                    mp.passes + 1,
                    mp_value == true_median,
                    gk.memory(),
                    gk_rank_err,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        [
            "working memory",
            "MP80 passes (exact)",
            "MP80 exact?",
            "GK entries (1 pass)",
            "GK rank error",
        ],
        rows,
        title="A5 multi-pass exact vs one-pass approximate median (slide 21)",
    )
    assert all(r[2] for r in rows), "Munro-Paterson must be exact always"
    passes = [r[1] for r in rows]
    assert passes == sorted(passes, reverse=True), (
        "more memory must not need more passes"
    )
    errors = [r[4] for r in rows]
    assert errors[-1] <= errors[0], "GK error falls with summary size"
