"""M5 — Observer overhead and measured-rate fidelity (wall-clock).

The observe layer is only usable always-on if watching the engine does
not meaningfully slow it down.  This bench runs the M2 CDR plan
(select → project → aggregate, ``batch_size=256``) with observation
off and at sampling strides 1, 8, and 64, interleaving the
configurations round-robin and keeping best-of times so machine drift
hits every configuration equally.

Gates (the M5 acceptance criteria):

* **overhead** — at ``sampling=64`` the observed run is < 5% slower
  than the unobserved run;
* **fidelity** — at ``sampling=1`` the summed per-operator
  ``wall_time`` lands within 2x of the externally measured end-to-end
  run time (the estimator measures the run it is part of).

``--smoke`` runs both gates on a reduced input (CI); ``--check-json``
strict-parses every committed ``BENCH_*.json`` (no NaN/Infinity
literals — the serialization bug this PR's metrics audit fixed);
running with no flag records ``BENCH_m5.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import best_of, interleaved_best, write_baseline  # noqa: E402
from bench_m2_batch_throughput import _cdr_source, cdr_plan
from repro.core import ListSource, run_plan
from repro.observe import ObserveConfig

SAMPLING = [1, 8, 64]
BATCH = 256
N = 20000
GATE_SAMPLING = 64
GATE_PCT = 5.0
REPO_ROOT = Path(__file__).resolve().parent.parent


def _configs() -> dict[str, ObserveConfig | None]:
    return {
        "off": None,
        **{
            f"sampling={s}": ObserveConfig(sampling=s)
            for s in SAMPLING
        },
    }


def overhead_ladder(
    source: ListSource, repeats: int = 5
) -> dict[str, float]:
    """Best-of e2e seconds per observe configuration, interleaved."""
    plan = cdr_plan()
    return interleaved_best(
        {
            name: (
                lambda cfg=cfg: run_plan(
                    plan, [source], batch_size=BATCH, observe=cfg
                )
            )
            for name, cfg in _configs().items()
        },
        repeats=repeats,
    )


def overhead_pct(best: dict[str, float]) -> dict[str, float]:
    """Percent slowdown of each observed configuration vs off."""
    off = best["off"]
    return {
        name: round(100.0 * (seconds / off - 1.0), 2)
        for name, seconds in best.items()
        if name != "off"
    }


def measure_fidelity(source: ListSource) -> dict:
    """One fully-observed run: wall-time share and measured rates."""
    plan = cdr_plan()
    e2e, result = best_of(
        lambda: run_plan(
            plan, [source], batch_size=BATCH,
            observe=ObserveConfig(sampling=1),
        ),
        repeats=1,
    )
    summary = result.metrics.summary()
    total_wall = sum(m["wall_time"] for m in summary.values())
    return {
        "e2e_seconds": round(e2e, 6),
        "total_operator_wall_seconds": round(total_wall, 6),
        "wall_over_e2e": round(total_wall / e2e, 4),
        "measured_rates_tuples_per_sec": {
            name: m["measured_rate"] for name, m in summary.items()
        },
        "modeled_busy_time_units": {
            name: m["busy_time"] for name, m in summary.items()
        },
    }


def _gated_ladder(
    source: ListSource, repeats: int, attempts: int = 3
) -> tuple[dict[str, float], float]:
    """Re-measure up to ``attempts`` times before failing the 5% gate
    (best-of timing is stable, but CI machines are shared)."""
    pct = float("inf")
    best: dict[str, float] = {}
    for _ in range(attempts):
        best = overhead_ladder(source, repeats)
        pct = overhead_pct(best)[f"sampling={GATE_SAMPLING}"]
        if pct < GATE_PCT:
            break
    return best, pct


def smoke(n: int = N, repeats: int = 5) -> dict:
    """CI gate: overhead < 5% at sampling=64, wall/e2e within 2x."""
    source = _cdr_source(n)
    best, pct = _gated_ladder(source, repeats)
    fidelity = measure_fidelity(source)
    payload = {
        "n_tuples": n,
        "batch_size": BATCH,
        "e2e_seconds_best": {k: round(v, 6) for k, v in best.items()},
        "overhead_pct_vs_off": overhead_pct(best),
        "fidelity": fidelity,
    }
    if pct >= GATE_PCT:
        raise SystemExit(
            f"observer overhead at sampling={GATE_SAMPLING} is "
            f"{pct:.2f}% (gate: < {GATE_PCT}%)"
        )
    ratio = fidelity["wall_over_e2e"]
    if not 0.0 < ratio <= 2.0:
        raise SystemExit(
            f"summed operator wall_time is {ratio:.2f}x the end-to-end "
            f"time (gate: within 2x)"
        )
    return payload


def check_committed_json() -> list[str]:
    """Strict-parse every committed BENCH_*.json baseline."""
    paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        raise SystemExit("no BENCH_*.json baselines found")

    def refuse(constant: str):
        raise SystemExit(
            f"{path}: contains non-strict JSON constant {constant!r}"
        )

    for path in paths:
        json.loads(path.read_text(), parse_constant=refuse)
    return [p.name for p in paths]


# -- pytest entry point -----------------------------------------------------


def test_m5_observer_overhead_report(report):
    emit, table = report
    source = _cdr_source(N)
    best, pct = _gated_ladder(source, repeats=5)
    pcts = overhead_pct(best)
    table(
        ["configuration", "e2e best (s)", "overhead vs off"],
        [["off", round(best["off"], 4), "-"]]
        + [
            [name, round(best[name], 4), f"{pcts[name]:+.2f}%"]
            for name in pcts
        ],
        title="M5: observer overhead on the M2 CDR plan (batch=256)",
    )
    fidelity = measure_fidelity(source)
    emit(
        f"(sampling=1 fidelity: operator wall_time sums to "
        f"{fidelity['wall_over_e2e']:.2f}x the end-to-end time)"
    )
    assert pct < GATE_PCT, (
        f"observer overhead at sampling={GATE_SAMPLING} is {pct:.2f}% "
        f"(expected < {GATE_PCT}%)"
    )
    assert 0.0 < fidelity["wall_over_e2e"] <= 2.0


# -- baseline recording -----------------------------------------------------


def record_baseline(path: str | Path | None = None) -> dict:
    source = _cdr_source(N)
    best = overhead_ladder(source, repeats=5)
    baseline = {
        "n_tuples": N,
        "batch_size": BATCH,
        "sampling_strides": SAMPLING,
        "m5_e2e_seconds_best": {k: round(v, 6) for k, v in best.items()},
        "m5_overhead_pct_vs_off": overhead_pct(best),
        "m5_fidelity_sampling_1": measure_fidelity(source),
    }
    return write_baseline("BENCH_m5.json", baseline, path)


if __name__ == "__main__":
    if "--check-json" in sys.argv:
        checked = check_committed_json()
        print(f"strict-JSON ok: {', '.join(checked)}")
    elif "--smoke" in sys.argv:
        print(json.dumps(smoke(n=8000, repeats=5), indent=2))
        print(
            f"smoke ok: overhead < {GATE_PCT}% at sampling="
            f"{GATE_SAMPLING}, wall/e2e within 2x"
        )
    else:
        print(json.dumps(record_baseline(), indent=2))
