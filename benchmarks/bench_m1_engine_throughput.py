"""M1 — Engine microbenchmarks (wall-clock, informational).

Unlike E1-E16, these numbers are *not* paper reproductions — the
calibration notes flag wall-clock Python throughput as unconvincing
evidence, and DESIGN.md replaces it with virtual-time simulation for
all resource experiments.  The microbenchmarks exist for engineering
hygiene: they catch order-of-magnitude performance regressions in the
hot paths (per-element operators, window joins, aggregation, the CQL
pipeline) across commits.
"""

import pytest

from repro.core import ListSource, Plan, Record, run_plan
from repro.cql import Catalog, compile_query
from repro.operators import AggSpec, Select, WindowJoin, WindowedAggregate
from repro.windows import TimeWindow, TumblingWindow
from repro.workloads import PacketGenerator, packet_schema

N = 5000


@pytest.fixture(scope="module")
def packets():
    return PacketGenerator().generate(N)


@pytest.fixture(scope="module")
def records(packets):
    return [Record(p, ts=p["ts"], seq=i) for i, p in enumerate(packets)]


def test_m1_select_throughput(benchmark, records):
    op = Select(lambda r: r["length"] > 512)

    def run():
        n = 0
        for r in records:
            n += len(op.process(r))
        return n

    passed = benchmark(run)
    assert 0 < passed < N


def test_m1_window_join_throughput(benchmark, records):
    def run():
        join = WindowJoin(
            TimeWindow(1.0), TimeWindow(1.0), ["src_ip"], ["src_ip"]
        )
        results = 0
        for i, r in enumerate(records):
            results += len(join.process(r, i % 2))
        return results

    results = benchmark(run)
    assert results > 0


def test_m1_tumbling_aggregation_throughput(benchmark, records):
    def run():
        op = WindowedAggregate(
            TumblingWindow(10.0),
            ["src_ip"],
            [AggSpec("n", "count"), AggSpec("vol", "sum", "length")],
        )
        out = 0
        for r in records:
            out += len(op.process(r, 0))
        out += len(op.flush())
        return out

    rows = benchmark(run)
    assert rows > 0


def test_m1_cql_end_to_end_throughput(benchmark, packets):
    catalog = Catalog()
    catalog.register_stream("Traffic", packet_schema())
    plan = compile_query(
        "select tb, src_ip, count(*) as n from Traffic "
        "where length > 200 group by ts/20 as tb, src_ip",
        catalog,
    )

    def run():
        return len(
            run_plan(
                plan, [ListSource("Traffic", packets, ts_attr="ts")]
            ).records()
        )

    rows = benchmark(run)
    assert rows > 0
