"""E14 — Window semantics: agglomerative vs sliding vs shifting (slide 27).

Slide 27's figure shows the three ordering-attribute window shapes over
one timeline.  The bench runs the *same* count aggregate over the same
stream under each window and prints the resulting series — the figure's
data, as numbers.

Expected reproduction (shape): the agglomerative (landmark) count grows
monotonically; the sliding count plateaus at (rate x range); the
shifting (tumbling) count is constant per bucket at (rate x width).
"""

import pytest

from repro.core import Record
from repro.operators import AggSpec, WindowedAggregate
from repro.windows import LandmarkWindow, TimeWindow, TumblingWindow


def stream(n=60):
    """One record per time unit."""
    return [Record({"ts": float(i), "v": i}, ts=float(i), seq=i) for i in range(n)]


def series(op, data):
    out = []
    for r in data:
        for el in op.process(r):
            if isinstance(el, Record):
                out.append((el.ts, el["n"]))
    for el in op.flush():
        if isinstance(el, Record):
            out.append((el.ts, el["n"]))
    return out


def test_e14_window_shapes(benchmark, report):
    emit, table = report
    data = stream()

    def run():
        return {
            "agglomerative": series(
                WindowedAggregate(
                    LandmarkWindow(0.0), [], [AggSpec("n", "count")]
                ),
                data,
            ),
            "sliding": series(
                WindowedAggregate(
                    TimeWindow(10.0), [], [AggSpec("n", "count")]
                ),
                data,
            ),
            "shifting": series(
                WindowedAggregate(
                    TumblingWindow(10.0), [], [AggSpec("n", "count")]
                ),
                data,
            ),
        }

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    sample_points = [0, 9, 19, 29, 39, 49, 59]
    rows = []
    for t in sample_points:
        agg = next((n for ts, n in out["agglomerative"] if ts == t), "-")
        sld = next((n for ts, n in out["sliding"] if ts == t), "-")
        rows.append([t, agg, sld])
    table(
        ["time", "agglomerative count", "sliding count (T=10)"],
        rows,
        title="E14 window semantics over one stream (slide 27)",
    )
    table(
        ["bucket close ts", "shifting count"],
        [[ts, n] for ts, n in out["shifting"]],
        title="E14b shifting (tumbling) buckets",
    )
    # Agglomerative: strictly growing.
    agg_counts = [n for _t, n in out["agglomerative"]]
    assert agg_counts == sorted(agg_counts)
    assert agg_counts[-1] == 60
    # Sliding: plateaus at the window size x rate (10 tuples).
    sliding_tail = [n for _t, n in out["sliding"]][-30:]
    assert all(n == 10 for n in sliding_tail)
    # Shifting: every full bucket holds exactly 10.
    assert all(n == 10 for _t, n in out["shifting"])
    assert len(out["shifting"]) == 6
