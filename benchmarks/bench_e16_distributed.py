"""E16 (extension) — Distributed evaluation (slide 55's open issue).

"Low-level data stream processing may be highly distributed.  How do we
correlate distributed data streams?  May not be feasible to bring all
relevant data to a single site.  Some preliminary work by Gigascope,
Aurora and STREAM people [BO03, CBB+03, OJW03]."

Two benches reproduce the cited preliminary results' shape:

* **Distributed top-k monitoring** ([BO03]) — communication vs the
  naive ship-every-update baseline, swept over the slack parameter,
  with the maintained top-k checked against truth at every probe point.
* **Adaptive filters** ([OJW03]) — messages vs answer precision for a
  distributed SUM, and adaptive vs uniform width allocation when source
  volatilities are skewed.

Expected shape: communication falls orders of magnitude below naive and
decreases as slack/precision grow; adaptive allocation beats uniform
under skewed volatility; all precision/accuracy contracts hold.
"""

import random

import pytest

from repro.distributed import (
    AdaptiveFilterSum,
    TopKCoordinator,
    naive_topk_messages,
)
from repro.workloads import ZipfGenerator


def topk_events(n_events, n_nodes=8, n_objects=100, seed=5):
    gen = ZipfGenerator(n_objects, 1.3, seed=seed)
    rng = random.Random(seed + 1)
    return [(rng.randrange(n_nodes), gen.sample()) for _ in range(n_events)]


def test_e16_topk_communication(benchmark, report):
    emit, table = report
    events = topk_events(20000)

    def run():
        rows = []
        for slack in (0.0, 0.25, 0.5, 0.9):
            coord = TopKCoordinator(n_nodes=8, k=5, slack=slack)
            correct_probes = 0
            probes = 0
            for i, (node, obj) in enumerate(events):
                coord.observe(node, obj)
                if (i + 1) % 1000 == 0:
                    probes += 1
                    if coord.accuracy() == 1.0:
                        correct_probes += 1
            rows.append(
                [
                    slack,
                    coord.messages,
                    coord.resolutions,
                    naive_topk_messages(events) / coord.messages,
                    f"{correct_probes}/{probes}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["slack", "messages", "resolutions", "saving vs naive",
         "exact probes"],
        rows,
        title="E16 distributed top-k monitoring (BO03) over 20000 updates",
    )
    messages = [r[1] for r in rows]
    assert messages == sorted(messages, reverse=True), (
        "more slack must not cost more messages"
    )
    assert rows[-1][3] > 4, "communication should fall well below naive"
    # The answer is exact at (nearly) every probe for every slack.
    for row in rows:
        hits, total = row[4].split("/")
        assert int(hits) >= int(total) - 1


def test_e16_adaptive_filters(benchmark, report):
    emit, table = report
    rng = random.Random(31)
    n_sources = 10
    vol = [4.0] * 2 + [0.1] * 8

    def make_updates(n=8000):
        values = [0.0] * n_sources
        out = []
        for _ in range(n):
            i = rng.randrange(n_sources)
            values[i] += rng.gauss(0.0, vol[i])
            out.append((i, values[i]))
        return out

    updates = make_updates()

    def run():
        rows = []
        for precision in (1.0, 4.0, 16.0, 64.0):
            uniform = AdaptiveFilterSum(n_sources, precision, adaptive=False)
            adaptive = AdaptiveFilterSum(n_sources, precision, adaptive=True)
            for src, val in updates:
                uniform.update(src, val)
                adaptive.update(src, val)
                assert uniform.within_precision()
                assert adaptive.within_precision()
            rows.append(
                [precision, len(updates), uniform.messages, adaptive.messages]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["precision +/-", "updates", "uniform msgs", "adaptive msgs"],
        rows,
        title="E16b adaptive filters for distributed SUM (OJW03)",
    )
    uniform_msgs = [r[2] for r in rows]
    adaptive_msgs = [r[3] for r in rows]
    assert uniform_msgs == sorted(uniform_msgs, reverse=True)
    assert adaptive_msgs == sorted(adaptive_msgs, reverse=True)
    # Regime structure (also observed by OJW03): when the precision
    # budget is too small to absorb even one hot-source step, moving
    # width between sources cannot help and reallocation churn hurts;
    # once filters are meaningfully wide, following volatility wins big.
    assert adaptive_msgs[-1] < uniform_msgs[-1] / 2
    assert adaptive_msgs[-2] < uniform_msgs[-2]
