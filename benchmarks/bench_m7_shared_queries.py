"""M7 — Standing-query service payoff (wall-clock).

The M7 acceptance gate: 64 standing queries sharing a selection +
windowed-aggregation prefix, executed jointly by
:class:`~repro.service.StandingQueryService`, must beat 64 isolated
single-query engines by >= 2x throughput — while every query's output
stays element-identical to its isolated run (checked here on the timed
data, and certified exhaustively by ``tests/service/``).

Three registry shapes are measured:

* ``identical`` — 64 copies of one query: the whole chain collapses.
* ``shared-prefix`` — one route and one windowed aggregate fanned out
  into 64 distinct projections (the gated configuration).
* ``distinct-predicates`` — 64 disjoint equality selections: no plan
  sharing at all, so any win is the predicate index probing one hash
  bucket instead of evaluating 64 WHERE clauses per record.

Timings interleave joint and isolated round-robin and keep best-of.
``--smoke`` runs the gate on a reduced input (CI); ``--check-json``
strict-parses every committed ``BENCH_*.json``; no flag records
``BENCH_m7.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import interleaved_best, write_baseline  # noqa: E402

from repro.core.engine import Engine
from repro.core.stream import ListSource, records_from_dicts
from repro.core.tuples import Field, Schema
from repro.cql.parser import parse
from repro.cql.planner import plan_stmt
from repro.cql.registry import Catalog
from repro.service import ServiceConfig, StandingQueryService

N = 12000
N_QUERIES = 64
BATCH = 64
GATE_SPEEDUP = 2.0
REPO_ROOT = Path(__file__).resolve().parent.parent


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream(
        "pkts",
        Schema(
            [
                Field("ts", float),
                Field("src", str),
                Field("port", int),
                Field("len", int),
            ],
            ordering="ts",
            name="pkts",
        ),
    )
    return catalog


def _rows(n: int) -> list[dict]:
    return [
        {
            "ts": float(i),
            "src": "abc"[i % 3],
            "port": (i * 13) % N_QUERIES,
            "len": (i * 7) % 23,
        }
        for i in range(n)
    ]


def _shared_prefix_queries() -> list[str]:
    """64 distinct queries sharing selection + aggregation + projection.

    The queries differ only in their LIMIT, so the service collapses the
    expensive stateful prefix (route + windowed aggregate + projection)
    into one chain fanned out to 64 per-query Limit operators.
    """
    return [
        f"select tb, src, count(*) as n, sum(len) as s from pkts"
        f" where len > 3 group by ts/10 as tb, src limit {k}"
        for k in range(1, N_QUERIES + 1)
    ]


def _queries(pattern: str) -> list[str]:
    if pattern == "identical":
        return [
            "select tb, src, count(*) as n, sum(len) as s from pkts"
            " where len > 3 group by ts/10 as tb, src"
        ] * N_QUERIES
    if pattern == "shared-prefix":
        return _shared_prefix_queries()
    if pattern == "distinct-predicates":
        return [
            f"select src, len from pkts where port = {k}"
            for k in range(N_QUERIES)
        ]
    raise ValueError(pattern)


def _run_joint(queries, catalog, rows):
    service = StandingQueryService(catalog, ServiceConfig(batch_size=BATCH))
    handles = [service.register(q) for q in queries]
    result = service.run(
        [ListSource("pkts", records_from_dicts(rows, ts_attr="ts"))]
    )
    return service, [result.query(h).outputs for h in handles]


def _run_isolated(queries, catalog, rows):
    outputs = []
    for query in queries:
        engine = Engine(plan_stmt(parse(query), catalog), batch_size=BATCH)
        result = engine.run(
            [ListSource("pkts", records_from_dicts(rows, ts_attr="ts"))]
        )
        outputs.append(result.outputs["out"])
    return outputs


def compare(n: int = N, repeats: int = 3) -> dict:
    """Best-of wall time per registry shape, with an output-identity
    check between the final joint/isolated pair of each shape."""
    rows = _rows(n)
    catalog = _catalog()
    patterns = ("identical", "shared-prefix", "distinct-predicates")
    payload: dict = {
        "n_tuples": n,
        "n_queries": N_QUERIES,
        "batch_size": BATCH,
        "patterns": {},
    }
    for pattern in patterns:
        queries = _queries(pattern)
        state: dict = {}

        def run_joint():
            state["service"], state["joint"] = _run_joint(
                queries, catalog, rows
            )

        def run_isolated():
            state["isolated"] = _run_isolated(queries, catalog, rows)

        best = interleaved_best(
            {"joint": run_joint, "isolated": run_isolated}, repeats=repeats
        )
        service = state["service"]
        joint_outputs = state["joint"]
        isolated_outputs = state["isolated"]
        assert joint_outputs is not None and isolated_outputs is not None
        for i, (joint, isolated) in enumerate(
            zip(joint_outputs, isolated_outputs)
        ):
            if joint != isolated:
                raise SystemExit(
                    f"{pattern}: query {i} diverged between the joint "
                    f"service and its isolated engine"
                )
        stats = service.stats()
        payload["patterns"][pattern] = {
            "e2e_seconds_best": {
                k: round(v, 6) for k, v in best.items()
            },
            "throughput_tuples_per_sec": {
                k: round(n / v, 1) for k, v in best.items()
            },
            "speedup_joint_over_isolated": round(
                best["isolated"] / best["joint"], 4
            ),
            "plan_operators": stats["plan_operators"],
            "isolated_operators": stats["isolated_operators"],
            "routes": stats["routes"],
        }
    return payload


def _gated_compare(n: int, repeats: int, attempts: int = 3) -> dict:
    """Re-measure up to ``attempts`` times before failing the speedup
    gate (best-of timing is stable, but CI machines are shared)."""
    payload: dict = {}
    for _ in range(attempts):
        payload = compare(n, repeats)
        gated = payload["patterns"]["shared-prefix"]
        if gated["speedup_joint_over_isolated"] >= GATE_SPEEDUP:
            break
    return payload


def smoke(n: int = 4000, repeats: int = 2) -> dict:
    """CI gate: >= 2x over 64 isolated engines on shared-prefix."""
    payload = _gated_compare(n, repeats)
    gated = payload["patterns"]["shared-prefix"]
    speedup = gated["speedup_joint_over_isolated"]
    if speedup < GATE_SPEEDUP:
        raise SystemExit(
            f"shared-prefix joint speedup over {N_QUERIES} isolated "
            f"engines is {speedup:.2f}x (gate: >= {GATE_SPEEDUP}x)"
        )
    if gated["plan_operators"] >= gated["isolated_operators"]:
        raise SystemExit(
            "shared-prefix merged plan is not smaller than the sum of "
            "isolated plans — sharing is not happening"
        )
    return payload


def check_committed_json() -> list[str]:
    """Strict-parse every committed BENCH_*.json baseline."""
    paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        raise SystemExit("no BENCH_*.json baselines found")

    def refuse(constant: str):
        raise SystemExit(
            f"{path}: contains non-strict JSON constant {constant!r}"
        )

    for path in paths:
        json.loads(path.read_text(), parse_constant=refuse)
    return [p.name for p in paths]


# -- pytest entry point -----------------------------------------------------


def test_m7_shared_queries(report):
    emit, table = report
    payload = _gated_compare(N, repeats=3)
    rows = []
    for pattern, stats in payload["patterns"].items():
        thr = stats["throughput_tuples_per_sec"]
        rows.append(
            [
                pattern,
                thr["joint"],
                thr["isolated"],
                f"{stats['speedup_joint_over_isolated']}x",
                f"{stats['plan_operators']}/{stats['isolated_operators']}",
            ]
        )
    table(
        [
            "registry shape",
            "joint tuples/s",
            "isolated tuples/s",
            "speedup",
            "ops merged/isolated",
        ],
        rows,
        title=f"M7: {N_QUERIES} standing queries, one DAG vs N engines",
    )
    gated = payload["patterns"]["shared-prefix"]
    assert gated["speedup_joint_over_isolated"] >= GATE_SPEEDUP


# -- baseline recording -----------------------------------------------------


def record_baseline(path: str | Path | None = None) -> dict:
    payload = compare(N, repeats=3)
    baseline = {f"m7_{k}": v for k, v in payload.items()}
    return write_baseline("BENCH_m7.json", baseline, path)


if __name__ == "__main__":
    if "--check-json" in sys.argv:
        checked = check_committed_json()
        print(f"strict-JSON ok: {', '.join(checked)}")
    elif "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print(
            f"smoke ok: >= {GATE_SPEEDUP}x over {N_QUERIES} isolated "
            f"engines on the shared-prefix registry"
        )
    else:
        print(json.dumps(record_baseline(), indent=2))
