"""E15 — Multi-query sharing (slide 45, [HFAE03]).

"Sharing (of expressions, results etc.) among queries can lead to
improved performance... sharing between select/project expressions,
sharing between sliding window join expressions."

Two benches:

* **Shared predicates** — N conjunctive filter queries drawn from a
  small predicate pool; shared evaluation computes each distinct
  predicate once per tuple.
* **Shared window joins** — N join queries with different window sizes
  served by one physical join at the largest window, with result
  routing.

Expected reproduction (shape): shared predicate work grows with the
pool size (constant in N) while independent work grows linearly in N;
the shared join's CPU is a fraction of N independent joins' and routed
results exactly match per-query independent execution.
"""

import pytest

from repro.core import Record
from repro.operators import WindowJoin
from repro.optimizer import SharedFilterBank, SharedWindowJoin
from repro.windows import TimeWindow
from repro.workloads import ZipfGenerator


def records(n=1500, seed=3):
    gen = ZipfGenerator(100, 0.7, seed=seed)
    return [
        Record({"v": gen.sample(), "w": i % 7}, ts=float(i), seq=i)
        for i in range(n)
    ]


def predicate_pool():
    return {
        "small": lambda r: r["v"] < 10,
        "large": lambda r: r["v"] >= 50,
        "even": lambda r: r["v"] % 2 == 0,
        "w0": lambda r: r["w"] == 0,
        "w_low": lambda r: r["w"] < 3,
        "vmid": lambda r: 10 <= r["v"] < 50,
    }


def test_e15_shared_predicates(benchmark, report):
    emit, table = report
    data = records()
    pool = predicate_pool()
    pool_names = sorted(pool)

    def run():
        rows = []
        for n_queries in (2, 8, 32, 128):
            queries = {
                f"q{j}": [
                    pool_names[j % len(pool_names)],
                    pool_names[(j + 1) % len(pool_names)],
                ]
                for j in range(n_queries)
            }
            bank = SharedFilterBank(pool, queries)
            for r in data:
                bank.process(r)
            rows.append(
                [
                    n_queries,
                    bank.shared_evals,
                    bank.independent_evals,
                    bank.independent_evals / bank.shared_evals,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["queries", "shared evals", "independent evals", "saving"],
        rows,
        title="E15 shared select/project expressions (slide 45)",
    )
    # Shape: shared cost grows only until the predicate pool is fully
    # covered, then flattens; the saving factor keeps growing with N.
    savings = [r[3] for r in rows]
    assert savings == sorted(savings)
    assert rows[-1][1] == rows[-2][1], (
        "shared cost must flatten once the pool is covered"
    )


def test_e15_shared_window_join(benchmark, report):
    emit, table = report
    data = records(n=800, seed=9)
    windows = {"w1": 1.0, "w4": 4.0, "w16": 16.0, "w64": 64.0}

    def independent_results():
        cpu = 0.0
        results = {}
        for qname, t in windows.items():
            join = WindowJoin(
                TimeWindow(t), TimeWindow(t), ["v"], ["v"]
            )
            out = []
            for i, r in enumerate(data):
                out += join.process(r, i % 2)
            cpu += join.cpu_used
            results[qname] = len([e for e in out if isinstance(e, Record)])
        return cpu, results

    def shared_results():
        shared = SharedWindowJoin(["v"], ["v"], windows)
        counts = {q: 0 for q in windows}
        for i, r in enumerate(data):
            routed = shared.process(r, i % 2)
            for q, pairs in routed.items():
                counts[q] += len(pairs)
        return shared.shared_cpu, counts

    def run():
        return independent_results(), shared_results()

    (ind_cpu, ind_counts), (sh_cpu, sh_counts) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table(
        ["query (window)", "independent results", "shared-join results"],
        [[q, ind_counts[q], sh_counts[q]] for q in windows],
        title="E15b shared sliding-window join: answer equivalence",
    )
    emit(
        f"CPU: {len(windows)} independent joins = {ind_cpu:.0f}, "
        f"one shared join = {sh_cpu:.0f} "
        f"({ind_cpu / sh_cpu:.1f}x saving)"
    )
    assert sh_counts == ind_counts, "shared routing must match"
    assert sh_cpu < ind_cpu / 2
