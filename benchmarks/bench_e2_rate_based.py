"""E2 — Rate-based plan selection (slide 41, [VN02]).

Paper's figure: a 500 tuples/sec stream through two filters, each with
selectivity 0.1; one filter can only service 50 tuples/sec, the other is
"very fast".  Slow-first yields 0.5 tuples/sec, fast-first 5 tuples/sec.

Expected reproduction: exact (the example is analytic).  The simulator
cross-check runs both plans with drops at the saturated operator and
must show the same ordering; a sweep over capacity ratios locates the
regime where plan choice stops mattering (both orders equal once the
slow filter is no longer the bottleneck).
"""

import pytest

from repro.core import ListSource, Plan, SimConfig, Simulation
from repro.operators import Select
from repro.optimizer import (
    RateOperator,
    best_rate_order,
    chain_output_rate,
    chain_rate_profile,
)
from repro.scheduling import FIFOScheduler


def slide41_ops():
    slow = RateOperator("s1_slow", capacity=50.0, selectivity=0.1)
    fast = RateOperator("s2_fast", capacity=1e12, selectivity=0.1)
    return slow, fast


def simulate_order(first, second, n=500):
    """Simulate one plan order over 1 virtual second of a 500/sec feed.

    Runs in *semantic* mode: the filters really drop tuples, so a
    selective fast filter genuinely relieves the slow operator — the
    effect rate-based optimization exploits.  ``first``/``second`` are
    (predicate, cost) pairs.
    """
    plan = Plan()
    plan.add_input("S")
    op1 = plan.add(
        Select(first[0], name="first", cost_per_tuple=first[1]),
        upstream=["S"],
    )
    op2 = plan.add(
        Select(second[0], name="second", cost_per_tuple=second[1]),
        upstream=[op1],
    )
    plan.mark_output(op2, "out")
    rows = [{"v": i, "ts": i / 500.0} for i in range(n)]
    sim = Simulation(
        plan,
        FIFOScheduler(),
        SimConfig(
            sample_interval=0.1,
            queue_capacity=5.0,
            drain=False,
            mode="semantic",
        ),
    )
    return sim.run([ListSource("S", rows, ts_attr="ts")])


def test_e2_slide41_exact(benchmark, report):
    emit, table = report
    slow, fast = slide41_ops()

    def run():
        return {
            "slow_first": chain_output_rate([slow, fast], 500.0),
            "fast_first": chain_output_rate([fast, slow], 500.0),
            "best": best_rate_order([slow, fast], 500.0),
        }

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    table(
        ["plan", "output rate (tuples/sec)", "paper"],
        [
            ["s1(slow) then s2", result["slow_first"], 0.5],
            ["s2(fast) then s1", result["fast_first"], 5.0],
        ],
        title="E2 slide-41 rate-based plan choice (exact reproduction)",
    )
    profile = chain_rate_profile([fast, slow], 500.0)
    emit("winning plan profile: " + " -> ".join(
        f"{name}@{rate:g}/s" for name, rate in profile
    ))
    assert result["slow_first"] == pytest.approx(0.5)
    assert result["fast_first"] == pytest.approx(5.0)
    assert [op.name for op in result["best"][0]] == ["s2_fast", "s1_slow"]


def test_e2_simulator_cross_check(benchmark, report):
    emit, table = report

    # Both filters keep 10%; the slow one costs 0.02s/tuple
    # (50 tuples/sec), the fast one is effectively free.
    slow_filter = (lambda r: r["v"] % 100 < 10, 0.02)
    fast_filter = (lambda r: r["v"] % 10 == 0, 1e-6)

    def run():
        slow_first = simulate_order(slow_filter, fast_filter)
        fast_first = simulate_order(fast_filter, slow_filter)
        return slow_first, fast_first

    slow_first, fast_first = benchmark.pedantic(run, rounds=2, iterations=1)
    table(
        ["plan", "sim output (tuples)", "drops"],
        [
            ["slow first", slow_first.output_count["out"], slow_first.drops],
            ["fast first", fast_first.output_count["out"], fast_first.drops],
        ],
        title="E2b simulator cross-check (1s of 500/s feed, bounded queues)",
    )
    assert fast_first.output_count["out"] > 3 * slow_first.output_count["out"]
    assert fast_first.drops < slow_first.drops


def test_e2_capacity_sweep(benchmark, report):
    emit, table = report
    fast = RateOperator("fast", capacity=1e12, selectivity=0.1)

    def run():
        rows = []
        for capacity in (10, 50, 100, 500, 1000, 5000):
            slow = RateOperator("slow", capacity=capacity, selectivity=0.1)
            sf = chain_output_rate([slow, fast], 500.0)
            ff = chain_output_rate([fast, slow], 500.0)
            rows.append([capacity, sf, ff, ff / max(sf, 1e-12)])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        ["slow capacity", "slow-first", "fast-first", "advantage"],
        rows,
        title="E2c plan-choice advantage vs bottleneck capacity",
    )
    # Crossover: once capacity >= 500 (input rate), ordering is moot.
    assert rows[-1][3] == pytest.approx(1.0)
    assert rows[0][3] > 5.0
