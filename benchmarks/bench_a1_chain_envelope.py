"""Ablation A1 — is Chain's lower envelope worth it over one-step Greedy?

DESIGN.md adopts the full BBDM03 lower-envelope priorities for the
Chain scheduler.  This ablation compares Chain against the simpler
one-step Greedy rule (release-rate of the head tuple only) across chain
shapes, burst lengths, and multi-chain plans.

Finding (asserted): on every tested plan family the two policies make
identical choices — the envelope's extra machinery buys its worst-case
*guarantee* (Chain is provably near-optimal; Greedy is not) but not
better behaviour on these workloads — while both dominate FIFO by large
margins on bursts.  This documents why the library keeps both: Greedy
as the cheap default intuition, Chain as the principled policy.
"""

import pytest

from repro.core import ListSource, Plan, SimConfig, Simulation
from repro.operators import Select
from repro.optimizer import ChainSpec, measure_chain_memory
from repro.scheduling import ChainScheduler, FIFOScheduler, GreedyScheduler


def peak(specs, arrivals, scheduler):
    series = measure_chain_memory(specs, arrivals, scheduler)
    return max(v for _t, v in series)


def two_chain_plan(spec_a, sel_b, cost_b):
    plan = Plan()
    plan.add_input("A")
    plan.add_input("B")
    upstream = "A"
    last = None
    for i, (cost, sel) in enumerate(spec_a):
        op = Select(
            lambda r: True, name=f"a{i}", cost_per_tuple=cost, selectivity=sel
        )
        plan.add(op, upstream=[upstream])
        upstream = op
        last = op
    b1 = plan.add(
        Select(lambda r: True, name="b1", cost_per_tuple=cost_b,
               selectivity=sel_b),
        upstream=["B"],
    )
    plan.mark_output(last, "outA")
    plan.mark_output(b1, "outB")
    return plan


def run_two_chain(spec_a, sel_b, scheduler):
    rows_a = [{"ts": float(i * 2)} for i in range(8)]
    rows_b = [{"ts": i * 0.7} for i in range(20)]
    sim = Simulation(
        two_chain_plan(spec_a, sel_b, 1.0),
        scheduler,
        SimConfig(sample_interval=1.0),
    )
    res = sim.run(
        {
            "A": ListSource("A", rows_a, ts_attr="ts"),
            "B": ListSource("B", rows_b, ts_attr="ts"),
        }
    )
    return res.memory.max(), res.memory.mean()


def test_a1_single_chain_shapes(benchmark, report):
    emit, table = report
    arrivals = [float(i) for i in range(8)]
    cases = {
        "steep-then-shallow (slide 43)": [
            ChainSpec(1.0, 0.2), ChainSpec(1.0, 0.0),
        ],
        "shallow-then-steep": [
            ChainSpec(1.0, 0.9), ChainSpec(1.0, 0.0),
        ],
        "no-drop-then-kill": [
            ChainSpec(1.0, 1.0), ChainSpec(1.0, 0.0),
        ],
        "three-stage mixed": [
            ChainSpec(1.0, 0.95), ChainSpec(2.0, 0.5), ChainSpec(1.0, 0.0),
        ],
    }

    def run():
        rows = []
        for name, specs in cases.items():
            g = peak(specs, arrivals, GreedyScheduler())
            c = peak(specs, arrivals, ChainScheduler())
            f = peak(specs, arrivals, FIFOScheduler())
            rows.append([name, g, c, f])
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    table(
        ["chain shape", "Greedy peak", "Chain peak", "FIFO peak"],
        rows,
        title="A1 envelope (Chain) vs one-step (Greedy) vs FIFO",
    )
    for _name, g, c, f in rows:
        assert c == pytest.approx(g), "Chain and Greedy coincide here"
        assert c <= f + 1e-9, "both must dominate FIFO"
    assert any(c < f - 1e-9 for _n, _g, c, f in rows), (
        "memory-aware scheduling must beat FIFO somewhere"
    )


def test_a1_multi_chain_plans(benchmark, report):
    emit, table = report

    def run():
        rows = []
        for name, spec_a, sel_b in (
            ("slow A + selective B", [(2.0, 1.0), (1.0, 0.0)], 0.3),
            ("slow A + permissive B", [(2.0, 1.0), (1.0, 0.0)], 0.7),
            ("shallow A + B", [(1.0, 0.9), (1.0, 0.0)], 0.5),
        ):
            g_peak, g_mean = run_two_chain(spec_a, sel_b, GreedyScheduler())
            c_peak, c_mean = run_two_chain(spec_a, sel_b, ChainScheduler())
            rows.append([name, g_peak, c_peak, g_mean, c_mean])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["plan", "Greedy peak", "Chain peak", "Greedy mean", "Chain mean"],
        rows,
        title="A1b two-chain plans: the policies still coincide",
    )
    for _name, gp, cp, gm, cm in rows:
        assert cp == pytest.approx(gp)
        assert cm == pytest.approx(gm)
