"""M4 — Fault-tolerant execution: recovery latency and overhead.

Measures what the resilience layer costs and what it buys, over a
punctuated per-key aggregation workload (punctuations every
``EPOCH_LEN`` records delimit the checkpointable epochs):

* **supervision overhead** — wall-clock of a fault-free supervised run
  vs the bare :class:`~repro.parallel.ShardedEngine`, per backend
  (epoch lockstep + checkpointing is the price of recoverability);
* **recovery latency** — extra wall-clock when a seeded
  :class:`~repro.resilience.FaultInjector` kills one shard mid-run
  (worker rebuild + state restore + epoch replay), with the output
  checked element-identical to a fault-free single-engine run;
* **checkpoint cadence** — sparser checkpoints (``checkpoint_every``)
  trade steady-state work for more replayed epochs at recovery time.

Recovery *correctness* across every differential plan is the job of
``tests/resilience/test_chaos_recovery.py``; this file times the happy
and unhappy paths and records the numbers.

Run as a script to record ``BENCH_m4.json`` (add ``--smoke`` for the
tiny CI variant that injects a crash on both backends and verifies the
output end-to-end in seconds).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import best_of, write_baseline  # noqa: E402

from repro.core import ListSource, Punctuation, Record, run_plan
from repro.core.graph import linear_plan
from repro.operators import AggSpec, Aggregate, Select
from repro.parallel import HashPartition, ShardedEngine
from repro.resilience import FaultInjector, Supervisor

N = 40000
EPOCH_LEN = 2000
N_SHARDS = 4
BACKENDS = ["thread", "process"]


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def recovery_plan():
    """Select → per-key aggregate; hash partitioning keeps it local."""
    return linear_plan(
        "events",
        [
            Select(lambda r: r["v"] >= 0, name="keep"),
            Aggregate(
                ["k"],
                [AggSpec("n", "count"), AggSpec("total", "sum", "v")],
                name="per_key",
            ),
        ],
    )


def recovery_elements(n: int = N, epoch_len: int = EPOCH_LEN):
    out = []
    for i in range(n):
        out.append(
            Record(
                {"ts": float(i), "k": i % 64, "v": (i * 7919) % 100 - 5},
                ts=float(i),
                seq=i,
            )
        )
        if i % epoch_len == epoch_len - 1:
            out.append(Punctuation.time_bound("ts", float(i), ts=float(i)))
    return out


def _source(elements) -> ListSource:
    return ListSource("events", elements)


def _sharded(backend: str) -> ShardedEngine:
    return ShardedEngine(
        recovery_plan(), HashPartition(["k"], N_SHARDS), backend=backend
    )


def measure_backend(
    backend: str,
    elements,
    baseline_outputs,
    crash_epoch: int,
    repeats: int = 3,
) -> dict:
    """Clean vs supervised vs crash-recovery wall-clock for one backend."""
    n = sum(1 for el in elements if isinstance(el, Record))

    bare_s, _ = best_of(
        lambda: _sharded(backend).run([_source(elements)]), repeats
    )

    def clean_supervised():
        return Supervisor(_sharded(backend), backoff_base=0.001).run(
            [_source(elements)]
        )

    clean_s, clean_result = best_of(clean_supervised, repeats)
    assert clean_result.outputs == baseline_outputs

    def crashed_supervised():
        injector = FaultInjector(seed=17)
        injector.crash_shard(1, epoch=crash_epoch)
        sup = Supervisor(
            _sharded(backend), backoff_base=0.001, injector=injector
        )
        result = sup.run([_source(elements)])
        return sup.report, result

    crash_s, (report, crash_result) = best_of(crashed_supervised, repeats)
    assert crash_result.outputs == baseline_outputs
    assert report.retries >= 1

    return {
        "bare_sharded_s": round(bare_s, 4),
        "supervised_clean_s": round(clean_s, 4),
        "supervision_overhead_s": round(clean_s - bare_s, 4),
        "supervised_crash_s": round(crash_s, 4),
        "recovery_latency_s": round(crash_s - clean_s, 4),
        "retries": report.retries,
        "replayed_epochs": report.replayed_epochs,
        "tuples_per_sec_clean": round(n / clean_s, 1),
        "tuples_per_sec_under_crash": round(n / crash_s, 1),
        "output_identical": True,
    }


def checkpoint_cadence(
    elements, baseline_outputs, crash_epoch: int, cadences=(1, 3, 7)
) -> dict:
    """Recovery cost as checkpoints get sparser (thread backend)."""
    results = {}
    for every in cadences:
        injector = FaultInjector(seed=17)
        injector.crash_shard(1, epoch=crash_epoch)
        sup = Supervisor(
            _sharded("thread"),
            backoff_base=0.001,
            checkpoint_every=every,
            injector=injector,
        )
        elapsed, result = best_of(
            lambda: sup.run([_source(elements)]), repeats=1
        )
        assert result.outputs == baseline_outputs
        results[str(every)] = {
            "crash_run_s": round(elapsed, 4),
            "checkpoints": sup.report.checkpoints,
            "replayed_epochs": sup.report.replayed_epochs,
        }
    return results


# -- pytest entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    elements = recovery_elements(8000, 500)
    baseline = run_plan(recovery_plan(), [_source(elements)]).outputs
    return elements, baseline


@pytest.mark.parametrize("backend", BACKENDS)
def test_m4_crash_recovery_is_exact(benchmark, workload, backend):
    elements, baseline = workload

    def run_with_crash():
        injector = FaultInjector(seed=17)
        injector.crash_shard(1, epoch=4)
        sup = Supervisor(
            _sharded(backend), backoff_base=0.001, injector=injector
        )
        return sup.run([_source(elements)])

    result = benchmark(run_with_crash)
    assert result.outputs == baseline


def test_m4_recovery_report(report, workload):
    """The M4 table: overhead + recovery latency per backend."""
    emit, table = report
    elements, baseline = workload
    rows = []
    for backend in BACKENDS:
        m = measure_backend(backend, elements, baseline, crash_epoch=4, repeats=1)
        rows.append(
            [
                backend,
                m["supervised_clean_s"],
                m["supervision_overhead_s"],
                m["recovery_latency_s"],
                m["retries"],
                m["replayed_epochs"],
            ]
        )
    table(
        [
            "backend",
            "clean s",
            "supervision overhead s",
            "recovery latency s",
            "retries",
            "replayed epochs",
        ],
        rows,
        title="M4: crash recovery (1 shard killed mid-run, output exact)",
    )
    emit(
        "(chaos suite tests/resilience/test_chaos_recovery.py proves "
        "recovered outputs identical across every differential plan)"
    )


# -- baseline recording ----------------------------------------------------


def record_baseline(path: str | Path | None = None, n: int = N) -> dict:
    """Write the M4 recovery baseline for future PRs to diff against."""
    elements = recovery_elements(n)
    baseline_outputs = run_plan(recovery_plan(), [_source(elements)]).outputs
    n_epochs = sum(1 for el in elements if isinstance(el, Punctuation))
    # An odd crash epoch sits between sparse checkpoints, so the
    # cadence sweep shows genuine epoch replay, not a lucky zero.
    crash_epoch = n_epochs // 2 + 1
    baseline = {
        "n_tuples": n,
        "epoch_len": EPOCH_LEN,
        "n_shards": N_SHARDS,
        "cpus": available_cpus(),
        "crash_epoch": crash_epoch,
        "m4_recovery": {
            backend: measure_backend(
                backend, elements, baseline_outputs, crash_epoch
            )
            for backend in BACKENDS
        },
        "m4_checkpoint_cadence": checkpoint_cadence(
            elements, baseline_outputs, crash_epoch
        ),
    }
    return write_baseline("BENCH_m4.json", baseline, path)


def smoke(n: int = 4000, epoch_len: int = 250) -> dict:
    """Tiny CI variant: kill a shard on both backends, verify the
    recovered output element-identical to a fault-free run."""
    elements = recovery_elements(n, epoch_len)
    baseline_outputs = run_plan(recovery_plan(), [_source(elements)]).outputs
    results = {}
    for backend in BACKENDS:
        injector = FaultInjector(seed=17)
        injector.crash_shard(1, epoch=3)
        sup = Supervisor(
            _sharded(backend), backoff_base=0.001, injector=injector
        )
        elapsed, result = best_of(
            lambda: sup.run([_source(elements)]), repeats=1
        )
        if result.outputs != baseline_outputs:
            raise AssertionError(
                f"smoke: {backend} recovered output differs from the "
                f"fault-free run"
            )
        if sup.report.retries < 1:
            raise AssertionError(
                f"smoke: {backend} injected crash never fired"
            )
        results[backend] = {
            "crash_run_s": round(elapsed, 4),
            "retries": sup.report.retries,
            "replayed_epochs": sup.report.replayed_epochs,
            "output_identical": True,
        }
    return results


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print("smoke ok: both backends recovered with exact output")
    else:
        recorded = record_baseline()
        print(json.dumps(recorded, indent=2))
