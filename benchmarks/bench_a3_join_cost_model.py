"""Ablation A3 — sensitivity of E3's verdict to the join cost model.

E3 concluded hash/hash minimizes CPU under the default
:class:`~repro.operators.window_join.JoinCosts` (hash probe = 1, scan =
0.25/tuple).  That verdict depends on the probe/scan cost ratio: if
per-tuple scanning is cheap enough (tight loops over small arrays) and
hashing expensive (hashing wide keys, cache misses in the table), NL
wins.  This ablation sweeps the ratio to locate the crossover, showing
the slide-33 trade-off is a *cost-model statement*, not an absolute.
"""

import pytest

from repro.core import Record
from repro.operators import JoinCosts, WindowJoin
from repro.windows import TimeWindow
from repro.workloads import ZipfGenerator


def elements(n=400, seed=7):
    keys = ZipfGenerator(40, 0.8, seed=seed)
    return [
        (i % 2, Record({"k": keys.sample()}, ts=float(i) / 10.0, seq=i))
        for i in range(n)
    ]


def cpu_for(strategy, costs, data):
    join = WindowJoin(
        TimeWindow(4.0),
        TimeWindow(4.0),
        ["k"],
        ["k"],
        left_strategy=strategy,
        right_strategy=strategy,
        costs=costs,
    )
    for port, el in data:
        join.process(el, port)
    return join.cpu_used


def test_a3_probe_scan_ratio_sweep(benchmark, report):
    emit, table = report
    data = elements()

    def run():
        rows = []
        for scan_cost in (0.5, 0.25, 0.1, 0.02, 0.005):
            costs = JoinCosts(
                hash_probe=1.0,
                hash_insert=1.0,
                hash_invalidate=1.0,
                scan_tuple=scan_cost,
                list_insert=scan_cost,
                list_invalidate=scan_cost,
            )
            hash_cpu = cpu_for("hash", costs, data)
            nl_cpu = cpu_for("nl", costs, data)
            rows.append(
                [
                    scan_cost,
                    hash_cpu,
                    nl_cpu,
                    "hash" if hash_cpu < nl_cpu else "nl",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["scan cost/tuple", "hash CPU", "NL CPU", "winner"],
        rows,
        title="A3 window-join winner vs probe/scan cost ratio",
    )
    winners = [r[3] for r in rows]
    assert winners[0] == "hash", "expensive scans favour hashing"
    assert winners[-1] == "nl", "near-free scans favour nested loops"
    # The crossover is monotone: once NL wins it keeps winning.
    first_nl = winners.index("nl")
    assert all(w == "nl" for w in winners[first_nl:])


def test_a3_window_size_interacts(benchmark, report):
    emit, table = report

    def run():
        rows = []
        costs = JoinCosts(scan_tuple=0.05, list_insert=0.05,
                          list_invalidate=0.05)
        for window in (1.0, 4.0, 16.0, 64.0):
            data = elements(n=400)
            hash_join = WindowJoin(
                TimeWindow(window), TimeWindow(window), ["k"], ["k"],
                costs=costs,
            )
            nl_join = WindowJoin(
                TimeWindow(window), TimeWindow(window), ["k"], ["k"],
                left_strategy="nl", right_strategy="nl", costs=costs,
            )
            for port, el in data:
                hash_join.process(el, port)
            for port, el in data:
                nl_join.process(el, port)
            rows.append(
                [window, hash_join.cpu_used, nl_join.cpu_used,
                 "hash" if hash_join.cpu_used < nl_join.cpu_used else "nl"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["window T", "hash CPU", "NL CPU", "winner"],
        rows,
        title="A3b scan cost grows with the window; hashing does not",
    )
    nl_costs = [r[2] for r in rows]
    hash_costs = [r[1] for r in rows]
    assert nl_costs == sorted(nl_costs), "NL cost grows with window size"
    # Hash probe cost is window-independent; only invalidation varies.
    assert max(hash_costs) < 2.5 * min(hash_costs)
    assert rows[0][3] == "nl" and rows[-1][3] == "hash", (
        "small windows favour NL, large windows favour hashing"
    )
