"""Shared helpers for the experiment benchmarks.

Every bench regenerates one slide's table/figure (see DESIGN.md's
experiment index).  Report lines are buffered during the run and printed
in the terminal summary, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the reproduced numbers alongside the timings regardless of capture mode.
"""

from __future__ import annotations

import pytest

_LINES: list[str] = []


def emit(text: str = "") -> None:
    """Queue a report line for the terminal summary."""
    _LINES.append(text)


def table(headers: list[str], rows: list[list], title: str = "") -> None:
    """Queue an aligned text table."""
    if title:
        emit("")
        emit(f"--- {title} ---")
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    for i, row in enumerate(cells):
        emit(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            emit("-+-".join("-" * w for w in widths))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def pytest_collection_modifyitems(items):
    """Every collected bench test is ``slow``: benches are excluded from
    the tier-1 run (``addopts -m 'not slow'``) and run in the dedicated
    slow CI job (``-m slow``) instead."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture
def report():
    """Fixture handing benches the (emit, table) pair."""
    return emit, table


def pytest_terminal_summary(terminalreporter):
    if not _LINES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "================ reproduced paper tables/figures ================"
    )
    for line in _LINES:
        terminalreporter.write_line(line)
