"""E10 — Approximate aggregates: synopsis error vs space (slides 20, 38, 53).

The tutorial's approximation toolbox, exercised on a Zipf-skewed stream:

* GK quantiles (slide 53: "quantile computation is part of Gigascope"),
* FM distinct counting (slide 38's count(distinct A)),
* Count-Min heavy hitters (slide 38's having count(*) > φ|S|),
* AMS F2 / self-join size,
* DGIM sliding-window counting (windows meet synopses),
* reservoir-sample selectivity estimation (feeding slide 39's optimizer).

Expected reproduction (shape): every synopsis answers within its error
guarantee using memory orders of magnitude below exact state, and error
shrinks as space grows.
"""

import collections

import pytest

from repro.synopses import (
    AMSSketch,
    CountMinSketch,
    ExponentialHistogram,
    FMSketch,
    GKQuantiles,
    ReservoirSample,
)
from repro.workloads import ZipfGenerator

N = 20000


def make_stream(seed=13):
    gen = ZipfGenerator(2000, 1.1, seed=seed)
    return gen.sample_many(N)


def test_e10_error_vs_space(benchmark, report):
    emit, table = report
    stream = make_stream()
    truth_counts = collections.Counter(stream)
    true_distinct = len(truth_counts)
    true_f2 = sum(c * c for c in truth_counts.values())
    exact_sorted = sorted(stream)

    def run():
        rows = []
        # GK quantiles: epsilon sweep.
        for eps in (0.05, 0.01, 0.005):
            gk = GKQuantiles(eps)
            gk.extend(stream)
            est = gk.query(0.5)
            true = exact_sorted[N // 2]
            rank_err = abs(
                min(
                    abs(i - N / 2)
                    for i, v in enumerate(exact_sorted)
                    if v == est
                )
            ) / N
            rows.append([f"GK(eps={eps}) median", gk.memory(), N, rank_err])
        # FM distinct: map-count sweep.
        for maps in (16, 64, 256):
            fm = FMSketch(num_maps=maps)
            fm.extend(stream)
            err = abs(fm.estimate() - true_distinct) / true_distinct
            rows.append([f"FM({maps}) distinct", fm.memory(), true_distinct, err])
        # AMS F2: width sweep.
        for width in (16, 64, 128):
            ams = AMSSketch(width=width, depth=5)
            for v in stream[:4000]:
                ams.add(v)
            sub_counts = collections.Counter(stream[:4000])
            sub_f2 = sum(c * c for c in sub_counts.values())
            err = abs(ams.estimate_f2() - sub_f2) / sub_f2
            rows.append([f"AMS({width}x5) F2", ams.memory(), sub_f2, err])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["synopsis", "memory (cells)", "exact scale", "relative error"],
        rows,
        title="E10 synopsis error vs space on a Zipf(1.1) stream",
    )
    by_family: dict[str, list[float]] = {}
    for name, _mem, _scale, err in rows:
        by_family.setdefault(name.split("(")[0], []).append(err)
    # Shape: more space, less error, per family (allow small noise).
    for family, errs in by_family.items():
        assert errs[-1] <= errs[0] + 0.05, f"{family} error did not shrink"
        assert errs[-1] < 0.25, f"{family} final error too large"


def test_e10_heavy_hitters(benchmark, report):
    emit, table = report
    stream = make_stream(seed=15)
    truth = collections.Counter(stream)
    phi = 0.02

    def run():
        cm = CountMinSketch.from_error(epsilon=0.001, delta=0.01)
        cm.extend(stream)
        return cm, cm.heavy_hitters(truth.keys(), phi)

    cm, hh = benchmark.pedantic(run, rounds=1, iterations=1)
    true_hh = {k for k, c in truth.items() if c > phi * N}
    found = {k for k, _c in hh}
    table(
        ["metric", "value"],
        [
            ["phi", phi],
            ["true heavy hitters", len(true_hh)],
            ["reported", len(found)],
            ["missed", len(true_hh - found)],
            ["sketch cells", cm.memory()],
            ["exact counter entries", len(truth)],
        ],
        title="E10b Count-Min heavy hitters (slide 38's HAVING example)",
    )
    assert true_hh <= found, "CM overestimates, so no heavy hitter is missed"
    assert len(found - true_hh) <= 3, "few false positives at this width"


def test_e10_sliding_window_count(benchmark, report):
    emit, table = report
    window = 2000
    bits = [1 if (v % 3 == 0) else 0 for v in make_stream(seed=17)]

    def run():
        rows = []
        for k in (1, 2, 4, 8):
            eh = ExponentialHistogram(window=window, k=k)
            for b in bits:
                eh.add(b)
            truth = sum(bits[-window:])
            err = abs(eh.estimate() - truth) / truth
            rows.append([k, eh.memory(), err])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["k (precision)", "buckets kept", "relative error"],
        rows,
        title=f"E10c DGIM count over the last {window} positions",
    )
    # Shape: every k meets its worst-case bound of 1/(2k); single-run
    # error is not monotone in k (the half-oldest-bucket correction is
    # a point estimate), but the guarantee tightens.
    for k, _buckets, err in rows:
        assert err <= 1.0 / (2 * k) + 1e-9, f"k={k} violated its bound"
    assert all(r[1] < 120 for r in rows), "buckets stay logarithmic"


def test_e10_sample_based_selectivity(benchmark, report):
    emit, table = report
    stream = make_stream(seed=19)

    def run():
        rows = []
        for cap in (50, 200, 1000):
            rs = ReservoirSample(cap, seed=21)
            rs.extend(stream)
            est = rs.estimate_selectivity(lambda v: v < 100)
            true = sum(1 for v in stream if v < 100) / len(stream)
            rows.append([cap, est, true, abs(est - true)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        ["sample size", "estimated selectivity", "true", "abs error"],
        rows,
        title="E10d reservoir-sample selectivity (feeds the optimizer)",
    )
    assert rows[-1][3] < 0.05
