"""M9 — Feedback punctuations: targeted shedding quality vs random.

The backward control channel exists to make load shedding *semantic*:
instead of a uniform coin flip at ingress, the guard's per-key synopsis
turns the same drop budget into ``DOWNSAMPLE`` advice on the measured
hot keys.  Under Zipf skew that concentrates the loss where each group
has counts to spare, so grouped-aggregate answers degrade much less.

The experiment, at equal drop budgets over a seeded
:class:`~repro.workloads.PhaseShiftZipf` overload (hot keys rotate
mid-run, so static key lists would go stale):

1. run the feedback-shedding guard, record its drop budget ``D`` and
   the mean per-group relative error of a grouped count;
2. re-run the identical stream through a uniform
   :class:`~repro.shedding.RandomShedder` tuned to the same budget;
3. gate: random's error must be **>= 1.5x** feedback's error — the
   quality-domination bar from the M9 chaos certification.

Run as a script to record ``BENCH_m9.json`` (add ``--smoke`` for the
tiny CI variant that just enforces the 1.5x gate end-to-end).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import best_of, write_baseline  # noqa: E402

from repro.core import Engine, ListSource, Punctuation, Record
from repro.core.graph import linear_plan
from repro.feedback import FeedbackShedding
from repro.operators import Select
from repro.resilience import OverloadGuard
from repro.shedding import LoadController, RandomShedder
from repro.workloads import PhaseShiftZipf

N = 30_000
KEYS = 32
SKEW = 1.2
PUNCT_EVERY = 250
GATE = 1.5  # random error must be >= GATE x feedback error


def elements_for(n: int, keys: int = KEYS, punct_every: int = PUNCT_EVERY):
    gen = PhaseShiftZipf(keys, s=SKEW, phase_length=n // 3, seed=29)
    out = []
    for i in range(n):
        out.append(
            Record(
                {"ts": float(i), "k": gen.sample(), "pad": "x" * 40},
                ts=float(i),
                seq=i,
            )
        )
        if i % punct_every == punct_every - 1:
            out.append(Punctuation.time_bound("ts", float(i), ts=float(i)))
    return out


def _run(guard, elements):
    plan = linear_plan("s", [Select(lambda r: True, name="sel")], "out")
    engine = Engine(plan, guard=guard, batch_size=None)
    return engine.run({"s": ListSource("s", elements)})


def _feedback_guard(trigger_after: int):
    """Always-pressured ramp so the synopsis, not the watermarks, is
    what the measurement exercises."""
    return OverloadGuard(
        controller=LoadController(
            low_watermark=-2.0, high_watermark=-1.0, max_drop_rate=0.5
        ),
        feedback=FeedbackShedding(
            key_attr="k",
            keep_rate=0.3,
            hot_keys=3,
            trigger_after=trigger_after,
            resume_after=10_000_000,
        ),
    )


def _counts(records):
    counts: dict = {}
    for r in records:
        if isinstance(r, Record):
            counts[r.values["k"]] = counts.get(r.values["k"], 0) + 1
    return counts


def _mean_relative_error(truth, observed) -> float:
    errs = [
        abs(observed.get(k, 0) - n) / n for k, n in truth.items() if n > 0
    ]
    return sum(errs) / len(errs)


def measure(n: int = N, repeats: int = 3) -> dict:
    """Feedback vs random at equal drop budgets over one seeded stream."""
    elements = elements_for(n)
    offered = [e for e in elements if isinstance(e, Record)]
    truth = _counts(offered)

    fb_s, fb_result = best_of(
        lambda: _run(_feedback_guard(trigger_after=n // 20), elements),
        repeats,
    )
    budget = fb_result.dropped
    if budget <= 0:
        raise AssertionError("feedback guard shed nothing; no comparison")
    fb_err = _mean_relative_error(truth, _counts(fb_result.outputs["out"]))

    rnd_s, rnd_result = best_of(
        lambda: _run(
            OverloadGuard(
                controller=RandomShedder(budget / len(offered), seed=7)
            ),
            elements,
        ),
        repeats,
    )
    rnd_budget = rnd_result.dropped
    if abs(rnd_budget - budget) / budget > 0.25:
        raise AssertionError(
            f"budgets diverged: feedback dropped {budget}, "
            f"random dropped {rnd_budget} — comparison is unfair"
        )
    rnd_err = _mean_relative_error(truth, _counts(rnd_result.outputs["out"]))

    ratio = rnd_err / fb_err if fb_err > 0 else float("inf")
    counters = fb_result.metrics.counters
    return {
        "n_tuples": n,
        "keys": KEYS,
        "zipf_s": SKEW,
        "drop_budget": budget,
        "random_drop_budget": rnd_budget,
        "feedback_mean_rel_error": round(fb_err, 5),
        "random_mean_rel_error": round(rnd_err, 5),
        "error_ratio_random_over_feedback": round(min(ratio, 1e9), 3),
        "feedback_run_s": round(fb_s, 4),
        "random_run_s": round(rnd_s, 4),
        "feedback_drops_by_reason": {
            "feedback": counters.get("overload.drops.feedback", 0),
            "random": counters.get("overload.drops.random", 0),
            "queue": counters.get("overload.drops.queue", 0),
        },
        "gate": GATE,
        "gate_passed": ratio >= GATE,
    }


def _enforce_gate(result: dict) -> None:
    if not result["gate_passed"]:
        raise AssertionError(
            f"targeted shedding quality gate failed: random/feedback "
            f"error ratio {result['error_ratio_random_over_feedback']} "
            f"< {GATE} (feedback {result['feedback_mean_rel_error']}, "
            f"random {result['random_mean_rel_error']}, "
            f"budget {result['drop_budget']})"
        )


def record_baseline(path: str | Path | None = None, n: int = N) -> dict:
    baseline = {"m9_feedback_vs_random": measure(n)}
    _enforce_gate(baseline["m9_feedback_vs_random"])
    return write_baseline("BENCH_m9.json", baseline, path)


def smoke(n: int = 8000) -> dict:
    """Tiny CI variant: the 1.5x quality gate, end to end, seconds."""
    result = measure(n, repeats=1)
    _enforce_gate(result)
    return result


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print(
            f"smoke ok: targeted shedding beat random by "
            f">= {GATE}x on grouped relative error at equal drop budgets"
        )
    else:
        recorded = record_baseline()
        print(json.dumps(recorded, indent=2))
