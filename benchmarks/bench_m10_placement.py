"""M10 — Cluster placement: cost-model vs round-robin makespan.

The placement planner prices every candidate cut of the chain against
the cluster's CPU speeds and link budgets (the VN02 rate model), so on
a bandwidth-constrained topology it keeps the selective prefix on the
ingress node and ships the *thinned* stream to the fast workers.  A
naive round-robin dealer ignores the network entirely and pushes the
raw stream over the thin edge link.

The experiment, on a 3-node bandwidth-skewed cluster (slow ingress
node behind thin links, 4x-fast workers):

1. profile the chain once on a single engine to get measured
   per-operator rates;
2. plan twice from those stats — cost model vs round-robin — and
   execute both placements on the simulated cluster;
3. gate: round-robin's *executed* virtual makespan (max over per-node
   CPU seconds and per-link transfer seconds, from the cluster
   engine's network accounting) must be **>= 1.5x** the cost model's.

Virtual time makes the measurement exact and machine-independent: the
same placements produce the same makespans on any host, so the gate
cannot flake.

Run as a script to record ``BENCH_m10.json`` (add ``--smoke`` for the
small CI variant that just enforces the 1.5x gate end-to-end).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import write_baseline  # noqa: E402

from repro.cluster import (
    bandwidth_skewed,
    plan_placement,
    round_robin_placement,
    run_cluster,
)
from repro.core import ListSource, Punctuation, run_plan
from repro.core.graph import linear_plan
from repro.core.stream import records_from_dicts
from repro.operators import AggSpec, Select, WindowedAggregate
from repro.operators.project import Project
from repro.windows import TumblingWindow

N = 4_000
PUNCT_EVERY = 100
SELECTIVITY = 0.05  # 1-in-20 records survive the filter
GATE = 1.5  # round-robin makespan must be >= GATE x cost model's


def build_chain():
    """Monitoring-shaped chain: cheap projection, selective filter,
    grouped tumbling aggregate."""
    proj = Project(
        {"k": "k", "ts": "ts", "v": "v", "flag": "flag"},
        name="proj",
        cost_per_tuple=0.002,
    )
    sel = Select(
        lambda r: r["flag"] == 0,
        name="sel",
        cost_per_tuple=0.002,
        selectivity=SELECTIVITY,
    )
    agg = WindowedAggregate(
        TumblingWindow(10.0),
        ["k"],
        [AggSpec("n", "count"), AggSpec("total", "sum", "v")],
        name="agg",
        cost_per_tuple=0.01,
    )
    # proj-before-sel: the round-robin dealer then pairs proj with the
    # ingress node and ships the *unfiltered* stream over the thin
    # link — the shape the cost model exists to avoid.
    return linear_plan("in", [proj, sel, agg], "out")


def build_sources(n: int):
    period = int(1 / SELECTIVITY)
    rows = [
        {
            "k": i % 8,
            "ts": i * 0.05,
            "v": float(i % 97),
            "flag": i % period,
        }
        for i in range(n)
    ]
    elements = []
    for i, rec in enumerate(records_from_dicts(rows, ts_attr="ts")):
        elements.append(rec)
        if (i + 1) % PUNCT_EVERY == 0:
            elements.append(Punctuation.time_bound("ts", rec.ts, ts=rec.ts))
    return {"in": ListSource("in", elements)}


def _json_safe(value):
    """Strict-JSON view of a describe() tree: inf -> "inf"."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, float) and value == float("inf"):
        return "inf"
    return value


def measure(n: int = N) -> dict:
    cluster = bandwidth_skewed(3, worker_speed=4.0, thin_bandwidth=50.0)

    # 1. profile: one single-engine run yields measured selectivities.
    profiled = run_plan(build_chain(), build_sources(n))
    stats = profiled.metrics.operators

    # 2. plan + execute both placements on the simulated cluster.
    cost = plan_placement(build_chain(), cluster, stats=stats)
    naive = round_robin_placement(build_chain(), cluster, stats=stats)
    cost_run = run_cluster(
        build_chain(), build_sources(n), cluster, placement=cost
    )
    naive_run = run_cluster(
        build_chain(), build_sources(n), cluster, placement=naive
    )
    if naive_run.outputs["out"] != cost_run.outputs["out"]:
        raise AssertionError(
            "placements disagreed on outputs — exactness bug, "
            "makespans are not comparable"
        )

    ratio = (
        naive_run.makespan / cost_run.makespan
        if cost_run.makespan > 0
        else float("inf")
    )

    def _net(run):
        return {
            link: round(usage["bytes"], 3)
            for link, usage in sorted(run.network.items())
        }

    return {
        "n_tuples": n,
        "topology": _json_safe(cluster.describe()),
        "cost_assignment": cost.assignment(),
        "round_robin_assignment": naive.assignment(),
        "cost_modeled_makespan": round(cost.makespan, 6),
        "round_robin_modeled_makespan": round(naive.makespan, 6),
        "cost_executed_makespan": round(cost_run.makespan, 6),
        "round_robin_executed_makespan": round(naive_run.makespan, 6),
        "executed_ratio": round(min(ratio, 1e9), 3),
        "cost_link_bytes": _net(cost_run),
        "round_robin_link_bytes": _net(naive_run),
        "gate": GATE,
        "gate_passed": ratio >= GATE,
    }


def _enforce_gate(result: dict) -> None:
    if not result["gate_passed"]:
        raise AssertionError(
            f"placement gate failed: round-robin/cost executed makespan "
            f"ratio {result['executed_ratio']} < {GATE} "
            f"(cost {result['cost_executed_makespan']}, round-robin "
            f"{result['round_robin_executed_makespan']}; assignments "
            f"{result['cost_assignment']} vs "
            f"{result['round_robin_assignment']})"
        )


def record_baseline(path: str | Path | None = None, n: int = N) -> dict:
    baseline = {"m10_placement_vs_round_robin": measure(n)}
    _enforce_gate(baseline["m10_placement_vs_round_robin"])
    return write_baseline("BENCH_m10.json", baseline, path)


def smoke(n: int = 1_000) -> dict:
    """Small CI variant: the 1.5x makespan gate, end to end, seconds."""
    result = measure(n)
    _enforce_gate(result)
    return result


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print(
            f"smoke ok: cost-model placement beat round-robin by "
            f">= {GATE}x on executed virtual makespan"
        )
    else:
        recorded = record_baseline()
        print(json.dumps(recorded, indent=2))
