"""E8 — Web-client RTT monitoring via stream correlation (slides 11, 13).

The slide-13 GSQL query joins the SYN and SYN-ACK streams on the TCP
4-tuple and reports round-trip-time statistics.  The trace plants a
known RTT distribution (Gaussian, mean 50ms); the reproduced query must
recover it.

Expected reproduction: join matches ≈ all handshakes; the measured
median sits at the planted mean; quantiles follow the planted spread;
and the GK summary answers the same quantiles in sublinear space
(slide 53's "quantile computation is part of Gigascope").
"""

import statistics

import pytest

from repro.core import ListSource, run_plan
from repro.cql import compile_query
from repro.gigascope import TCP, gigascope_catalog, to_stream_schema
from repro.synopses import GKQuantiles
from repro.workloads import NetflowConfig, PacketGenerator

MEAN_RTT = 0.05
JITTER = 0.02


def rtt_query_plan():
    catalog = gigascope_catalog()
    schema = to_stream_schema(TCP)
    catalog.register_stream("tcp_syn", schema)
    catalog.register_stream("tcp_syn_ack", schema)
    return compile_query(
        "select S.ts, (A.ts - S.ts) as rtt "
        "from tcp_syn [range 2] S, tcp_syn_ack [range 2] A "
        "where S.src_ip = A.dst_ip and S.dst_ip = A.src_ip "
        "and S.src_port = A.dst_port and S.dst_port = A.src_port",
        catalog,
    )


def test_e8_rtt_distribution(benchmark, report):
    emit, table = report
    cfg = NetflowConfig(mean_rtt=MEAN_RTT, rtt_jitter=JITTER, seed=33)
    packets = PacketGenerator(cfg).generate(8000)
    syns = [p for p in packets if p["flags"] == "SYN"]
    acks = [p for p in packets if p["flags"] == "SYN-ACK"]
    plan = rtt_query_plan()

    def run():
        res = run_plan(
            plan,
            {
                "tcp_syn": ListSource("tcp_syn", syns, ts_attr="ts"),
                "tcp_syn_ack": ListSource("tcp_syn_ack", acks, ts_attr="ts"),
            },
        )
        return [r["rtt"] for r in res.records()]

    rtts = benchmark.pedantic(run, rounds=1, iterations=1)
    gk = GKQuantiles(0.01)
    gk.extend(rtts)
    exact = sorted(rtts)

    def true_q(q):
        return exact[min(int(q * len(exact)), len(exact) - 1)]

    rows = [
        [f"p{int(q * 100)}", true_q(q) * 1000, gk.query(q) * 1000]
        for q in (0.1, 0.5, 0.9, 0.99)
    ]
    table(
        ["quantile", "exact RTT (ms)", "GK RTT (ms)"],
        rows,
        title=f"E8 RTT recovered from {len(rtts)} joined handshakes",
    )
    emit(
        f"planted mean {MEAN_RTT * 1000:.0f} ms; "
        f"measured median {statistics.median(rtts) * 1000:.1f} ms; "
        f"GK summary size {gk.memory()} vs {len(rtts)} samples"
    )
    assert len(rtts) >= 0.9 * len(syns), "join must match most handshakes"
    assert statistics.median(rtts) == pytest.approx(MEAN_RTT, abs=0.01)
    for q in (0.1, 0.5, 0.9):
        assert gk.query(q) == pytest.approx(true_q(q), abs=0.01)
