"""E5 — Bounded vs unbounded memory aggregation (slides 35-36, [ABB+02]).

Slide 36's example pair over the Traffic stream:

* NOT bounded:  ``select distinct length from Traffic [window T]`` when
  the grouped attribute is drawn from an unbounded domain (here we use
  ``src_ip`` to make the contrast stark);
* bounded:      ``select length, count(*) ... where length > 512 and
  length < 1024 group by length`` — grouping attribute from a finite
  domain.

The bench measures actual operator state growth against stream length
and checks the static ABB+02 analysis predicts the observed behaviour.

Expected reproduction (shape): unbounded-group state grows linearly
with distinct values; bounded-group state plateaus at the domain size.
"""

import pytest

from repro.aggregates import AggSpec, analyze_group_by
from repro.core import Field, Record, Schema
from repro.operators import Aggregate
from repro.workloads import ZipfGenerator


def schema():
    return Schema(
        [
            Field("ts", float),
            Field("src_ip", int),  # unbounded domain
            Field("length", int, bounded=True, domain=(40, 1500)),
        ],
        ordering="ts",
    )


def run_growth(group_attr, n_points, step, seed=5):
    """State size of a grouped count after each `step` tuples."""
    agg = Aggregate([group_attr], [AggSpec("n", "count")])
    lengths = ZipfGenerator(1461, 0.4, seed=seed)
    series = []
    i = 0
    for point in range(n_points):
        for _ in range(step):
            rec = Record(
                {
                    "ts": float(i),
                    "src_ip": i,  # fresh source every tuple: worst case
                    "length": 40 + lengths.sample(),
                },
                ts=float(i),
            )
            agg.process(rec)
            i += 1
        series.append((i, agg.memory()))
    return series


def test_e5_state_growth(benchmark, report):
    emit, table = report

    def run():
        return {
            "src_ip": run_growth("src_ip", 6, 2000),
            "length": run_growth("length", 6, 2000),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, unb, bnd]
        for (n, unb), (_n2, bnd) in zip(out["src_ip"], out["length"])
    ]
    table(
        ["tuples seen", "groups (by src_ip)", "groups (by length)"],
        rows,
        title="E5 aggregation state growth: unbounded vs bounded grouping",
    )
    # Shape: src_ip grows linearly; length saturates under its domain.
    unbounded = [m for _n, m in out["src_ip"]]
    bounded = [m for _n, m in out["length"]]
    assert unbounded[-1] == 12000  # one group per tuple
    assert bounded[-1] <= 1461
    assert bounded[-1] - bounded[-3] < 0.05 * bounded[-1], "should plateau"


def test_e5_static_analysis_predicts(benchmark, report):
    emit, table = report
    s = schema()

    def run():
        return {
            "by_src_ip": analyze_group_by(
                s, ["src_ip"], [AggSpec("n", "count")]
            ),
            "by_length": analyze_group_by(
                s, ["length"], [AggSpec("n", "count")]
            ),
            "median_src_ip": analyze_group_by(
                s, ["length"], [AggSpec("m", "median", "src_ip")]
            ),
        }

    verdicts = benchmark.pedantic(run, rounds=5, iterations=1)
    table(
        ["query", "ABB+02 verdict", "group bound"],
        [
            ["group by src_ip", verdicts["by_src_ip"].bounded,
             verdicts["by_src_ip"].group_bound],
            ["group by length", verdicts["by_length"].bounded,
             verdicts["by_length"].group_bound],
            ["median(src_ip) by length", verdicts["median_src_ip"].bounded,
             verdicts["median_src_ip"].group_bound],
        ],
        title="E5b static bounded-memory verdicts (slide 35)",
    )
    assert not verdicts["by_src_ip"].bounded
    assert verdicts["by_length"].bounded
    assert verdicts["by_length"].group_bound == 1461
    assert not verdicts["median_src_ip"].bounded
