"""M6 — Adaptive re-optimization payoff (wall-clock).

The M6 acceptance gate: on a workload whose statistics drift, an
:func:`~repro.adaptive.run_adaptive` run that *starts from the static
worst order* must beat the static worst-order run by >= 1.3x
throughput, record at least one structural migration, and emit exactly
the same outputs.

The workload is the phase-shift Zipf stream certified by
``tests/adaptive/test_differential.py``: an expensive low-drop filter
sits in front of a cheap filter whose selectivity collapses when the
hot key set rotates after phase 0.  A static plan keeps paying the
expensive filter on every record; the controller notices the measured
rates at a punctuation boundary and reorders cheap-first.

Timings interleave the two configurations round-robin and keep
best-of, so machine drift hits both equally.  ``--smoke`` runs the
gate on a reduced input (CI); ``--check-json`` strict-parses every
committed ``BENCH_*.json``; no flag records ``BENCH_m6.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import interleaved_best, write_baseline  # noqa: E402

from repro.adaptive import AdaptiveConfig, run_adaptive
from repro.core import ListSource, Punctuation, Record, run_plan
from repro.core.graph import linear_plan
from repro.operators import Select
from repro.workloads import PhaseShiftZipf

N = 20000
BATCH = 64
PUNCT_EVERY = 250
PHASE_LENGTH = 500
WORK = 400  # busy-loop iterations inside the expensive filter
GATE_SPEEDUP = 1.3
REPO_ROOT = Path(__file__).resolve().parent.parent


def _elements(n: int) -> list:
    gen = PhaseShiftZipf(100, s=1.2, seed=7, phase_length=PHASE_LENGTH)
    elements = []
    for i in range(n):
        elements.append(
            Record({"k": gen.sample(), "v": i}, ts=float(i), seq=i)
        )
        if (i + 1) % PUNCT_EVERY == 0:
            elements.append(
                Punctuation.time_bound("ts", float(i), ts=float(i))
            )
    return elements


def _worst_order_chain() -> list:
    """Expensive low-drop filter first — wrong for every phase, and
    catastrophically wrong once the hot set rotates away."""
    gen = PhaseShiftZipf(100, s=1.2, seed=7, phase_length=PHASE_LENGTH)
    hot = set(gen.hot_keys(0, top=5))

    def expensive(r):
        acc = 0
        for _ in range(WORK):
            acc += 1
        return r["v"] % 10 != 0

    return [
        Select(expensive, name="exp", cost_per_tuple=4.0),
        Select(lambda r: r["k"] in hot, name="cheap", cost_per_tuple=1.0),
    ]


def _config() -> AdaptiveConfig:
    return AdaptiveConfig(min_window_records=64, min_gain=1.05)


def _run_static(elements: list):
    return run_plan(
        linear_plan("in", _worst_order_chain(), "out"),
        {"in": ListSource("in", elements)},
        batch_size=BATCH,
    )


def _run_adaptive(elements: list):
    return run_adaptive(
        linear_plan("in", _worst_order_chain(), "out"),
        {"in": ListSource("in", elements)},
        config=_config(),
        batch_size=BATCH,
    )


def compare(n: int = N, repeats: int = 3) -> dict:
    """Best-of wall time for static worst-order vs adaptive, plus the
    migration log and an output-identity check on the final pair."""
    elements = _elements(n)
    state: dict = {}

    def run_static():
        state["static"] = _run_static(elements)

    def run_adaptive_once():
        state["adaptive"], state["migrations"] = _run_adaptive(elements)

    best = interleaved_best(
        {"static_worst": run_static, "adaptive": run_adaptive_once},
        repeats=repeats,
    )
    static = state["static"]
    adaptive = state["adaptive"]
    migrations = state["migrations"]
    assert static is not None and adaptive is not None
    if adaptive.outputs != static.outputs:
        raise SystemExit(
            "adaptive run diverged from the static outputs"
        )
    structural = [m for m in migrations if m.revision.structural]
    return {
        "n_tuples": n,
        "batch_size": BATCH,
        "punct_every": PUNCT_EVERY,
        "phase_length": PHASE_LENGTH,
        "e2e_seconds_best": {
            k: round(v, 6) for k, v in best.items()
        },
        "throughput_tuples_per_sec": {
            k: round(n / v, 1) for k, v in best.items()
        },
        "speedup_adaptive_over_static_worst": round(
            best["static_worst"] / best["adaptive"], 4
        ),
        "migrations": [
            {
                "boundary": m.boundary,
                "revision": repr(m.revision),
                "reason": m.reason,
            }
            for m in migrations
        ],
        "structural_migrations": len(structural),
    }


def _gated_compare(
    n: int, repeats: int, attempts: int = 3
) -> dict:
    """Re-measure up to ``attempts`` times before failing the speedup
    gate (best-of timing is stable, but CI machines are shared)."""
    payload: dict = {}
    for _ in range(attempts):
        payload = compare(n, repeats)
        if (
            payload["speedup_adaptive_over_static_worst"]
            >= GATE_SPEEDUP
        ):
            break
    return payload


def smoke(n: int = 8000, repeats: int = 3) -> dict:
    """CI gate: >= 1.3x over static worst order, >= 1 migration."""
    payload = _gated_compare(n, repeats)
    if not payload["structural_migrations"]:
        raise SystemExit(
            "adaptive run recorded no structural migration on the "
            "phase-shift workload"
        )
    speedup = payload["speedup_adaptive_over_static_worst"]
    if speedup < GATE_SPEEDUP:
        raise SystemExit(
            f"adaptive speedup over static worst order is "
            f"{speedup:.2f}x (gate: >= {GATE_SPEEDUP}x)"
        )
    return payload


def check_committed_json() -> list[str]:
    """Strict-parse every committed BENCH_*.json baseline."""
    paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        raise SystemExit("no BENCH_*.json baselines found")

    def refuse(constant: str):
        raise SystemExit(
            f"{path}: contains non-strict JSON constant {constant!r}"
        )

    for path in paths:
        json.loads(path.read_text(), parse_constant=refuse)
    return [p.name for p in paths]


# -- pytest entry point -----------------------------------------------------


def test_m6_adaptive_payoff(report):
    emit, table = report
    payload = _gated_compare(N, repeats=3)
    thr = payload["throughput_tuples_per_sec"]
    table(
        ["configuration", "e2e best (s)", "tuples/s"],
        [
            [
                name,
                payload["e2e_seconds_best"][name],
                thr[name],
            ]
            for name in ("static_worst", "adaptive")
        ],
        title="M6: adaptive vs static worst order (phase-shift Zipf)",
    )
    emit(
        f"(speedup {payload['speedup_adaptive_over_static_worst']}x, "
        f"{payload['structural_migrations']} structural migration(s))"
    )
    assert payload["structural_migrations"] >= 1
    assert (
        payload["speedup_adaptive_over_static_worst"] >= GATE_SPEEDUP
    )


# -- baseline recording -----------------------------------------------------


def record_baseline(path: str | Path | None = None) -> dict:
    payload = compare(N, repeats=3)
    baseline = {f"m6_{k}": v for k, v in payload.items()}
    return write_baseline("BENCH_m6.json", baseline, path)


if __name__ == "__main__":
    if "--check-json" in sys.argv:
        checked = check_committed_json()
        print(f"strict-JSON ok: {', '.join(checked)}")
    elif "--smoke" in sys.argv:
        print(json.dumps(smoke(), indent=2))
        print(
            f"smoke ok: >= {GATE_SPEEDUP}x over static worst order "
            f"with a recorded migration"
        )
    else:
        print(json.dumps(record_baseline(), indent=2))
