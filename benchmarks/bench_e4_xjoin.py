"""E4 — Symmetric hash join vs XJoin under memory pressure (slide 31).

Slide 31: XJoin "extends symmetric hash joins: overflowing inputs
spilled to disk for later evaluation".  The experiment joins two finite
streams under a sweep of memory budgets and compares:

* **SHJ (unbounded)** — the reference answer, unlimited memory;
* **evicting SHJ** — same budget, evicts oldest tuples: loses results;
* **XJoin** — same budget, spills to (simulated) disk: complete results
  at the price of page I/O and deferred (clean-up stage) output.

Expected reproduction (shape): as the budget shrinks, the evicting
join's recall collapses while XJoin stays at 100%, with page I/O rising.
"""

import pytest

from repro.core import Record
from repro.operators import EvictingHashJoin, SymmetricHashJoin, XJoin
from repro.workloads import ZipfGenerator


def make_elements(n=800, keys=40, seed=3):
    gen = ZipfGenerator(keys, 0.9, seed=seed)
    return [
        (i % 2, Record({"k": gen.sample(), "i": i}, ts=float(i), seq=i))
        for i in range(n)
    ]


def run_join(join, elements):
    out = []
    for port, el in elements:
        out += join.process(el, port)
    out += join.flush()
    return [e for e in out if isinstance(e, Record)]


def test_e4_memory_budget_sweep(benchmark, report):
    emit, table = report
    elements = make_elements()
    reference = len(run_join(SymmetricHashJoin(["k"], ["k"]), elements))

    def run():
        rows = []
        for budget in (800, 400, 200, 100, 50, 25):
            evicting = EvictingHashJoin(["k"], ["k"], memory_budget=budget)
            lossy = len(run_join(evicting, elements))
            xj = XJoin(["k"], ["k"], memory_budget=budget, n_partitions=8)
            complete = len(run_join(xj, elements))
            rows.append(
                [
                    budget,
                    lossy / reference,
                    complete / reference,
                    xj.pages_written,
                    xj.pages_read,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    table(
        [
            "memory budget",
            "evicting recall",
            "xjoin recall",
            "pages written",
            "pages read",
        ],
        rows,
        title=f"E4 join completeness vs memory (reference = {reference} results)",
    )
    # Shape: XJoin is always complete; eviction decays monotonically-ish.
    assert all(r[2] == pytest.approx(1.0) for r in rows)
    assert rows[-1][1] < 0.6
    assert rows[0][1] == pytest.approx(1.0)
    # Spilling only happens once the budget binds.
    assert rows[0][3] == 0 and rows[-1][3] > 0


def test_e4_io_cost_grows_as_memory_shrinks(benchmark, report):
    emit, table = report
    elements = make_elements(n=600)

    def run():
        io = []
        for budget in (300, 150, 75, 40):
            xj = XJoin(["k"], ["k"], memory_budget=budget, n_partitions=8)
            run_join(xj, elements)
            io.append([budget, xj.pages_written + xj.pages_read])
        return io

    io = benchmark.pedantic(run, rounds=2, iterations=1)
    table(
        ["memory budget", "total page I/O"],
        io,
        title="E4b XJoin I/O vs memory (the price of completeness)",
    )
    totals = [t for _b, t in io]
    assert totals == sorted(totals), "less memory must not reduce I/O"
