"""Cluster execution with virtual-time network accounting.

A :class:`ClusterEngine` runs one plan over a simulated
:class:`~repro.cluster.spec.ClusterSpec` under a
:class:`~repro.cluster.place.Placement`.  Execution is a *pipeline of
engines*: the linear chain is cut into the placement's stages, each
stage is an ordinary single-node :class:`~repro.core.engine.Engine`
over its slice of the chain, and every element the stream produces is
cascaded stage to stage in order.  Because the composed operator
sequence is exactly the single engine's, outputs are element-identical
to single-node execution by construction — the placement decides only
where virtual time is spent, never what is computed.  The differential
suite (``tests/cluster``) certifies this across the full plan registry
and multiple topologies.

Push-down placements run the Gigascope split instead: the stateless
prefix plus a :class:`~repro.operators.partial_aggregate.GroupPartial`
execute upstream, the (much thinner) partial-state stream crosses the
network, and the egress node replays the shard-merge discipline of
:class:`~repro.parallel.sharded.ShardedEngine` with a single upstream
run — the same ``GroupMerger``/``BucketMerger`` machinery the sharded
differential suite certifies at one shard.

Accounting is *virtual time*, not wall clock, so runs are
deterministic and benchmark gates cannot flake:

* each node is charged its operators' modeled ``busy_time`` divided by
  the node's speed factor;
* each link is charged ``bytes / bandwidth`` plus ``latency`` once per
  epoch in which it carried anything (transfers batch per epoch);
* the run's **virtual makespan** is the maximum charge over all
  resources — the steady-state bottleneck of the pipeline.

Per-link observability lands in the run's metrics registry:
``cluster.link.<src>-><dst>.bytes`` / ``.records`` / ``.transfers`` /
``.latency`` / ``.time`` counters, a ``.epoch_bytes`` gauge sampled
every epoch, and ``cluster.node.<name>.cpu_time`` per node.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster.place import Placement, plan_placement
from repro.cluster.spec import ClusterSpec
from repro.core.engine import Engine, RunResult, resolve_sources
from repro.core.graph import Plan, linear_plan
from repro.core.metrics import MetricsRegistry
from repro.core.stream import Source
from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError
from repro.gigascope.decompose import linearize_plan
from repro.parallel.combine import (
    BucketMerger,
    GroupMerger,
    merge_metrics,
)
from repro.parallel.partition import RoundRobinPartition, split_epochs

__all__ = ["ClusterEngine", "ClusterResult", "run_cluster"]

Element = Record | Punctuation


@dataclass
class ClusterResult:
    """Outputs plus the virtual resource accounting of one run."""

    outputs: dict[str, list[Element]]
    metrics: MetricsRegistry
    placement: Placement
    #: per-link usage: "src->dst" -> {bytes, records, transfers,
    #: latency, time}
    network: dict[str, dict]
    #: per-node virtual CPU seconds (speed-scaled busy time)
    cpu: dict[str, float]
    #: bottleneck over all nodes and links
    makespan: float

    def records(self, output: str = "out") -> list[Record]:
        return [el for el in self.outputs[output] if isinstance(el, Record)]

    def values(self, output: str = "out") -> list[dict]:
        return [rec.values for rec in self.records(output)]


# ---------------------------------------------------------------------------
# virtual network accounting
# ---------------------------------------------------------------------------


class _NetAccounting:
    """Bytes/records/transfers per link, with per-epoch gauge samples."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.bytes: dict[tuple[str, str], float] = {}
        self.records: dict[tuple[str, str], int] = {}
        self.transfers: dict[tuple[str, str], int] = {}
        self._epoch_bytes: dict[tuple[str, str], float] = {}

    def ship(self, src: str, dst: str, elements: Sequence[Element]) -> None:
        """Charge ``elements`` crossing ``src -> dst`` (free on-node)."""
        if src == dst or not elements:
            return
        key = (src, dst)
        size = 0.0
        n_records = 0
        for el in elements:
            if isinstance(el, Record):
                size += el.size
                n_records += 1
        self.bytes[key] = self.bytes.get(key, 0.0) + size
        self.records[key] = self.records.get(key, 0) + n_records
        self._epoch_bytes[key] = self._epoch_bytes.get(key, 0.0) + size

    def end_epoch(self, registry: MetricsRegistry | None = None) -> None:
        """Close one transfer round: every link that carried anything
        this epoch pays its latency once and samples its gauge."""
        for key, size in self._epoch_bytes.items():
            self.transfers[key] = self.transfers.get(key, 0) + 1
            if registry is not None:
                registry.gauge(
                    f"cluster.link.{key[0]}->{key[1]}.epoch_bytes"
                ).set(size)
        self._epoch_bytes.clear()

    def finalize(self, registry: MetricsRegistry) -> dict[str, dict]:
        """Counters into ``registry``; return the per-link summary."""
        self.end_epoch(registry)
        network: dict[str, dict] = {}
        for key in sorted(self.bytes):
            src, dst = key
            link = self.cluster.link(src, dst)
            transfers = self.transfers.get(key, 0)
            latency = transfers * link.latency
            time = self.bytes[key] / link.bandwidth + latency
            label = f"cluster.link.{src}->{dst}"
            registry.incr(f"{label}.bytes", self.bytes[key])
            registry.incr(f"{label}.records", self.records[key])
            registry.incr(f"{label}.transfers", transfers)
            registry.incr(f"{label}.latency", latency)
            registry.incr(f"{label}.time", time)
            network[f"{src}->{dst}"] = {
                "bytes": self.bytes[key],
                "records": self.records[key],
                "transfers": transfers,
                "latency": latency,
                "time": time,
            }
        return network


# ---------------------------------------------------------------------------
# the staged pipeline
# ---------------------------------------------------------------------------


def _feed_elements(engine: Engine, input_name: str, elements) -> list:
    """Feed mixed records/punctuations, honouring the micro-batch size."""
    produced: list[Element] = []
    size = engine.batch_size
    if size is None:
        for el in elements:
            produced.extend(engine.feed(input_name, el))
        return produced
    buffer: list[Record] = []

    def drain() -> None:
        for i in range(0, len(buffer), size):
            produced.extend(
                engine.feed_batch(input_name, buffer[i : i + size])
            )
        buffer.clear()

    for el in elements:
        if isinstance(el, Record):
            buffer.append(el)
        else:
            drain()
            produced.extend(engine.feed(input_name, el))
    drain()
    return produced


class _StagePipeline:
    """The placement's stages as a cascade of started engines.

    ``chains[i]`` is the operator slice stage ``i`` hosts; elements fed
    at the front cascade through every stage (crossing links as they
    go) and the last stage's emissions come back to the caller.
    """

    def __init__(
        self,
        stages,
        chains: list[list],
        input_name: str,
        output_name: str,
        batch_size,
        acct: _NetAccounting,
        cluster: ClusterSpec,
    ) -> None:
        self.stages = stages
        self.chains = chains
        self.input_name = input_name
        self.output_name = output_name
        self.acct = acct
        self.cluster = cluster
        self.engines: list[Engine] = []
        self.emitted: list[int] = []
        for ops in chains:
            engine = Engine(
                linear_plan(input_name, ops, output_name),
                batch_size=batch_size,
            )
            engine.start()
            self.engines.append(engine)
            self.emitted.append(0)

    def _feed_stage(self, index: int, elements) -> list:
        produced = _feed_elements(
            self.engines[index], self.input_name, elements
        )
        self.emitted[index] += len(produced)
        return produced

    def feed(self, elements) -> list:
        """Cascade ``elements`` from the ingress through every stage."""
        data = list(elements)
        prev = self.cluster.ingress
        for index, stage in enumerate(self.stages):
            self.acct.ship(prev, stage.node, data)
            data = self._feed_stage(index, data)
            prev = stage.node
        return data

    def finish(self) -> tuple[list, list[RunResult]]:
        """Flush stages front to back, cascading each stage's tail.

        Mirrors the single engine's ``_flush_all`` (operators flush in
        topological order, each flush propagating downstream before
        the next operator flushes), so the tail order is identical.
        Returns the elements the *last* stage emits during the flush,
        plus every stage's :class:`RunResult` for metrics merging.
        """
        tail: list[Element] = []
        results: list[RunResult] = []
        for index, engine in enumerate(self.engines):
            result = engine.finish()
            results.append(result)
            carry = result.outputs[self.output_name][self.emitted[index]:]
            prev = self.stages[index].node
            for later in range(index + 1, len(self.engines)):
                self.acct.ship(prev, self.stages[later].node, carry)
                carry = self._feed_stage(later, carry)
                prev = self.stages[later].node
            # After cascading, ``carry`` is last-stage output (or the
            # last stage's own flush when index is the last stage).
            tail.extend(carry)
        return tail, results

    def last_node(self) -> str:
        return self.stages[-1].node

    def operator_stats(self) -> dict:
        """Live per-operator metrics (for adaptive re-placement)."""
        merged = merge_metrics(engine.metrics for engine in self.engines)
        return merged.operators

    def snapshot_states(self) -> dict:
        return {
            op.name: op.snapshot()
            for chain in self.chains
            for op in chain
        }

    def restore_states(self, states: Mapping) -> None:
        for chain in self.chains:
            for op in chain:
                if op.name in states:
                    op.restore(states[op.name])


# ---------------------------------------------------------------------------
# the cluster engine
# ---------------------------------------------------------------------------


class ClusterEngine:
    """Run a plan on a simulated cluster under a placement.

    Parameters
    ----------
    plan:
        The query plan.  Linear single-input chains run staged across
        nodes; anything else runs whole on the placement's one node.
    cluster:
        The simulated topology.
    placement:
        A :class:`~repro.cluster.place.Placement`; defaults to
        :func:`~repro.cluster.place.plan_placement`'s choice.  The
        stages must cover the plan's chain in order (checked).
    stats:
        Optional prior-run ``metrics.operators`` mapping, forwarded to
        the planner when ``placement`` is not given.
    """

    def __init__(
        self,
        plan: Plan,
        cluster: ClusterSpec,
        placement: Placement | None = None,
        batch_size: int | None = None,
        stats=None,
    ) -> None:
        if not isinstance(cluster, ClusterSpec):
            raise PlanError(f"cluster must be a ClusterSpec; got {cluster!r}")
        plan.validate()
        self.plan = plan
        self.cluster = cluster
        self.batch_size = batch_size
        if placement is None:
            placement = plan_placement(plan, cluster, stats=stats)
        self.placement = placement
        self._chain = linearize_plan(plan)
        self._validate_placement()

    # -- validation ------------------------------------------------------

    def _validate_placement(self) -> None:
        placement = self.placement
        for stage in placement.stages:
            self.cluster.node(stage.node)
        if placement.mode == "single":
            return
        if self._chain is None:
            raise PlanError(
                "chain placement over a non-linear plan; use mode='single'"
            )
        placed = [op for stage in placement.stages for op in stage.ops]
        if placement.mode == "chain":
            expected = [op.name for op in self._chain]
        elif placement.mode == "pushdown":
            if placement.split is None:
                raise PlanError("pushdown placement carries no split")
            expected = [op.name for op in placement.split.prefix]
            expected.append(placed[-1] if placed else "cluster_partial")
        else:
            raise PlanError(f"unknown placement mode {placement.mode!r}")
        if placed != expected:
            raise PlanError(
                f"placement stages {placed} do not cover the chain "
                f"{expected} in order"
            )

    def describe(self) -> dict:
        return {
            "cluster": self.cluster.describe(),
            "placement": self.placement.describe(),
        }

    # -- execution -------------------------------------------------------

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> ClusterResult:
        if self.placement.mode == "single":
            return self._run_single(sources)
        return self._run_staged(sources)

    def _run_single(self, sources) -> ClusterResult:
        node = self.placement.stages[0].node
        acct = _NetAccounting(self.cluster)
        by_name = resolve_sources(self.plan, sources)
        for name, source in by_name.items():
            acct.ship(self.cluster.ingress, node, list(source.events()))
        # Engine.run interleaves multi-source input by (ts, seq) — the
        # staged path never sees multi-input plans, but this one must.
        result = Engine(self.plan, batch_size=self.batch_size).run(sources)
        for elements in result.outputs.values():
            acct.ship(node, self.cluster.egress, elements)
        return self._assemble(
            result.outputs, [result], acct, self._stage_cpu(
                [result.metrics], {op: node for op in
                 self.placement.stages[0].ops}
            )
        )

    def _build_chains(self) -> list[list]:
        """Deep-copied operator slices, one per stage (state-free)."""
        placement = self.placement
        if placement.mode == "pushdown":
            split = placement.split
            template = [copy.deepcopy(op) for op in split.prefix]
            partial_name = placement.stages[-1].ops[-1]
            template.append(split.make_partial(name=partial_name))
        else:
            template = [copy.deepcopy(op) for op in self._chain]
        by_name = {op.name: op for op in template}
        return [
            [by_name[name] for name in stage.ops]
            for stage in placement.stages
        ]

    def _run_staged(self, sources) -> ClusterResult:
        placement = self.placement
        input_name = next(iter(self.plan.inputs))
        output_name = next(iter(self.plan.outputs))
        by_name = resolve_sources(self.plan, sources)
        epochs = split_epochs(
            by_name[input_name].events(), RoundRobinPartition(1)
        )
        acct = _NetAccounting(self.cluster)
        registry_holder = MetricsRegistry()
        pipeline = _StagePipeline(
            placement.stages,
            self._build_chains(),
            input_name,
            output_name,
            self.batch_size,
            acct,
            self.cluster,
        )
        partial_op = pipeline.chains[-1][-1]
        epoch_outputs: list[list[Element]] = []
        progress: list[float] = []
        out: list[Element] = []
        for epoch in epochs:
            payload = list(epoch.batches[0])
            if epoch.punct is not None:
                payload.append(epoch.punct)
            produced = pipeline.feed(payload)
            if placement.mode == "chain":
                acct.ship(
                    pipeline.last_node(), self.cluster.egress, produced
                )
                out.extend(produced)
            else:
                acct.ship(
                    pipeline.last_node(), self.cluster.egress, produced
                )
                epoch_outputs.append(produced)
                progress.append(partial_op.max_ts)
            acct.end_epoch(registry_holder)
        tail, results = pipeline.finish()
        acct.ship(pipeline.last_node(), self.cluster.egress, tail)
        if placement.mode == "chain":
            out.extend(tail)
        else:
            out = self._merge_partials(epochs, epoch_outputs, progress, tail)
        cpu = self._stage_cpu(
            [res.metrics for res in results], placement.assignment()
        )
        return self._assemble(
            {output_name: out}, results, acct, cpu,
            extra=registry_holder,
        )

    # -- push-down merge (single-run shard discipline) -------------------

    def _merge_partials(
        self, epochs, epoch_outputs, progress, tail
    ) -> list[Element]:
        """Unlike the sharded coordinator — which only sees *input*
        punctuations via the epoch stream — this single-run merge walks
        the shipped stream element-wise.  The partial operator closes
        matching groups and propagates every punctuation it receives
        (including ones injected inside the stage, e.g. by a
        ``Heartbeat`` in the prefix), so the shipped stream carries the
        exact punctuation schedule the single-engine terminal aggregate
        would have seen."""
        split = self.placement.split
        if split.window is not None:
            return self._merge_tumbling(
                epochs, epoch_outputs, progress, tail
            )
        merger = GroupMerger(
            split.group_names, split.aggregates, split.having
        )
        out: list[Element] = []
        for rows in (*epoch_outputs, tail):
            for el in rows:
                if isinstance(el, Record):
                    merger.absorb(el)
                else:
                    out.extend(merger.close_matching(el))
                    out.append(el)
        global_max = progress[-1] if progress else 0.0
        out.extend(merger.close_all(global_max))
        return out

    def _merge_tumbling(
        self, epochs, epoch_outputs, progress, tail
    ) -> list[Element]:
        split = self.placement.split
        merger = BucketMerger(
            split.window,
            split.group_names,
            split.aggregates,
            split.having,
            bucket_attr=split.bucket_attr,
        )
        # Tumbling partials keep (bucket, group) states until flush, so
        # every state row is in the tail; the per-epoch streams carry
        # only propagated punctuations.
        for rows in (*epoch_outputs, tail):
            for el in rows:
                if isinstance(el, Record):
                    merger.absorb(el)
        out: list[Element] = []
        current = float("-inf")
        for index, epoch in enumerate(epochs):
            produced = epoch_outputs[index]
            puncts = [
                el for el in produced if isinstance(el, Punctuation)
            ]
            for pos, el in enumerate(puncts):
                bound = el.bound_for(split.ts_attr)
                if bound is not None and bound > current:
                    current = bound
                if pos == len(puncts) - 1 and epoch.punct is not None:
                    # The epoch's trailing input punctuation: every
                    # record of the epoch precedes it, so the stream
                    # watermark here is the record progress too — the
                    # single engine closed record-crossed buckets
                    # before emitting this punctuation.
                    if progress[index] > current:
                        current = progress[index]
                out.extend(merger.close_upto(current))
                out.append(el)
        out.extend(merger.close_all())
        return out

    # -- accounting ------------------------------------------------------

    def _stage_cpu(self, registries, assignment) -> dict[str, float]:
        """Virtual CPU seconds per node: busy_time / speed factor."""
        cpu: dict[str, float] = {}
        merged = merge_metrics(registries)
        for op_name, node in assignment.items():
            busy = merged.for_operator(op_name).busy_time
            cpu[node] = cpu.get(node, 0.0) + busy / self.cluster.speed(node)
        return cpu

    def _assemble(
        self, outputs, results, acct, cpu, extra=None
    ) -> ClusterResult:
        metrics = merge_metrics(
            [res.metrics for res in results]
            + ([extra] if extra is not None else [])
        )
        network = acct.finalize(metrics)
        for node, seconds in sorted(cpu.items()):
            metrics.incr(f"cluster.node.{node}.cpu_time", seconds)
        link_times = [usage["time"] for usage in network.values()]
        makespan = max(list(cpu.values()) + link_times, default=0.0)
        return ClusterResult(
            outputs=outputs,
            metrics=metrics,
            placement=self.placement,
            network=network,
            cpu=cpu,
            makespan=makespan,
        )


def run_cluster(
    plan: Plan,
    sources: Sequence[Source] | Mapping[str, Source],
    cluster: ClusterSpec,
    placement: Placement | None = None,
    batch_size: int | None = None,
    stats=None,
) -> ClusterResult:
    """One-shot convenience: build a :class:`ClusterEngine` and run it."""
    engine = ClusterEngine(
        plan,
        cluster,
        placement=placement,
        batch_size=batch_size,
        stats=stats,
    )
    return engine.run(sources)
