"""Drift-driven re-placement: the ``RePlace`` revision in action.

The placement planner works from declared selectivities and costs; the
stream is under no obligation to honour them.  When measured rates
drift — a filter that was supposed to drop 90% of the traffic starts
passing it, so the thin link it fronted saturates —
:class:`AdaptiveClusterEngine` notices at an epoch boundary and moves
operators to better nodes mid-run.

The control loop mirrors ``repro.adaptive``'s discipline:

* **measure** — per-operator metrics accumulate in the live stage
  engines (observed selectivity, records, modeled busy time);
* **decide** — every ``replan_every`` epochs the planner re-runs under
  the measured stats, and the incumbent placement is re-scored under
  the *same* stats (comparing a stale model against a fresh one would
  manufacture migrations);
* **hysteresis** — migrate only when the candidate's modeled makespan
  beats the incumbent's by at least ``improvement``× (moves are not
  free; oscillating between two near-equal placements is worse than
  either);
* **migrate** — snapshot every operator's state by name, rebuild the
  stage pipeline on the new assignment, restore state into the
  same-named operators (the PR 3 machinery), and log a
  :class:`~repro.adaptive.revision.RePlace`
  :class:`~repro.adaptive.revision.Migration`.

Migrations happen at epoch (punctuation) boundaries only, and the
operator sequence never changes — so outputs stay element-identical to
the single engine no matter how often the placement moves
(``tests/cluster/test_replace.py`` certifies this under forced drift).

Adaptive runs use plain chain placements (``pushdown=False``): the
push-down variant changes the executed operator set, and migrating
into or out of a partial-aggregate split mid-stream would need a
state *transformation*, not a state copy.  That is future work; the
planner's one-shot mode already exploits push-down.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.adaptive.revision import Migration, RePlace
from repro.cluster.engine import (
    ClusterResult,
    _NetAccounting,
    _StagePipeline,
)
from repro.cluster.place import (
    Placement,
    assignment_makespan,
    plan_placement,
)
from repro.cluster.spec import ClusterSpec
from repro.core.engine import resolve_sources
from repro.core.graph import Plan
from repro.core.metrics import MetricsRegistry
from repro.core.stream import Source
from repro.errors import PlanError
from repro.gigascope.decompose import linearize_plan
from repro.parallel.combine import merge_metrics
from repro.parallel.partition import RoundRobinPartition, split_epochs

__all__ = ["AdaptiveClusterEngine"]


class AdaptiveClusterEngine:
    """A cluster run that re-places operators when measured rates drift.

    Parameters
    ----------
    plan:
        Must be a single-input linear chain (placement migration moves
        chain slices; joins/unions run under the one-shot
        :class:`~repro.cluster.engine.ClusterEngine`).
    replan_every:
        Epochs between planner consultations.
    improvement:
        Minimum incumbent/candidate makespan ratio to migrate (> 1).
    """

    def __init__(
        self,
        plan: Plan,
        cluster: ClusterSpec,
        batch_size: int | None = None,
        replan_every: int = 8,
        improvement: float = 1.2,
        record_size: float = 1.0,
    ) -> None:
        plan.validate()
        if linearize_plan(plan) is None:
            raise PlanError(
                "AdaptiveClusterEngine needs a single-input linear "
                "chain; run non-linear plans under ClusterEngine"
            )
        if replan_every < 1:
            raise PlanError(
                f"replan_every must be >= 1; got {replan_every}"
            )
        if not (improvement > 1.0):
            raise PlanError(
                f"improvement must be > 1.0 (hysteresis); "
                f"got {improvement}"
            )
        self.plan = plan
        self.cluster = cluster
        self.batch_size = batch_size
        self.replan_every = replan_every
        self.improvement = improvement
        self.record_size = record_size
        self.migrations: list[Migration] = []

    # -- internals -------------------------------------------------------

    def _chains_for(self, placement: Placement) -> list[list]:
        """Fresh deep-copied chain slices for ``placement``'s stages."""
        import copy

        chain = linearize_plan(self.plan)
        template = {op.name: copy.deepcopy(op) for op in chain}
        return [
            [template[name] for name in stage.ops]
            for stage in placement.stages
        ]

    def _pipeline(
        self, placement: Placement, acct: _NetAccounting
    ) -> _StagePipeline:
        input_name = next(iter(self.plan.inputs))
        output_name = next(iter(self.plan.outputs))
        return _StagePipeline(
            placement.stages,
            self._chains_for(placement),
            input_name,
            output_name,
            self.batch_size,
            acct,
            self.cluster,
        )

    def _charge_cpu(
        self, cpu: dict, registries, placement: Placement
    ) -> None:
        merged = merge_metrics(registries)
        for op_name, node in placement.assignment().items():
            busy = merged.for_operator(op_name).busy_time
            cpu[node] = cpu.get(node, 0.0) + busy / self.cluster.speed(node)

    # -- execution -------------------------------------------------------

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> ClusterResult:
        self.migrations = []
        input_name = next(iter(self.plan.inputs))
        output_name = next(iter(self.plan.outputs))
        by_name = resolve_sources(self.plan, sources)
        epochs = split_epochs(
            by_name[input_name].events(), RoundRobinPartition(1)
        )
        placement = plan_placement(
            self.plan,
            self.cluster,
            record_size=self.record_size,
            pushdown=False,
        )
        acct = _NetAccounting(self.cluster)
        registry_holder = MetricsRegistry()
        pipeline = self._pipeline(placement, acct)
        cpu: dict[str, float] = {}
        retired: list[MetricsRegistry] = []
        out = []
        for index, epoch in enumerate(epochs):
            payload = list(epoch.batches[0])
            if epoch.punct is not None:
                payload.append(epoch.punct)
            produced = pipeline.feed(payload)
            acct.ship(pipeline.last_node(), self.cluster.egress, produced)
            out.extend(produced)
            acct.end_epoch(registry_holder)
            if (index + 1) % self.replan_every == 0:
                placement, pipeline = self._maybe_replace(
                    placement, pipeline, acct, cpu, retired, index + 1
                )
        tail, results = pipeline.finish()
        acct.ship(pipeline.last_node(), self.cluster.egress, tail)
        out.extend(tail)
        self._charge_cpu(
            cpu, [res.metrics for res in results], placement
        )
        metrics = merge_metrics(
            retired
            + [res.metrics for res in results]
            + [registry_holder]
        )
        network = acct.finalize(metrics)
        for node, seconds in sorted(cpu.items()):
            metrics.incr(f"cluster.node.{node}.cpu_time", seconds)
        link_times = [usage["time"] for usage in network.values()]
        makespan = max(list(cpu.values()) + link_times, default=0.0)
        return ClusterResult(
            outputs={output_name: out},
            metrics=metrics,
            placement=placement,
            network=network,
            cpu=cpu,
            makespan=makespan,
        )

    def _maybe_replace(
        self, placement, pipeline, acct, cpu, retired, boundary
    ):
        """Consult the planner under measured stats; migrate if it pays."""
        stats = pipeline.operator_stats()
        candidate = plan_placement(
            self.plan,
            self.cluster,
            stats=stats,
            record_size=self.record_size,
            pushdown=False,
        )
        if candidate.assignment() == placement.assignment():
            return placement, pipeline
        incumbent = assignment_makespan(
            self.plan,
            self.cluster,
            placement,
            stats=stats,
            record_size=self.record_size,
        )
        if not (incumbent >= candidate.makespan * self.improvement):
            return placement, pipeline
        # Migrate: state moves by name, the stream never notices.
        states = pipeline.snapshot_states()
        self._charge_cpu(
            cpu, [engine.metrics for engine in pipeline.engines], placement
        )
        retired.extend(engine.metrics for engine in pipeline.engines)
        new_pipeline = self._pipeline(candidate, acct)
        new_pipeline.restore_states(states)
        self.migrations.append(
            Migration(
                boundary=boundary,
                revision=RePlace(
                    assignment=tuple(
                        sorted(candidate.assignment().items())
                    ),
                    makespan=candidate.makespan,
                    reason=candidate.reason,
                ),
                reason=(
                    f"measured drift: incumbent makespan {incumbent:.6g} "
                    f">= {self.improvement}x candidate "
                    f"{candidate.makespan:.6g}"
                ),
            )
        )
        return candidate, new_pipeline
