"""Multi-node operator placement on a simulated cluster (M10).

Borealis/Medusa-era distribution, reproduced in the small: a
deterministic cluster model (:class:`ClusterSpec` — per-node CPU speed
factors, per-link bandwidth/latency budgets), a placement planner that
cuts a linear plan into per-node stages minimizing the VN02 rate-model
bottleneck (:func:`plan_placement` — with Gigascope partial-aggregate
push-down competing in the same search), a staged execution engine
with virtual-time network accounting and per-link gauges
(:class:`ClusterEngine`), and an adaptive driver that migrates
operators between nodes when measured rates drift
(:class:`AdaptiveClusterEngine`, logging
:class:`~repro.adaptive.revision.RePlace` revisions).

The contract is the repository's usual one: placement decides only
where virtual time is spent — outputs are element-identical to
single-node execution for every placement, certified differentially
in ``tests/cluster`` across the full plan registry and multiple
topologies.
"""

from repro.cluster.adaptive import AdaptiveClusterEngine
from repro.cluster.engine import ClusterEngine, ClusterResult, run_cluster
from repro.cluster.place import (
    PlacedStage,
    Placement,
    assignment_makespan,
    evaluate_assignment,
    plan_placement,
    pushdown_placement,
    round_robin_placement,
)
from repro.cluster.spec import (
    ClusterSpec,
    LinkSpec,
    NodeSpec,
    bandwidth_skewed,
    homogeneous,
)

__all__ = [
    "AdaptiveClusterEngine",
    "ClusterEngine",
    "ClusterResult",
    "ClusterSpec",
    "LinkSpec",
    "NodeSpec",
    "PlacedStage",
    "Placement",
    "assignment_makespan",
    "bandwidth_skewed",
    "evaluate_assignment",
    "homogeneous",
    "plan_placement",
    "pushdown_placement",
    "round_robin_placement",
    "run_cluster",
]
