"""Operator placement under the VN02 rate model, network-aware.

The planner answers one question: *which node should run which slice
of the chain?*  Its objective is the steady-state bottleneck of the
pipelined execution — the **virtual makespan** — under the rate model
of rate-based optimization (Viglas & Naughton, SIGMOD 2002): a unit
source rate flows through the chain, each operator thins it by its
selectivity, and every resource is charged per source tuple:

* a node is charged ``rate_in(op) * cost_per_tuple(op) / speed(node)``
  for each operator it hosts;
* a link is charged ``rate_crossing * record_size / bandwidth`` for
  each chain edge that crosses it, plus ``latency * EPOCH_RATE`` per
  crossing (transfers happen once per epoch, not per tuple);
* the makespan is the maximum charge over all nodes and links — the
  pipeline moves as fast as its slowest resource.

Selectivities and costs default to the operators' declared values and
are overridden by measured evidence when a prior run's
``metrics.operators`` mapping is supplied (``stats=``): the observed
selectivity when records flowed, the measured service rate when
dispatches were wall-clock timed.  Absence of evidence falls back to
the declared value — never to a fabricated measurement.

Placements are searched exhaustively over *contiguous segmentations*
of the chain assigned to *distinct* nodes (an operator pipeline never
profits from revisiting a node: the traffic pays the link both ways
while the CPU charge is unchanged).  When the terminal aggregate is
mergeable, a **push-down variant** (Gigascope split: stateless prefix
+ partial aggregate upstream, final merge pinned at the egress node)
competes in the same search — partial states crossing the link are
usually far fewer than raw tuples, which is the whole point of
push-down.  Ties break toward fewer segments, then lexicographically
smaller node tuples, so planning is deterministic.

Plans that are not single-input linear chains (joins, unions,
multi-output) fall back to a ``single`` placement: the whole plan on
the one node that minimizes the modeled makespan.  Exactness never
depends on the placement — only the virtual time spent does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, permutations

from repro.aggregates.functions import First, Last
from repro.core.graph import Plan
from repro.core.metrics import OperatorMetrics
from repro.errors import PlanError
from repro.gigascope.decompose import (
    AggregateSplit,
    linearize_plan,
    split_chain_aggregate,
)
from repro.cluster.spec import ClusterSpec

__all__ = [
    "PlacedStage",
    "Placement",
    "plan_placement",
    "round_robin_placement",
    "pushdown_placement",
    "evaluate_assignment",
    "assignment_makespan",
]

#: Transfers are batched per epoch: a link's latency is charged per
#: epoch, not per tuple.  One epoch per ~100 source tuples is the
#: model's fixed assumption (the engine accounts actual epochs).
EPOCH_RATE = 0.01

#: Exhaustive-search budget; beyond it the planner degrades to the
#: best single-node placement (still exact, merely less clever).
MAX_CANDIDATES = 100_000


@dataclass(frozen=True)
class PlacedStage:
    """A contiguous run of chain operators hosted by one node."""

    node: str
    ops: tuple[str, ...]


@dataclass(frozen=True)
class Placement:
    """The planner's verdict: where each piece of the plan runs.

    ``mode`` is ``"chain"`` (the chain cut into stages), ``"pushdown"``
    (stages end in a partial aggregate; the final merge runs at the
    cluster's egress node), or ``"single"`` (whole plan on one node).
    ``makespan`` is the modeled virtual makespan per source tuple.
    """

    mode: str
    stages: tuple[PlacedStage, ...]
    makespan: float
    reason: str = ""
    split: AggregateSplit | None = field(default=None, compare=False)

    def assignment(self) -> dict[str, str]:
        """Operator name -> node name."""
        return {
            op: stage.node for stage in self.stages for op in stage.ops
        }

    def describe(self) -> dict:
        return {
            "mode": self.mode,
            "stages": [
                {"node": stage.node, "ops": list(stage.ops)}
                for stage in self.stages
            ],
            "makespan": self.makespan,
            "reason": self.reason,
        }


# ---------------------------------------------------------------------------
# the rate model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Position:
    """One placeable chain position with its modeled traffic."""

    name: str
    rate_in: float
    rate_out: float
    cost: float


def _measured(stats, name: str) -> OperatorMetrics | None:
    if stats is None:
        return None
    metrics = stats.get(name)
    return metrics if isinstance(metrics, OperatorMetrics) else None


def _op_selectivity(op, stats) -> float:
    metrics = _measured(stats, op.name)
    if metrics is not None and metrics.records_in > 0:
        observed = metrics.observed_selectivity
        if not math.isnan(observed):
            return observed
    return float(getattr(op, "selectivity", 1.0))


def _op_cost(op, stats) -> float:
    metrics = _measured(stats, op.name)
    if metrics is not None and metrics.timed_invocations > 0:
        rate = metrics.measured_rate
        if not math.isnan(rate) and rate > 0:
            return 1.0 / rate
    return float(getattr(op, "cost_per_tuple", 1.0))


def _chain_positions(chain, stats) -> list[_Position]:
    """Per-op input/output rates for a unit source rate."""
    positions: list[_Position] = []
    rate = 1.0
    for op in chain:
        sel = _op_selectivity(op, stats)
        out = rate * sel
        positions.append(
            _Position(op.name, rate, out, _op_cost(op, stats))
        )
        rate = out
    return positions


def _order_sensitive(aggregates) -> bool:
    """True when merging partial states depends on arrival order."""
    return any(
        isinstance(spec.new_state(), (First, Last)) for spec in aggregates
    )


# ---------------------------------------------------------------------------
# makespan evaluation
# ---------------------------------------------------------------------------


def evaluate_assignment(
    positions,
    nodes,
    cluster: ClusterSpec,
    record_size: float = 1.0,
    final_node: str | None = None,
) -> float:
    """Virtual makespan of hosting ``positions[i]`` on ``nodes[i]``.

    ``final_node`` is where the last position's output is consumed
    (the merge/egress node); its crossing is charged too.
    """
    if len(positions) != len(nodes):
        raise PlanError(
            f"{len(positions)} positions but {len(nodes)} node slots"
        )
    cpu: dict[str, float] = {}
    net: dict[tuple[str, str], float] = {}

    def cross(src: str, dst: str, rate: float) -> None:
        if src == dst or rate <= 0:
            return
        link = cluster.link(src, dst)
        charge = rate * record_size / link.bandwidth
        charge += link.latency * EPOCH_RATE
        key = (src, dst)
        net[key] = net.get(key, 0.0) + charge

    prev = cluster.ingress
    for pos, node in zip(positions, nodes):
        cross(prev, node, pos.rate_in)
        speed = cluster.speed(node)
        cpu[node] = cpu.get(node, 0.0) + pos.rate_in * pos.cost / speed
        prev = node
    if final_node is None:
        final_node = cluster.egress
    if positions:
        cross(prev, final_node, positions[-1].rate_out)
    loads = list(cpu.values()) + list(net.values())
    return max(loads) if loads else 0.0


def _segmentations(n_ops: int, max_segments: int):
    """All ways to cut ``n_ops`` chain positions into contiguous runs."""
    for k in range(1, max_segments + 1):
        for cuts in combinations(range(1, n_ops), k - 1):
            bounds = (0, *cuts, n_ops)
            yield [
                (bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)
            ]


def _candidate_count(n_ops: int, n_nodes: int) -> int:
    total = 0
    for k in range(1, min(n_ops, n_nodes) + 1):
        total += math.comb(n_ops - 1, k - 1) * math.perm(n_nodes, k)
    return total


def _search_chain(
    positions, cluster, record_size, extra_cpu_egress=0.0
):
    """Best (makespan, stage bounds, stage nodes) for one variant.

    ``extra_cpu_egress`` charges the push-down variant's final merge
    against the egress node's CPU on top of the searched placement.
    """
    names = cluster.node_names
    n_ops = len(positions)
    best = None
    max_segments = min(n_ops, len(names))
    for bounds in _segmentations(n_ops, max_segments):
        for combo in permutations(names, len(bounds)):
            per_position = [
                combo[i]
                for i, (lo, hi) in enumerate(bounds)
                for _ in range(hi - lo)
            ]
            makespan = evaluate_assignment(
                positions, per_position, cluster, record_size
            )
            if extra_cpu_egress:
                egress_speed = cluster.speed(cluster.egress)
                makespan = max(
                    makespan, extra_cpu_egress / egress_speed
                )
            key = (makespan, len(bounds), combo)
            if best is None or key < best[0]:
                best = (key, bounds, combo)
    assert best is not None
    return best[0][0], best[1], best[2]


def _stages_from(chain, bounds, combo) -> tuple[PlacedStage, ...]:
    return tuple(
        PlacedStage(node, tuple(op.name for op in chain[lo:hi]))
        for (lo, hi), node in zip(bounds, combo)
    )


def _best_single_node(plan, cluster, stats, record_size) -> Placement:
    """Whole plan on the one node with the smallest modeled makespan."""
    total_cost = sum(
        _op_cost(op, stats) for op in plan.topological_order()
    )
    best = None
    for name in cluster.node_names:
        load = total_cost / cluster.speed(name)
        ingress = cluster.link(cluster.ingress, name)
        egress = cluster.link(name, cluster.egress)
        load = max(
            load,
            record_size / ingress.bandwidth
            + ingress.latency * EPOCH_RATE,
            record_size / egress.bandwidth + egress.latency * EPOCH_RATE,
        )
        key = (load, name)
        if best is None or key < best:
            best = key
    makespan, node = best
    ops = tuple(op.name for op in plan.topological_order())
    return Placement(
        mode="single",
        stages=(PlacedStage(node, ops),),
        makespan=makespan,
        reason="plan is not a single-input linear chain; "
        "placed whole on the least-loaded node",
    )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def plan_placement(
    plan: Plan,
    cluster: ClusterSpec,
    stats=None,
    record_size: float = 1.0,
    pushdown: bool = True,
) -> Placement:
    """Choose the placement minimizing the modeled virtual makespan.

    ``stats`` is a prior run's ``metrics.operators`` mapping (operator
    name -> :class:`~repro.core.metrics.OperatorMetrics`); measured
    selectivities and service rates override the declared ones.
    """
    plan.validate()
    chain = linearize_plan(plan)
    if chain is None:
        return _best_single_node(plan, cluster, stats, record_size)
    if _candidate_count(len(chain), len(cluster.nodes)) > MAX_CANDIDATES:
        single = _best_single_node(plan, cluster, stats, record_size)
        return Placement(
            mode="chain",
            stages=single.stages,
            makespan=single.makespan,
            reason="search space over budget; single-node fallback",
        )

    positions = _chain_positions(chain, stats)
    makespan, bounds, combo = _search_chain(
        positions, cluster, record_size
    )
    best = Placement(
        mode="chain",
        stages=_stages_from(chain, bounds, combo),
        makespan=makespan,
        reason="bottleneck search over contiguous chain segmentations",
    )

    if pushdown:
        split = split_chain_aggregate(chain)
        if split is not None and not _order_sensitive(split.aggregates):
            best = _consider_pushdown(
                best, chain, split, cluster, stats, record_size
            )
    return best


def _consider_pushdown(
    best: Placement,
    chain,
    split: AggregateSplit,
    cluster: ClusterSpec,
    stats,
    record_size: float,
) -> Placement:
    """Let the Gigascope split compete with the plain chain."""
    partial = split.make_partial(name=_partial_name(chain))
    push_chain = list(split.prefix) + [partial]
    positions = _chain_positions(push_chain, stats)
    # The partial inherits the terminal's thinning: its states stream
    # is at most as dense as the final answer stream.
    terminal_sel = _op_selectivity(split.terminal, stats)
    last = positions[-1]
    positions[-1] = _Position(
        last.name,
        last.rate_in,
        last.rate_in * terminal_sel,
        _op_cost(split.terminal, stats),
    )
    merge_cpu = positions[-1].rate_out * _op_cost(split.terminal, stats)
    makespan, bounds, combo = _search_chain(
        positions, cluster, record_size, extra_cpu_egress=merge_cpu
    )
    if makespan < best.makespan:
        return Placement(
            mode="pushdown",
            stages=_stages_from(push_chain, bounds, combo),
            makespan=makespan,
            reason="partial-aggregate push-down shrinks the crossing; "
            "final merge at egress",
            split=split,
        )
    return best


def _partial_name(chain) -> str:
    """A partial-op name that cannot collide with the chain's own."""
    taken = {op.name for op in chain}
    name = "cluster_partial"
    while name in taken:  # pragma: no cover - defensive
        name += "_"
    return name


def pushdown_placement(
    plan: Plan,
    cluster: ClusterSpec,
    node: str | None = None,
    stats=None,
    record_size: float = 1.0,
) -> Placement:
    """An explicit LFTA/HFTA-style deployment of a mergeable aggregate.

    The stateless prefix and the partial aggregate run on ``node``
    (default: the ingress node — Gigascope's low-tier FTA next to the
    tap), only partial *states* cross the network, and the final merge
    runs at the egress node.  In a single linear pipeline this ties the
    best chain cut under the rate model (the crossing carries the same
    state-rate either way), so the automatic search rarely picks it —
    but it is the deployment shape the three-level architecture
    prescribes, and the engine executes it exactly
    (``tests/cluster`` certifies element-identity).

    Raises :class:`~repro.errors.PlanError` when the plan is not a
    linear chain or its terminal aggregate is not mergeable.
    """
    plan.validate()
    chain = linearize_plan(plan)
    if chain is None:
        raise PlanError("pushdown_placement needs a linear chain plan")
    split = split_chain_aggregate(chain)
    if split is None:
        raise PlanError(
            "the chain's terminal aggregate is not mergeable; "
            "no partial-aggregate push-down exists"
        )
    if _order_sensitive(split.aggregates):
        raise PlanError(
            "first/last aggregates are arrival-order sensitive; "
            "refusing to push down"
        )
    node = cluster.ingress if node is None else node
    cluster.node(node)
    partial = split.make_partial(name=_partial_name(chain))
    push_chain = list(split.prefix) + [partial]
    positions = _chain_positions(push_chain, stats)
    terminal_sel = _op_selectivity(split.terminal, stats)
    last = positions[-1]
    positions[-1] = _Position(
        last.name,
        last.rate_in,
        last.rate_in * terminal_sel,
        _op_cost(split.terminal, stats),
    )
    makespan = evaluate_assignment(
        positions, [node] * len(positions), cluster, record_size
    )
    merge_cpu = positions[-1].rate_out * _op_cost(split.terminal, stats)
    makespan = max(makespan, merge_cpu / cluster.speed(cluster.egress))
    return Placement(
        mode="pushdown",
        stages=(
            PlacedStage(node, tuple(op.name for op in push_chain)),
        ),
        makespan=makespan,
        reason=f"explicit push-down: prefix + partial on {node!r}, "
        f"merge at egress {cluster.egress!r}",
        split=split,
    )


def assignment_makespan(
    plan: Plan,
    cluster: ClusterSpec,
    placement: Placement,
    stats=None,
    record_size: float = 1.0,
) -> float:
    """Re-score an existing chain placement under (new) ``stats``.

    The adaptive layer uses this for hysteresis: the incumbent and the
    candidate must be compared under the *same* measured rates.
    """
    if placement.mode != "chain":
        raise PlanError(
            f"assignment_makespan scores chain placements; "
            f"got mode {placement.mode!r}"
        )
    chain = linearize_plan(plan)
    if chain is None:
        raise PlanError("plan is not a linear chain")
    assignment = placement.assignment()
    try:
        nodes = [assignment[op.name] for op in chain]
    except KeyError as exc:
        raise PlanError(
            f"placement does not cover operator {exc.args[0]!r}"
        ) from None
    positions = _chain_positions(chain, stats)
    return evaluate_assignment(positions, nodes, cluster, record_size)


def round_robin_placement(
    plan: Plan,
    cluster: ClusterSpec,
    stats=None,
    record_size: float = 1.0,
) -> Placement:
    """The naive baseline: deal chain operators over nodes in order.

    This is what a placement-oblivious scheduler does — and what the
    M10 benchmark holds the cost model against.  Non-linear plans fall
    back to the single-node placement (there is nothing to deal out).
    """
    plan.validate()
    chain = linearize_plan(plan)
    if chain is None:
        return _best_single_node(plan, cluster, stats, record_size)
    names = cluster.node_names
    per_position = [names[i % len(names)] for i in range(len(chain))]
    positions = _chain_positions(chain, stats)
    makespan = evaluate_assignment(
        positions, per_position, cluster, record_size
    )
    stages: list[PlacedStage] = []
    for op, node in zip(chain, per_position):
        if stages and stages[-1].node == node:
            stages[-1] = PlacedStage(
                node, stages[-1].ops + (op.name,)
            )
        else:
            stages.append(PlacedStage(node, (op.name,)))
    return Placement(
        mode="chain",
        stages=tuple(stages),
        makespan=makespan,
        reason="round-robin baseline (placement-oblivious)",
    )
