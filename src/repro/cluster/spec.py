"""Simulated cluster topology: nodes, links, and their budgets.

A :class:`ClusterSpec` is the placement planner's and the cluster
engine's shared picture of the hardware: each node has a CPU *speed
factor* (2.0 = tuples cost half the virtual service time they would on
a speed-1.0 node), and each directed link has a *bandwidth* budget
(record-size units per virtual second) and a fixed per-transfer
*latency*.  Everything is deterministic and declarative — the cluster
is simulated, not discovered — so placements, virtual makespans, and
the M10 benchmark gate are exactly reproducible.

Two conventions keep the model small:

* A node's link to itself is free (infinite bandwidth, zero latency):
  operators placed on one node exchange tuples through memory.
* Undeclared links fall back to the spec's ``default_bandwidth`` /
  ``default_latency``, so a homogeneous full mesh needs no link list
  at all and a skewed topology declares only its bottlenecks.

The stream enters at the ``ingress`` node (where sources arrive) and
results are consumed at the ``egress`` node; both default sensibly so
single-node clusters need no ceremony.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import PlanError

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "ClusterSpec",
    "homogeneous",
    "bandwidth_skewed",
]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: a name and a CPU speed factor."""

    name: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError("node name must be non-empty")
        if not (self.speed > 0) or math.isinf(self.speed):
            raise PlanError(
                f"node {self.name!r} speed must be finite and > 0; "
                f"got {self.speed}"
            )


@dataclass(frozen=True)
class LinkSpec:
    """One directed link: bandwidth in record-size units per virtual
    second, plus a fixed latency charged once per transfer (epoch)."""

    src: str
    dst: str
    bandwidth: float = math.inf
    latency: float = 0.0

    def __post_init__(self) -> None:
        if not (self.bandwidth > 0):
            raise PlanError(
                f"link {self.src}->{self.dst} bandwidth must be > 0; "
                f"got {self.bandwidth}"
            )
        if not (self.latency >= 0) or math.isinf(self.latency):
            raise PlanError(
                f"link {self.src}->{self.dst} latency must be finite "
                f"and >= 0; got {self.latency}"
            )


#: The implicit free link from a node to itself.
_SELF_LINK_BANDWIDTH = math.inf
_SELF_LINK_LATENCY = 0.0


@dataclass(frozen=True)
class ClusterSpec:
    """A deterministic simulated cluster.

    Parameters
    ----------
    nodes:
        At least one :class:`NodeSpec`; names must be unique.
    links:
        Declared directed links.  Order is irrelevant; at most one
        declaration per (src, dst) pair.  Pairs without a declaration
        use ``default_bandwidth``/``default_latency``.
    ingress:
        The node where source tuples arrive (defaults to the first
        node).  The planner charges the first placed operator's input
        rate against the ``ingress -> first_node`` link.
    egress:
        The node where results are consumed and where a pushed-down
        aggregate's final merge runs (defaults to ``ingress``).
    """

    nodes: tuple[NodeSpec, ...]
    links: tuple[LinkSpec, ...] = ()
    ingress: str = ""
    egress: str = ""
    default_bandwidth: float = math.inf
    default_latency: float = 0.0
    _by_name: dict = field(
        default=None, repr=False, compare=False, hash=False
    )
    _link_map: dict = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __init__(
        self,
        nodes,
        links=(),
        ingress: str | None = None,
        egress: str | None = None,
        default_bandwidth: float = math.inf,
        default_latency: float = 0.0,
    ) -> None:
        nodes = tuple(nodes)
        links = tuple(links)
        if not nodes:
            raise PlanError("a cluster needs at least one node")
        by_name: dict[str, NodeSpec] = {}
        for node in nodes:
            if not isinstance(node, NodeSpec):
                raise PlanError(f"not a NodeSpec: {node!r}")
            if node.name in by_name:
                raise PlanError(f"duplicate node name {node.name!r}")
            by_name[node.name] = node
        link_map: dict[tuple[str, str], LinkSpec] = {}
        for link in links:
            if not isinstance(link, LinkSpec):
                raise PlanError(f"not a LinkSpec: {link!r}")
            for end in (link.src, link.dst):
                if end not in by_name:
                    raise PlanError(
                        f"link {link.src}->{link.dst} references unknown "
                        f"node {end!r}"
                    )
            if link.src == link.dst:
                raise PlanError(
                    f"self-link {link.src}->{link.dst} is implicit and "
                    f"free; do not declare it"
                )
            key = (link.src, link.dst)
            if key in link_map:
                raise PlanError(
                    f"duplicate link declaration {link.src}->{link.dst}"
                )
            link_map[key] = link
        if not (default_bandwidth > 0):
            raise PlanError(
                f"default_bandwidth must be > 0; got {default_bandwidth}"
            )
        if not (default_latency >= 0) or math.isinf(default_latency):
            raise PlanError(
                f"default_latency must be finite and >= 0; "
                f"got {default_latency}"
            )
        ingress = nodes[0].name if ingress is None else ingress
        egress = ingress if egress is None else egress
        for role, name in (("ingress", ingress), ("egress", egress)):
            if name not in by_name:
                raise PlanError(f"{role} node {name!r} is not in the cluster")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "links", links)
        object.__setattr__(self, "ingress", ingress)
        object.__setattr__(self, "egress", egress)
        object.__setattr__(self, "default_bandwidth", default_bandwidth)
        object.__setattr__(self, "default_latency", default_latency)
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(self, "_link_map", link_map)

    # -- lookups ---------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def node(self, name: str) -> NodeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlanError(f"no node named {name!r}") from None

    def speed(self, name: str) -> float:
        return self.node(name).speed

    def link(self, src: str, dst: str) -> LinkSpec:
        """The effective link from ``src`` to ``dst``.

        Same node: the implicit free link.  Declared pair: the
        declaration.  Otherwise: the cluster defaults.
        """
        self.node(src)
        self.node(dst)
        if src == dst:
            return LinkSpec(
                src, dst, _SELF_LINK_BANDWIDTH, _SELF_LINK_LATENCY
            )
        declared = self._link_map.get((src, dst))
        if declared is not None:
            return declared
        return LinkSpec(
            src, dst, self.default_bandwidth, self.default_latency
        )

    def describe(self) -> dict:
        """Plain-dict summary for logs and baselines."""
        return {
            "nodes": {node.name: node.speed for node in self.nodes},
            "ingress": self.ingress,
            "egress": self.egress,
            "links": {
                f"{link.src}->{link.dst}": {
                    "bandwidth": link.bandwidth,
                    "latency": link.latency,
                }
                for link in self.links
            },
            "default_bandwidth": self.default_bandwidth,
            "default_latency": self.default_latency,
        }


# ---------------------------------------------------------------------------
# factory topologies (tests and benchmarks)
# ---------------------------------------------------------------------------


def homogeneous(
    n: int,
    speed: float = 1.0,
    bandwidth: float = math.inf,
    latency: float = 0.0,
) -> ClusterSpec:
    """``n`` identical nodes ``n0..n{n-1}`` on a uniform full mesh."""
    if n < 1:
        raise PlanError(f"homogeneous cluster needs n >= 1; got {n}")
    return ClusterSpec(
        [NodeSpec(f"n{i}", speed) for i in range(n)],
        ingress="n0",
        default_bandwidth=bandwidth,
        default_latency=latency,
    )


def bandwidth_skewed(
    n: int = 3,
    worker_speed: float = 4.0,
    thin_bandwidth: float = 50.0,
    thin_latency: float = 0.01,
) -> ClusterSpec:
    """An ingress node ``n0`` behind thin links to fast workers.

    ``n0`` (speed 1.0) is where the stream arrives; ``n1..n{n-1}`` are
    ``worker_speed``-times faster but every link touching ``n0`` is
    bandwidth-constrained.  The cost model should therefore place
    selective operators *before* the crossing — shipping the raw
    stream over a thin link is the mistake the M10 benchmark measures.
    Links among the workers are uncapped.
    """
    if n < 2:
        raise PlanError(f"bandwidth_skewed cluster needs n >= 2; got {n}")
    nodes = [NodeSpec("n0", 1.0)]
    nodes += [NodeSpec(f"n{i}", worker_speed) for i in range(1, n)]
    links = []
    for i in range(1, n):
        links.append(
            LinkSpec("n0", f"n{i}", thin_bandwidth, thin_latency)
        )
        links.append(
            LinkSpec(f"n{i}", "n0", thin_bandwidth, thin_latency)
        )
    return ClusterSpec(nodes, links, ingress="n0")
