"""Distributed stream evaluation (slide 55's open issue).

Implements the two cited preliminary works: Babcock-Olston distributed
top-k monitoring ([BO03]) and Olston-Jiang-Widom adaptive filters for
distributed continuous queries ([OJW03]).
"""

from repro.distributed.filters import AdaptiveFilterSum, uniform_messages
from repro.distributed.topk import TopKCoordinator, naive_topk_messages

__all__ = [
    "AdaptiveFilterSum",
    "uniform_messages",
    "TopKCoordinator",
    "naive_topk_messages",
]
