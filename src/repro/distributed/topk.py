"""Distributed top-k monitoring (Babcock & Olston, SIGMOD 2003).

Slide 55 flags distributed evaluation as an open issue and cites [BO03]
as the preliminary work.  The setting: *m* monitor nodes each see a
local stream of object hits; a coordinator must continuously know the
top-k objects by **global** count, without shipping every update.

Reproduced protocol (the paper's core idea, with a conservative slack
allocation):

* at each *resolution*, the coordinator pulls all local counts,
  computes the global top-k, measures the **gap** between the k-th and
  (k+1)-th global counts, and grants every node an equal *allowance*
  of ``slack * gap / m``;
* between resolutions each node checks a purely **local constraint**:
  no non-top-k object's growth since the last resolution may exceed the
  slowest top-k object's growth by more than the allowance;
* a violated constraint sends one report to the coordinator, which
  resolves again.

Soundness: a global overtake requires the summed growth differences
across nodes to exceed the gap; while every node's difference is within
``slack * gap / m`` the sum is at most ``slack * gap < gap``, so the
maintained top-k set equals the true one whenever all constraints hold
— the answer can only be stale in the instants between a violation and
its resolution.

Experiment E16 measures the payoff: far fewer messages than forwarding
every update, with the answer exact at every probe.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Sequence

from repro.errors import StreamError

__all__ = ["TopKCoordinator", "naive_topk_messages"]


class _Node:
    """One monitor node's local state."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.counts: Counter = Counter()
        self.synced: Counter = Counter()
        self.allowance = 0.0

    def growth(self, obj: Hashable) -> int:
        return self.counts[obj] - self.synced[obj]

    def violates(self, topk: set, candidate: Hashable) -> bool:
        """Has ``candidate`` outgrown the slowest top-k object locally
        by more than the allowance?"""
        if not topk or candidate in topk:
            return False
        min_top_growth = min(self.growth(t) for t in topk)
        return self.growth(candidate) - min_top_growth > self.allowance


class TopKCoordinator:
    """Coordinator + nodes for continuous distributed top-k.

    Parameters
    ----------
    n_nodes:
        Number of monitor nodes.
    k:
        Size of the maintained top-k set.
    slack:
        Fraction of the k-th/(k+1)-th global count gap handed out as
        per-node allowances.  0 = resolve on every local crossing;
        values close to 1 tolerate more local drift per resolution.
    """

    def __init__(self, n_nodes: int, k: int, slack: float = 0.5) -> None:
        if n_nodes < 1 or k < 1:
            raise StreamError("need n_nodes >= 1 and k >= 1")
        if not 0.0 <= slack < 1.0:
            raise StreamError(f"slack must be in [0,1); got {slack}")
        self.nodes = [_Node(i) for i in range(n_nodes)]
        self.k = k
        self.slack = slack
        self.topk: set = set()
        #: node->coordinator reports plus per-node pulls at resolutions
        self.messages = 0
        self.resolutions = 0
        self._distinct_seen: set = set()

    # -- data path -----------------------------------------------------------

    def observe(self, node_id: int, obj: Hashable) -> None:
        """One local hit at ``node_id`` for ``obj``."""
        # Same aliasing hazard as AdaptiveFilterSum.update: a negative
        # node_id would silently credit the hit to node m-1.
        if not 0 <= node_id < len(self.nodes):
            raise StreamError(
                f"node_id must be in [0, {len(self.nodes)}); got {node_id}"
            )
        node = self.nodes[node_id]
        node.counts[obj] += 1
        if len(self.topk) < self.k and obj not in self._distinct_seen:
            # Bootstrap: the candidate pool is still smaller than k.
            self._distinct_seen.add(obj)
            self.messages += 1
            self._resolve()
            return
        self._distinct_seen.add(obj)
        if node.violates(self.topk, obj):
            self.messages += 1  # the node's violation report
            self._resolve()

    def observe_stream(self, events: Iterable[tuple[int, Hashable]]) -> None:
        for node_id, obj in events:
            self.observe(node_id, obj)

    # -- coordinator internals -------------------------------------------------

    def _resolve(self) -> None:
        """Pull fresh counts, recompute top-k, grant allowances."""
        self.resolutions += 1
        global_counts: Counter = Counter()
        for node in self.nodes:
            self.messages += 1  # coordinator pulls one node's counts
            node.synced = Counter(node.counts)
            global_counts.update(node.counts)
        ranked = global_counts.most_common()
        self.topk = {obj for obj, _c in ranked[: self.k]}
        if len(ranked) > self.k:
            gap = ranked[self.k - 1][1] - ranked[self.k][1]
        elif ranked:
            gap = ranked[-1][1]
        else:
            gap = 0
        allowance = self.slack * gap / len(self.nodes)
        for node in self.nodes:
            node.allowance = allowance

    # -- verification -----------------------------------------------------------

    def true_topk(self) -> set:
        total: Counter = Counter()
        for node in self.nodes:
            total.update(node.counts)
        return {obj for obj, _c in total.most_common(self.k)}

    def current_answer(self) -> set:
        return set(self.topk)

    def accuracy(self) -> float:
        """Fraction of the true top-k present in the maintained set."""
        truth = self.true_topk()
        if not truth:
            return 1.0
        return len(truth & self.topk) / len(truth)


def naive_topk_messages(events: Sequence[tuple[int, Hashable]]) -> int:
    """Messages if every update were forwarded to the coordinator."""
    return len(events)
