"""Adaptive filters for distributed continuous queries (Olston, Jiang &
Widom, SIGMOD 2003).

The second citation behind slide 55's distributed-evaluation open issue
([OJW03]).  Setting: a coordinator continuously reports the **sum** of
values held at *m* remote sources, within a user-chosen precision ±Δ.
Each source *i* gets a *filter* — an interval of width ``w_i`` centred
on its last report — and stays silent while its value remains inside.
The widths satisfy ``Σ w_i <= 2Δ``, so the coordinator's cached sum is
always within Δ of truth.

Adaptivity is the paper's contribution: sources that change often earn
wider filters.  Periodically every width shrinks by a factor, and the
reclaimed budget is regranted to the sources with the highest recent
report rates.

Experiment E16b measures messages vs precision and the win of adaptive
width allocation over uniform when source volatilities differ.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import StreamError

__all__ = ["AdaptiveFilterSum", "uniform_messages"]


class _Source:
    __slots__ = ("value", "last_report", "width", "reports_recent")

    def __init__(self, value: float, width: float) -> None:
        self.value = value
        self.last_report = value
        self.width = width
        self.reports_recent = 0.0


class AdaptiveFilterSum:
    """Continuous distributed SUM within ±precision.

    Parameters
    ----------
    n_sources:
        Number of remote sources.
    precision:
        The coordinator's answer must stay within ±precision of the
        true sum.
    adaptive:
        If ``False``, widths stay uniform (the OJW03 baseline); if
        ``True``, widths are periodically reallocated toward the
        sources that reported most (shrink factor 0.95, lease every
        ``adapt_every`` updates).
    """

    def __init__(
        self,
        n_sources: int,
        precision: float,
        adaptive: bool = True,
        adapt_every: int = 100,
        shrink: float = 0.95,
    ) -> None:
        if n_sources < 1:
            raise StreamError("need at least one source")
        if precision <= 0:
            raise StreamError(f"precision must be > 0; got {precision}")
        if not 0.0 < shrink < 1.0:
            raise StreamError(f"shrink must be in (0,1); got {shrink}")
        self.precision = precision
        self.budget = 2.0 * precision
        self.adaptive = adaptive
        self.adapt_every = adapt_every
        self.shrink = shrink
        width = self.budget / n_sources
        self.sources = [_Source(0.0, width) for _ in range(n_sources)]
        self.cached_sum = 0.0
        self.messages = 0
        self._updates = 0

    # -- data path -----------------------------------------------------------

    def update(self, source_id: int, value: float) -> None:
        """A remote source's value changes."""
        # Explicit range check: Python's negative indexing would silently
        # alias source_id=-1 onto source m-1 and corrupt its filter state.
        if not 0 <= source_id < len(self.sources):
            raise StreamError(
                f"source_id must be in [0, {len(self.sources)}); "
                f"got {source_id}"
            )
        src = self.sources[source_id]
        src.value = value
        half = src.width / 2.0
        if abs(value - src.last_report) > half:
            # Filter violated: the source reports its new value.
            self.cached_sum += value - src.last_report
            src.last_report = value
            src.reports_recent += 1.0
            self.messages += 1
        self._updates += 1
        if self.adaptive and self._updates % self.adapt_every == 0:
            self._reallocate()

    def _reallocate(self) -> None:
        """Shrink-and-regrant width reallocation (OJW03's core loop)."""
        reclaimed = 0.0
        for src in self.sources:
            cut = src.width * (1.0 - self.shrink)
            src.width -= cut
            reclaimed += cut
        total_reports = sum(s.reports_recent for s in self.sources)
        if total_reports > 0:
            for src in self.sources:
                src.width += reclaimed * (src.reports_recent / total_reports)
        else:
            per = reclaimed / len(self.sources)
            for src in self.sources:
                src.width += per
        for src in self.sources:
            src.reports_recent *= 0.5  # decay the report history

    # -- answers ---------------------------------------------------------------

    def answer(self) -> float:
        return self.cached_sum

    def true_sum(self) -> float:
        return sum(s.value for s in self.sources)

    def error(self) -> float:
        return abs(self.answer() - self.true_sum())

    def within_precision(self) -> bool:
        # Width invariant: sum of half-widths <= precision.
        return self.error() <= self.precision + 1e-9

    def total_width(self) -> float:
        return sum(s.width for s in self.sources)


def uniform_messages(
    updates: Sequence[tuple[int, float]], n_sources: int
) -> int:
    """Messages if every update were shipped (precision 0 baseline).

    Validates the update stream against ``n_sources`` so the baseline
    rejects exactly the ids :meth:`AdaptiveFilterSum.update` rejects —
    otherwise the message comparison would count updates the adaptive
    protocol refuses to process.
    """
    if n_sources < 1:
        raise StreamError("need at least one source")
    for source_id, _value in updates:
        if not 0 <= source_id < n_sources:
            raise StreamError(
                f"source_id must be in [0, {n_sources}); got {source_id}"
            )
    return len(updates)
