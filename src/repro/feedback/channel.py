"""The backward control channel.

Forward queues carry records and punctuations from sources to sinks; a
:class:`FeedbackChannel` is the single reverse mailbox shared by every
operator of one engine.  Operators bound to it call ``emit(fb)``; the
engine drains ``pending`` between forward dispatches and walks each
feedback punctuation *upstream* through the plan's reverse adjacency
(``Plan.predecessors``), letting every operator on the path act,
translate, or forward (``Operator.on_feedback``).  Advice that reaches
a plan input is recorded in ``ingress_delivered`` — that is what the
ingress guard installs, and what a sharding coordinator broadcasts to
sibling shards.
"""

from __future__ import annotations

from repro.core.tuples import FeedbackPunctuation

__all__ = ["FeedbackChannel"]


class FeedbackChannel:
    """Reverse mailbox: pending emissions plus delivery bookkeeping."""

    def __init__(self) -> None:
        self.pending: list[FeedbackPunctuation] = []
        self.ingress_delivered: list[tuple[str, FeedbackPunctuation]] = []
        self.emitted = 0
        self.delivered = 0
        self._seq = 0

    def emit(self, fb: FeedbackPunctuation) -> None:
        """Queue ``fb`` for upstream propagation at the next safe point."""
        if fb.seq == 0:
            self._seq += 1
            fb = FeedbackPunctuation(
                fb.pattern, fb.advice, origin=fb.origin, seq=self._seq
            )
        self.pending.append(fb)
        self.emitted += 1

    def drain(self) -> list[FeedbackPunctuation]:
        """Take all pending feedback (emptying the mailbox)."""
        pending, self.pending = self.pending, []
        return pending

    def record_ingress(self, input_name: str, fb: FeedbackPunctuation) -> None:
        """Note that ``fb`` reached plan input ``input_name``."""
        self.ingress_delivered.append((input_name, fb))
        self.delivered += 1

    def take_ingress(self) -> list[tuple[str, FeedbackPunctuation]]:
        """Drain the ingress-delivered log (for cross-shard exchange)."""
        delivered, self.ingress_delivered = self.ingress_delivered, []
        return delivered

    def reset(self) -> None:
        self.pending = []
        self.ingress_delivered = []
        self.emitted = 0
        self.delivered = 0
        self._seq = 0
