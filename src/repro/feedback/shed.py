"""Semantic shedding policy: what to shed, chosen from measured skew.

Random shedding at drop fraction *p* puts ≈ *p* relative error on every
group of a grouped aggregate.  The same drop budget concentrated on the
few hottest keys of a skewed stream leaves every other group exact —
that is the quality argument (MWA+03 semantic shedding, FMT feedback
punctuations) the M9 chaos certification measures.

:class:`KeyFrequency` is the bounded per-key frequency synopsis
(space-saving flavour) the guard maintains on admitted records;
:class:`FeedbackShedding` is the picklable configuration selecting the
key attribute, trigger/resume hysteresis, and how aggressively to thin
hot keys.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FeedbackShedding", "KeyFrequency"]


class KeyFrequency:
    """Bounded per-key counter (space-saving style).

    Tracks at most ``size`` keys exactly while they stay in the table; a
    new key evicts the current minimum and inherits its count, so heavy
    hitters are never undercounted by more than the evicted minimum —
    plenty for picking the top handful of a Zipf stream.
    """

    def __init__(self, size: int = 64) -> None:
        if size < 1:
            raise ValueError(f"synopsis size must be >= 1: {size}")
        self.size = size
        self.counts: dict = {}
        self.total = 0

    def observe(self, key) -> None:
        self.total += 1
        counts = self.counts
        if key in counts:
            counts[key] += 1
            return
        if len(counts) < self.size:
            counts[key] = 1
            return
        min_key = min(counts, key=lambda k: counts[k])
        counts[key] = counts.pop(min_key) + 1

    def top(self, n: int) -> list[tuple[object, int]]:
        """The ``n`` heaviest keys as ``(key, count)``, heaviest first.

        Ties break on ``repr(key)`` so the pick is deterministic across
        runs regardless of dict insertion order.
        """
        return sorted(
            self.counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )[:n]

    def coverage(self, keys) -> float:
        """Fraction of observed records carrying one of ``keys``."""
        if not self.total:
            return 0.0
        return sum(self.counts.get(k, 0) for k in keys) / self.total

    def snapshot(self) -> tuple:
        return (dict(self.counts), self.total)

    def restore(self, state: tuple) -> None:
        counts, total = state
        self.counts = dict(counts)
        self.total = total

    def reset(self) -> None:
        self.counts = {}
        self.total = 0


@dataclass(frozen=True)
class FeedbackShedding:
    """Configuration for semantic (feedback-advised) shedding.

    Parameters
    ----------
    key_attr:
        Record attribute carrying the partition key to profile and shed.
    keep_rate:
        Keep rate to downsample hot keys to; ``None`` derives it from
        the controller's current drop rate and the measured coverage of
        the chosen hot keys (shed the needed volume, no more).
    hot_keys:
        How many of the heaviest keys to target per advisory.
    trigger_after:
        Consecutive pressured polls before advice is emitted
        (hysteresis against transient spikes).
    resume_after:
        Consecutive calm polls before a RESUME is emitted.
    synopsis_size:
        Capacity of the :class:`KeyFrequency` synopsis.
    auto:
        When ``True`` the guard emits/retracts advice itself from the
        controller's pressure signal; when ``False`` it only maintains
        the synopsis and acts on advice pushed to it (e.g. by the
        adaptive controller's ``RetuneFeedback`` revisions).
    """

    key_attr: str
    keep_rate: float | None = None
    hot_keys: int = 2
    trigger_after: int = 3
    resume_after: int = 6
    synopsis_size: int = 64
    auto: bool = True

    def __post_init__(self) -> None:
        if not self.key_attr:
            raise ValueError("key_attr must be a non-empty attribute name")
        if self.keep_rate is not None and not (0.0 <= self.keep_rate <= 1.0):
            raise ValueError(f"keep_rate must be in [0, 1]: {self.keep_rate}")
        if self.hot_keys < 1:
            raise ValueError(f"hot_keys must be >= 1: {self.hot_keys}")
        if self.trigger_after < 1 or self.resume_after < 1:
            raise ValueError("trigger_after and resume_after must be >= 1")
        if self.synopsis_size < self.hot_keys:
            raise ValueError("synopsis_size must be >= hot_keys")
