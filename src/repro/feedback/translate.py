"""Pattern translation through schema-mapping operators.

A feedback punctuation emitted below a ``Project`` or ``Rename``
describes the *output* schema of that operator; to be useful upstream it
must be rewritten into the operator's *input* schema.  The functions
here are pure: an operator hands in its output→input attribute mapping
and gets back either a rewritten punctuation or ``None`` meaning
"untranslatable" — in which case the operator must *forward the
original unchanged* (advice about attributes a producer cannot see is
harmless; silently dropping it would strand the overload).

Translation is compositional: translating through ``f`` then ``g``
equals translating through the composed mapping ``g∘f`` (the hypothesis
suite in ``tests/feedback/test_translate_properties.py`` certifies
this).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.tuples import DropKeys, FeedbackPunctuation

__all__ = [
    "canonical_pattern",
    "rename_pattern",
    "translate_feedback",
    "compose_mappings",
]


def canonical_pattern(
    entries: list[tuple[str, Any]],
) -> tuple[tuple[str, Any], ...]:
    """Deterministic pattern ordering, safe for mixed-type values.

    A non-injective mapping can send two patterned attributes to the
    same source attribute, so the sort key must never compare the
    pattern *values* directly (``0`` vs ``""`` raises TypeError) —
    ``repr`` is total and stable.
    """
    return tuple(sorted(entries, key=lambda kv: (kv[0], repr(kv[1]))))


def rename_pattern(
    mapping: Mapping[str, str],
    pattern: tuple[tuple[str, Any], ...],
) -> tuple[tuple[str, Any], ...] | None:
    """Rewrite ``pattern`` attrs through ``mapping`` (out-name → in-name).

    Returns ``None`` when any patterned attribute has no image — a
    partially-translated pattern would match a *different* slice of the
    stream, so translation is all-or-nothing.
    """
    renamed: list[tuple[str, Any]] = []
    for name, pat in pattern:
        if name not in mapping:
            return None
        renamed.append((mapping[name], pat))
    return canonical_pattern(renamed)


def translate_feedback(
    fb: FeedbackPunctuation, mapping: Mapping[str, str]
) -> FeedbackPunctuation | None:
    """Rewrite a feedback punctuation through an out→in attribute mapping.

    Both the pattern and any attribute named *inside* the advice (e.g.
    ``DropKeys.attr``) must translate; otherwise returns ``None`` and the
    caller forwards the original.
    """
    pattern = rename_pattern(mapping, fb.pattern)
    if pattern is None:
        return None
    advice = fb.advice
    if isinstance(advice, DropKeys):
        if advice.attr not in mapping:
            return None
        advice = DropKeys(mapping[advice.attr], advice.keys)
    return fb.with_pattern(pattern, advice)


def compose_mappings(
    first: Mapping[str, str], second: Mapping[str, str]
) -> dict[str, str]:
    """Compose two out→in mappings: translating through ``first`` then
    ``second`` equals translating through the returned mapping.

    ``first`` is the mapping of the *downstream* operator (applied
    first, walking upstream); an output attr of ``first`` whose image
    has no entry in ``second`` is dropped from the composition — it is
    untranslatable through the pair.
    """
    composed: dict[str, str] = {}
    for out_name, mid_name in first.items():
        if mid_name in second:
            composed[out_name] = second[mid_name]
    return composed
