"""Feedback punctuations — the backward control channel (milestone M9).

Forward dataflow carries records and punctuations; this package adds
the reverse direction (Fernández-Moctezuma & Tufte, arXiv:0909.2062):
:class:`~repro.core.tuples.FeedbackPunctuation` markers that an
overloaded consumer emits *against* the stream, carrying a pattern plus
an advice verb (``DOWNSAMPLE``/``DROP_KEYS``/``WIDEN_SLIDE``/``PAUSE``/
``RESUME``).  Operators between emitter and source act on the advice,
translate its pattern through their schema mapping, or forward it; what
reaches a plan ingress is installed in an :class:`AdviceTable` (by the
:class:`~repro.resilience.overload.OverloadGuard` when present, by the
engine itself otherwise) and thins exactly the advised slice of the
input — shedding the skewed key instead of random tuples.

Public surface:

* :class:`FeedbackChannel` — the per-engine reverse mailbox;
* :class:`AdviceTable` — installed advice, deterministic + idempotent;
* :func:`translate_feedback` / :func:`rename_pattern` /
  :func:`compose_mappings` — pure pattern translation;
* :class:`FeedbackShedding` + :class:`KeyFrequency` — semantic-shedding
  policy config and the per-key frequency synopsis behind it;
* :class:`BackpressureProbe` — consumer-side emitter for guardless
  (e.g. sharded-worker) plans.

The advice verbs and :class:`FeedbackPunctuation` itself live beside
:class:`~repro.core.tuples.Punctuation` in :mod:`repro.core.tuples` and
are re-exported here.
"""

from repro.core.tuples import (
    Downsample,
    DropKeys,
    FeedbackPunctuation,
    Pause,
    Resume,
    WidenSlide,
    is_feedback,
)
from repro.feedback.channel import FeedbackChannel
from repro.feedback.probe import BackpressureProbe
from repro.feedback.shed import FeedbackShedding, KeyFrequency
from repro.feedback.table import AdviceTable
from repro.feedback.translate import (
    compose_mappings,
    rename_pattern,
    translate_feedback,
)

__all__ = [
    "FeedbackPunctuation",
    "Downsample",
    "DropKeys",
    "WidenSlide",
    "Pause",
    "Resume",
    "is_feedback",
    "FeedbackChannel",
    "AdviceTable",
    "BackpressureProbe",
    "FeedbackShedding",
    "KeyFrequency",
    "compose_mappings",
    "rename_pattern",
    "translate_feedback",
]
