"""Consumer-driven backpressure for plans without an ingress guard.

:class:`~repro.resilience.overload.OverloadGuard` watches ingress
queues, but sharded workers and plain engines have no guard — overload
there shows up as *too many records per punctuation epoch* at some
downstream operator.  :class:`BackpressureProbe` is a pass-through
operator placed where the pressure is felt: it counts records between
punctuations, keeps a per-key synopsis, and when an epoch overflows its
capacity emits ``DOWNSAMPLE`` feedback targeted at the measured hot
keys.  After ``resume_after`` consecutive calm epochs it emits
``RESUME``.

The probe is stateless with respect to the *data* (records pass through
untouched), so it shards like a filter; its synopsis/hysteresis state
participates in snapshot/restore so recovery does not forget what was
shed.
"""

from __future__ import annotations

from repro.core.tuples import (
    Downsample,
    FeedbackPunctuation,
    Punctuation,
    Record,
    Resume,
)
from repro.feedback.shed import KeyFrequency
from repro.operators.base import Element, UnaryOperator

__all__ = ["BackpressureProbe"]


class BackpressureProbe(UnaryOperator):
    """Pass-through operator that emits feedback when epochs overflow.

    Parameters
    ----------
    key_attr:
        Attribute to profile; advice patterns target its hot values.
    capacity:
        Records per punctuation epoch this consumer can absorb.  An
        epoch exceeding it counts toward triggering advice.
    keep_rate:
        Keep rate for the emitted ``DOWNSAMPLE``; ``None`` derives it
        as ``capacity / observed`` of the overflowing epoch (clamped to
        [0.05, 1.0]) so the advised thinning matches the overload.
    hot_keys:
        How many of the heaviest keys each advisory targets.
    trigger_after / resume_after:
        Epoch-count hysteresis before emitting advice / RESUME.
    """

    def __init__(
        self,
        key_attr: str,
        capacity: int,
        keep_rate: float | None = None,
        hot_keys: int = 1,
        trigger_after: int = 1,
        resume_after: int = 4,
        synopsis_size: int = 64,
        name: str = "",
    ) -> None:
        super().__init__(name or "backpressure_probe", cost_per_tuple=0.0)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.key_attr = key_attr
        self.capacity = capacity
        self.keep_rate = keep_rate
        self.hot_keys = hot_keys
        self.trigger_after = trigger_after
        self.resume_after = resume_after
        self.synopsis = KeyFrequency(synopsis_size)
        self._epoch_count = 0
        self._hot_epochs = 0
        self._calm_epochs = 0
        self._advised: list[tuple] = []  # patterns currently advised

    def on_record(self, record: Record, port: int) -> list[Element]:
        key = record.get(self.key_attr)
        if key is not None:
            self.synopsis.observe(key)
        self._epoch_count += 1
        return [record]

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        count, self._epoch_count = self._epoch_count, 0
        if count > self.capacity:
            self._hot_epochs += 1
            self._calm_epochs = 0
            if self._hot_epochs >= self.trigger_after:
                self._emit_downsample(count)
        else:
            self._hot_epochs = 0
            if self._advised:
                self._calm_epochs += 1
                if self._calm_epochs >= self.resume_after:
                    self._emit_resume()
        return [punct]

    def _emit_downsample(self, observed: int) -> None:
        rate = self.keep_rate
        if rate is None:
            rate = max(0.05, min(1.0, self.capacity / max(observed, 1)))
        for key, _count in self.synopsis.top(self.hot_keys):
            pattern = ((self.key_attr, key),)
            if pattern in self._advised:
                continue
            self._advised.append(pattern)
            self.emit_feedback(
                FeedbackPunctuation(
                    pattern, Downsample(rate), origin=self.name
                )
            )

    def _emit_resume(self) -> None:
        for pattern in self._advised:
            self.emit_feedback(
                FeedbackPunctuation(pattern, Resume(), origin=self.name)
            )
        self._advised = []
        self._calm_epochs = 0

    # -- state -------------------------------------------------------------

    def snapshot(self) -> object:
        return {
            "synopsis": self.synopsis.snapshot(),
            "epoch_count": self._epoch_count,
            "hot_epochs": self._hot_epochs,
            "calm_epochs": self._calm_epochs,
            "advised": list(self._advised),
        }

    def restore(self, state: object) -> None:
        if state is None:
            self.reset()
            return
        assert isinstance(state, dict)
        self.synopsis.restore(state["synopsis"])
        self._epoch_count = state["epoch_count"]
        self._hot_epochs = state["hot_epochs"]
        self._calm_epochs = state["calm_epochs"]
        self._advised = [tuple(p) for p in state["advised"]]

    def reset(self) -> None:
        self.synopsis.reset()
        self._epoch_count = 0
        self._hot_epochs = 0
        self._calm_epochs = 0
        self._advised = []

    def memory(self) -> float:
        return float(len(self.synopsis.counts))
