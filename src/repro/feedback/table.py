"""The acting side of feedback: an installed-advice table.

An operator (or the engine at an ingress) that *acts* on feedback keeps
an :class:`AdviceTable` — the set of currently-installed
``(pattern, advice)`` entries — and filters its records through
:meth:`AdviceTable.admit`.

Two properties matter for correctness under crashes and cross-shard
broadcast:

* **Determinism.** ``DOWNSAMPLE`` uses an integer counter stride, not a
  RNG: entry ``i`` admits record ``c`` iff
  ``floor(c * rate) > floor((c - 1) * rate)``.  A replayed run sees the
  same counters and admits the same records.
* **Idempotence.** :meth:`apply` dedupes by ``(pattern, advice)``
  equality and *keeps the existing counter* on re-apply, so an advice
  that arrives twice (local emit + coordinator broadcast, or a
  checkpoint-replayed feedback log) never resets the stride.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.tuples import (
    Downsample,
    DropKeys,
    FeedbackPunctuation,
    Pause,
    Record,
    Resume,
    _pattern_matches,
)

__all__ = ["AdviceTable"]


class _Entry:
    __slots__ = ("pattern", "advice", "counter")

    def __init__(
        self,
        pattern: tuple[tuple[str, Any], ...],
        advice: Any,
        counter: int = 0,
    ) -> None:
        self.pattern = pattern
        self.advice = advice
        self.counter = counter


class AdviceTable:
    """Installed feedback advice, applied record-by-record.

    ``admit(record)`` returns ``False`` when any installed entry says to
    drop the record; ``dropped`` counts those rejections.
    """

    def __init__(self) -> None:
        self._entries: list[_Entry] = []
        self.dropped = 0

    # -- installation -----------------------------------------------------

    def apply(self, fb: FeedbackPunctuation) -> bool:
        """Install (or, for RESUME, cancel) advice.  Returns ``True`` if
        the table changed."""
        advice = fb.advice
        if isinstance(advice, Resume):
            before = len(self._entries)
            if fb.pattern == ():
                self._entries = []
            else:
                self._entries = [
                    e for e in self._entries if e.pattern != fb.pattern
                ]
            return len(self._entries) != before
        if not isinstance(advice, (Downsample, DropKeys, Pause)):
            return False
        for entry in self._entries:
            if entry.pattern == fb.pattern and entry.advice == advice:
                return False  # idempotent re-apply keeps the counter
        self._entries.append(_Entry(fb.pattern, advice))
        return True

    @property
    def entries(self) -> list[tuple[tuple[tuple[str, Any], ...], Any]]:
        return [(e.pattern, e.advice) for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    # -- filtering --------------------------------------------------------

    def admit(self, record: Record) -> bool:
        """Return ``False`` when installed advice says to drop ``record``."""
        if not self._entries:
            return True
        for entry in self._entries:
            if not _pattern_matches(entry.pattern, record):
                continue
            advice = entry.advice
            if isinstance(advice, Pause):
                self.dropped += 1
                return False
            if isinstance(advice, DropKeys):
                if record.get(advice.attr) in advice.keys:
                    self.dropped += 1
                    return False
            elif isinstance(advice, Downsample):
                c = entry.counter = entry.counter + 1
                if not math.floor(c * advice.rate) > math.floor(
                    (c - 1) * advice.rate
                ):
                    self.dropped += 1
                    return False
        return True

    # -- persistence ------------------------------------------------------

    def snapshot(self) -> list[tuple] | None:
        """Picklable state, or ``None`` when the table is empty."""
        if not self._entries and not self.dropped:
            return None
        return [
            (e.pattern, e.advice, e.counter) for e in self._entries
        ] + [("__dropped__", None, self.dropped)]

    def restore(self, state: list[tuple] | None) -> None:
        self._entries = []
        self.dropped = 0
        if state is None:
            return
        for pattern, advice, counter in state:
            if pattern == "__dropped__":
                self.dropped = counter
            else:
                self._entries.append(_Entry(pattern, advice, counter))

    def reset(self) -> None:
        self._entries = []
        self.dropped = 0
