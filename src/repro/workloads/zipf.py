"""Zipf-distributed value generation.

Network identifiers (IPs, ports, callers) are heavy-tailed; the synopsis
experiments (E10) and heavy-hitter queries need a controllable skew.
:class:`PhaseShiftZipf` adds the *drift* dimension the adaptive
experiments (M6) need: the marginal law stays Zipf, but which keys are
hot changes at phase boundaries, so selectivities measured in one phase
mislead a static plan in the next.
"""

from __future__ import annotations

import bisect
import random

from repro.errors import StreamError

__all__ = ["ZipfGenerator", "PhaseShiftZipf"]


class ZipfGenerator:
    """Sample integers ``0..n-1`` with P(k) ∝ 1/(k+1)^s via inverse CDF."""

    def __init__(self, n: int, s: float = 1.1, seed: int = 42) -> None:
        if n < 1:
            raise StreamError(f"n must be >= 1; got {n}")
        if s < 0:
            raise StreamError(f"skew must be >= 0; got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        acc = 0.0
        self._cdf: list[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def expected_frequency(self, k: int) -> float:
        """Exact probability of rank ``k`` (for error measurement)."""
        if not 0 <= k < self.n:
            raise StreamError(f"rank out of range: {k}")
        lo = self._cdf[k - 1] if k > 0 else 0.0
        return self._cdf[k] - lo


class PhaseShiftZipf:
    """A Zipf stream whose hot keys rotate every ``phase_length`` samples.

    Frequency *rank* is drawn from Zipf(``s``) as usual, but the rank →
    key mapping rotates by ``rotation`` positions at each phase
    boundary: key ``(rank + phase * rotation) % n``.  Within any one
    phase the key distribution is exactly Zipf-skewed; across phases the
    identity of the heavy hitters moves, which is the skew-shift a
    drift-sensitive consumer (a filter selective on the phase-1 hot set,
    a synopsis sized for it) experiences as a changed selectivity.

    Sampling is deterministic for a given seed, independent of how
    ``sample``/``sample_many`` calls are interleaved.
    """

    def __init__(
        self,
        n: int,
        s: float = 1.1,
        seed: int = 42,
        phase_length: int = 1000,
        rotation: int | None = None,
    ) -> None:
        if phase_length < 1:
            raise StreamError(
                f"phase_length must be >= 1; got {phase_length}"
            )
        self._zipf = ZipfGenerator(n, s, seed)
        self.n = n
        self.s = s
        self.phase_length = phase_length
        self.rotation = n // 2 if rotation is None else rotation % n
        self._emitted = 0

    @property
    def current_phase(self) -> int:
        """Phase index of the *next* sample (0-based)."""
        return self._emitted // self.phase_length

    def key_for(self, rank: int, phase: int) -> int:
        """The key that frequency rank ``rank`` maps to in ``phase``."""
        if not 0 <= rank < self.n:
            raise StreamError(f"rank out of range: {rank}")
        return (rank + phase * self.rotation) % self.n

    def hot_keys(self, phase: int, top: int = 1) -> list[int]:
        """The ``top`` most frequent keys of ``phase``, hottest first."""
        return [self.key_for(rank, phase) for rank in range(top)]

    def sample(self) -> int:
        key = self.key_for(self._zipf.sample(), self.current_phase)
        self._emitted += 1
        return key

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]
