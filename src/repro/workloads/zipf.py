"""Zipf-distributed value generation.

Network identifiers (IPs, ports, callers) are heavy-tailed; the synopsis
experiments (E10) and heavy-hitter queries need a controllable skew.
"""

from __future__ import annotations

import bisect
import random

from repro.errors import StreamError

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Sample integers ``0..n-1`` with P(k) ∝ 1/(k+1)^s via inverse CDF."""

    def __init__(self, n: int, s: float = 1.1, seed: int = 42) -> None:
        if n < 1:
            raise StreamError(f"n must be >= 1; got {n}")
        if s < 0:
            raise StreamError(f"skew must be >= 0; got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        acc = 0.0
        self._cdf: list[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def expected_frequency(self, k: int) -> float:
        """Exact probability of rank ``k`` (for error measurement)."""
        if not 0 <= k < self.n:
            raise StreamError(f"rank out of range: {k}")
        lo = self._cdf[k - 1] if k > 0 else 0.0
        return self._cdf[k] - lo
