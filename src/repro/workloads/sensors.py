"""Measurement-stream workload: sensor/weather readings.

Substitute for the NOAA/sensor-network measurement streams the tutorial
motivates (slide 3): per-station periodic temperature readings with a
diurnal cycle, Gaussian noise, and injected anomaly spikes (the tornado-
detection stand-in — anomalies are what the standing queries look for).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.tuples import Field, Schema

__all__ = ["SensorConfig", "SensorGenerator", "sensor_schema"]


def sensor_schema() -> Schema:
    """Schema of the sensor stream: periodic per-station readings."""
    return Schema(
        [
            Field("ts", float, bounded=False),
            Field("station", int, bounded=True, domain=(0, 9999)),
            Field("temperature", float, bounded=False),
            Field("humidity", float, bounded=True, domain=(0, 100)),
        ],
        ordering="ts",
        name="readings",
    )


@dataclass
class SensorConfig:
    """Knobs of the synthetic sensor stream."""

    n_stations: int = 20
    interval: float = 1.0
    base_temp: float = 15.0
    daily_amplitude: float = 8.0
    day_length: float = 100.0
    noise: float = 0.8
    anomaly_rate: float = 0.01
    anomaly_magnitude: float = 25.0
    seed: int = 42


class SensorGenerator:
    """Round-robin periodic readings from ``n_stations`` stations."""

    def __init__(self, config: SensorConfig | None = None) -> None:
        self.config = config or SensorConfig()
        self._rng = random.Random(self.config.seed)
        self.schema = sensor_schema()
        #: timestamps at which anomalies were injected, per station
        self.injected_anomalies: list[tuple[int, float]] = []

    def readings(self, n: int) -> Iterator[dict]:
        cfg = self.config
        rng = self._rng
        count = 0
        tick = 0
        while count < n:
            ts = tick * cfg.interval
            for station in range(cfg.n_stations):
                if count >= n:
                    return
                phase = 2 * math.pi * (ts / cfg.day_length)
                # Stations are offset in phase so they disagree usefully.
                temp = (
                    cfg.base_temp
                    + cfg.daily_amplitude
                    * math.sin(phase + station * 0.3)
                    + rng.gauss(0.0, cfg.noise)
                )
                if rng.random() < cfg.anomaly_rate:
                    temp += cfg.anomaly_magnitude
                    self.injected_anomalies.append((station, ts))
                yield {
                    "ts": ts,
                    "station": station,
                    "temperature": temp,
                    "humidity": min(
                        100.0, max(0.0, rng.gauss(60.0, 15.0))
                    ),
                }
                count += 1
            tick += 1

    def generate(self, n: int) -> list[dict]:
        return list(self.readings(n))
