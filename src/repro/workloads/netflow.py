"""IP packet/flow workload.

Substitute for the AT&T IP backbone streams (slides 9-13).  Generates
packet records with the Gigascope layered schema's fields and two
engineered properties the tutorial's applications depend on:

* **P2P detection (slide 10).**  A configurable fraction of flows are
  P2P; only ``p2p_known_port_fraction`` of those use well-known P2P
  ports, while *all* P2P packets carry a P2P keyword in their payload.
  With the default fraction of 1/3, payload inspection identifies three
  times the traffic port-based Netflow counting does — the slide's
  headline number.
* **RTT monitoring (slide 11).**  TCP flows open with a SYN packet and
  a SYN-ACK reply after a latency drawn per client; joining the two on
  the 4-tuple (slide 13's GSQL query) recovers the RTT distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.tuples import Field, Schema
from repro.workloads.zipf import ZipfGenerator

__all__ = ["NetflowConfig", "PacketGenerator", "packet_schema", "P2P_PORTS", "P2P_KEYWORDS"]

#: Well-known P2P ports circa 2004 (Kazaa, Gnutella, eDonkey, BitTorrent).
P2P_PORTS = (1214, 6346, 4662, 6881)

#: Application-layer markers payload inspection searches for (slide 10).
P2P_KEYWORDS = ("X-Kazaa", "GNUTELLA", "e2dk", "BitTorrent")

_WEB_PORT = 80
_DNS_PORT = 53


def packet_schema() -> Schema:
    """Flattened layer-3/4 packet schema (slide 12)."""
    return Schema(
        [
            Field("ts", float, bounded=False),
            Field("src_ip", int, bounded=False),
            Field("dst_ip", int, bounded=False),
            Field("src_port", int, bounded=True, domain=(0, 65535)),
            Field("dst_port", int, bounded=True, domain=(0, 65535)),
            Field("protocol", int, bounded=True, domain=(1, 17)),
            Field("length", int, bounded=True, domain=(40, 1500)),
            Field("flags", str, bounded=True,
                  domain=("SYN", "SYN-ACK", "ACK", "DATA", "FIN")),
            Field("payload", str, bounded=False),
        ],
        ordering="ts",
        name="IPv4",
    )


@dataclass
class NetflowConfig:
    """Knobs of the synthetic packet stream."""

    n_hosts: int = 500
    n_servers: int = 50
    packets_per_unit: float = 100.0
    p2p_fraction: float = 0.3
    p2p_known_port_fraction: float = 1.0 / 3.0
    packets_per_flow: int = 8
    mean_rtt: float = 0.05
    rtt_jitter: float = 0.04
    seed: int = 42


class PacketGenerator:
    """Deterministic packet-stream generator with flow structure."""

    def __init__(self, config: NetflowConfig | None = None) -> None:
        self.config = config or NetflowConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self._host_zipf = ZipfGenerator(cfg.n_hosts, 1.0, seed=cfg.seed + 7)
        self.schema = packet_schema()

    def packets(self, n: int) -> Iterator[dict]:
        """Yield ``n`` packets ordered by ``ts``."""
        return iter(self.generate(n))

    def _new_flow(self, ts: float) -> list[dict]:
        cfg = self.config
        rng = self._rng
        client = self._host_zipf.sample()
        server = cfg.n_hosts + rng.randrange(cfg.n_servers)
        is_p2p = rng.random() < cfg.p2p_fraction
        if is_p2p:
            known_port = rng.random() < cfg.p2p_known_port_fraction
            port = (
                rng.choice(P2P_PORTS)
                if known_port
                else rng.randrange(10000, 60000)
            )
            keyword = rng.choice(P2P_KEYWORDS)
        else:
            port = _WEB_PORT if rng.random() < 0.8 else _DNS_PORT
            keyword = ""
        client_port = rng.randrange(1024, 65535)
        rtt = max(
            0.001, rng.gauss(cfg.mean_rtt, cfg.rtt_jitter)
        )

        flow: list[dict] = []
        flow.append(
            self._packet(ts, client, server, client_port, port, "SYN", 40, "")
        )
        flow.append(
            self._packet(
                ts + rtt, server, client, port, client_port, "SYN-ACK", 40, ""
            )
        )
        t = ts + rtt * 1.5
        for i in range(cfg.packets_per_flow - 2):
            # P2P protocols tag every datagram (slide 10's Gigascope
            # query searches "within each TCP datagram").
            payload = keyword if is_p2p else ""
            direction_out = i % 2 == 0
            src, dst = (client, server) if direction_out else (server, client)
            sp, dp = (client_port, port) if direction_out else (port, client_port)
            flow.append(
                self._packet(
                    t,
                    src,
                    dst,
                    sp,
                    dp,
                    "DATA",
                    rng.randrange(200, 1500),
                    payload,
                )
            )
            t += rng.expovariate(cfg.packets_per_unit)
        return flow

    @staticmethod
    def _packet(
        ts: float,
        src_ip: int,
        dst_ip: int,
        src_port: int,
        dst_port: int,
        flags: str,
        length: int,
        payload: str,
    ) -> dict:
        return {
            "ts": ts,
            "src_ip": src_ip,
            "dst_ip": dst_ip,
            "src_port": src_port,
            "dst_port": dst_port,
            "protocol": 6,
            "length": length,
            "flags": flags,
            "payload": payload,
        }

    def generate(self, n: int) -> list[dict]:
        """Build flows until ``n`` packets exist; return them ts-sorted."""
        cfg = self.config
        rng = self._rng
        ts = 0.0
        out: list[dict] = []
        while len(out) < n:
            out.extend(self._new_flow(ts))
            ts += cfg.packets_per_flow * rng.expovariate(cfg.packets_per_unit)
        out.sort(key=lambda p: p["ts"])
        return out[:n]
