"""Auction workload: the canonical punctuated stream (slide 28).

"e.g., a stream of auctions": bids for an auction can arrive only while
the auction is open; when it closes, the application inserts a
punctuation asserting no more bids for that auction id will appear.
Punctuation-aware operators can then emit per-auction results and purge
state without waiting for end of stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.tuples import Field, Punctuation, Record, Schema

__all__ = ["AuctionConfig", "AuctionGenerator", "bid_schema"]


def bid_schema() -> Schema:
    """Schema of the bid stream: ts-ordered (auction, bidder, price)."""
    return Schema(
        [
            Field("ts", float, bounded=False),
            Field("auction", int, bounded=False),
            Field("bidder", int, bounded=True, domain=(0, 9999)),
            Field("price", float, bounded=False),
        ],
        ordering="ts",
        name="bids",
    )


@dataclass
class AuctionConfig:
    """Knobs of the synthetic auction stream."""

    n_auctions: int = 20
    n_bidders: int = 100
    bids_per_auction: int = 15
    open_auctions: int = 4
    mean_gap: float = 1.0
    start_price: float = 10.0
    seed: int = 42


class AuctionGenerator:
    """Overlapping auctions; each closes with a punctuation.

    Elements are returned fully stamped (records *and* punctuations), so
    the output plugs straight into a :class:`ListSource`.
    """

    def __init__(self, config: AuctionConfig | None = None) -> None:
        self.config = config or AuctionConfig()
        self._rng = random.Random(self.config.seed)
        self.schema = bid_schema()

    def elements(self) -> list[Record | Punctuation]:
        cfg = self.config
        rng = self._rng
        out: list[Record | Punctuation] = []
        ts = 0.0
        seq = 0
        # Active auction id -> (bids remaining, current price)
        active: dict[int, list] = {}
        next_auction = 0
        closed = 0
        while closed < cfg.n_auctions:
            while len(active) < cfg.open_auctions and next_auction < cfg.n_auctions:
                active[next_auction] = [cfg.bids_per_auction, cfg.start_price]
                next_auction += 1
            auction = rng.choice(sorted(active))
            state = active[auction]
            state[1] *= 1.0 + rng.uniform(0.01, 0.25)
            out.append(
                Record(
                    {
                        "ts": ts,
                        "auction": auction,
                        "bidder": rng.randrange(cfg.n_bidders),
                        "price": round(state[1], 2),
                    },
                    ts=ts,
                    seq=seq,
                )
            )
            seq += 1
            state[0] -= 1
            if state[0] <= 0:
                del active[auction]
                closed += 1
                out.append(
                    Punctuation.of({"auction": auction}, ts=ts, seq=seq)
                )
                seq += 1
            ts += rng.expovariate(1.0 / cfg.mean_gap)
        return out
