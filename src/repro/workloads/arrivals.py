"""Arrival processes.

The tutorial's resource experiments hinge on *when* tuples arrive:
uniform arrivals make FIFO scheduling optimal, bursty arrivals create
the backlogs Chain/Greedy exist for (slide 43), and overload triggers
shedding (slide 44).  All processes are seeded generators of
inter-arrival gaps, pluggable into
:class:`repro.core.stream.TimedSource`.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import StreamError

__all__ = [
    "uniform_gaps",
    "poisson_gaps",
    "bursty_gaps",
    "at_times",
    "take_gaps",
]


def uniform_gaps(rate: float) -> Callable[[], Iterator[float]]:
    """Constant-rate arrivals: one tuple every ``1/rate`` time units."""
    if rate <= 0:
        raise StreamError(f"rate must be > 0; got {rate}")
    gap = 1.0 / rate

    def factory() -> Iterator[float]:
        while True:
            yield gap

    return factory


def poisson_gaps(rate: float, seed: int = 42) -> Callable[[], Iterator[float]]:
    """Poisson arrivals: exponential inter-arrival gaps at ``rate``."""
    if rate <= 0:
        raise StreamError(f"rate must be > 0; got {rate}")

    def factory() -> Iterator[float]:
        rng = random.Random(seed)
        while True:
            yield rng.expovariate(rate)

    return factory


def bursty_gaps(
    burst_rate: float,
    burst_length: float,
    idle_length: float,
) -> Callable[[], Iterator[float]]:
    """Deterministic on/off arrivals.

    During an "on" phase of ``burst_length`` time units, tuples arrive
    at ``burst_rate``; then the source is silent for ``idle_length``.
    The slide-43 scenario is ``bursty_gaps(1.0, 5.0, 5.0)``: five
    arrivals one second apart, then a five-second pause (average rate
    0.5 tuples/sec).
    """
    if burst_rate <= 0 or burst_length <= 0 or idle_length < 0:
        raise StreamError("burst_rate/burst_length must be > 0, idle >= 0")
    gap = 1.0 / burst_rate
    per_burst = max(1, math.ceil(burst_length * burst_rate))

    def factory() -> Iterator[float]:
        first = True
        while True:
            for i in range(per_burst):
                if first and i == 0:
                    yield 0.0
                elif i == 0:
                    yield gap + idle_length
                else:
                    yield gap
            first = False

    return factory


def at_times(times: Sequence[float]) -> Callable[[], Iterator[float]]:
    """Explicit absolute arrival times (finite)."""
    ordered = list(times)
    for a, b in zip(ordered, ordered[1:]):
        if b < a:
            raise StreamError("arrival times must be non-decreasing")

    def factory() -> Iterator[float]:
        last = 0.0
        for t in ordered:
            yield t - last
            last = t

    return factory


def take_gaps(factory: Callable[[], Iterable[float]], n: int) -> list[float]:
    """Materialize the first ``n`` gaps of an arrival process."""
    out: list[float] = []
    for gap in factory():
        out.append(gap)
        if len(out) >= n:
            break
    return out
