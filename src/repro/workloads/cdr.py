"""Call-detail-record (CDR) workload.

Substitute for AT&T's long-distance call stream (slides 6-9): seeded
synthetic records with the Hancock ``callRec_t`` schema — origin,
dialed, connect time, duration, completion/international/toll-free
flags.  A configurable subset of origins are *fraudulent*: they emit
bursts of short international calls, the signature the Hancock fraud
program looks for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.tuples import Field, Schema
from repro.workloads.zipf import ZipfGenerator

__all__ = ["CDRConfig", "CDRGenerator", "cdr_schema"]


def cdr_schema() -> Schema:
    """The ``callRec_t`` schema of slide 7 as a stream schema."""
    return Schema(
        [
            Field("origin", int, bounded=False),
            Field("dialed", int, bounded=False),
            Field("connect_ts", float, bounded=False),
            Field("duration", float, bounded=False),
            Field("is_incomplete", bool, bounded=True, domain=(False, True)),
            Field("is_intl", bool, bounded=True, domain=(False, True)),
            Field("is_toll_free", bool, bounded=True, domain=(False, True)),
        ],
        ordering="connect_ts",
        name="calls",
    )


@dataclass
class CDRConfig:
    """Knobs of the synthetic call stream."""

    n_callers: int = 1000
    n_dialed: int = 5000
    calls_per_unit: float = 10.0
    fraud_fraction: float = 0.02
    fraud_burst: int = 12
    intl_rate: float = 0.08
    toll_free_rate: float = 0.15
    incomplete_rate: float = 0.05
    mean_duration: float = 180.0
    zipf_skew: float = 1.05
    seed: int = 42


class CDRGenerator:
    """Deterministic call-detail-record stream generator."""

    def __init__(self, config: CDRConfig | None = None) -> None:
        self.config = config or CDRConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self._caller_zipf = ZipfGenerator(
            cfg.n_callers, cfg.zipf_skew, seed=cfg.seed + 1
        )
        n_fraud = max(1, int(cfg.n_callers * cfg.fraud_fraction))
        # Fraudulent callers are drawn from the mid-tail so they are
        # neither heavy hitters nor one-off callers.
        self.fraud_callers = set(
            range(cfg.n_callers // 3, cfg.n_callers // 3 + n_fraud)
        )
        self.schema = cdr_schema()

    def records(self, n: int) -> Iterator[dict]:
        """Yield ``n`` call records ordered by ``connect_ts``."""
        cfg = self.config
        rng = self._rng
        ts = 0.0
        emitted = 0
        pending_fraud: list[dict] = []
        while emitted < n:
            if pending_fraud:
                call = pending_fraud.pop()
                call["connect_ts"] = ts
                ts += rng.expovariate(cfg.calls_per_unit)
                emitted += 1
                yield call
                continue
            origin = self._caller_zipf.sample()
            is_fraud_burst = (
                origin in self.fraud_callers and rng.random() < 0.3
            )
            call = self._one_call(origin, ts)
            ts += rng.expovariate(cfg.calls_per_unit)
            emitted += 1
            yield call
            if is_fraud_burst:
                # Queue a burst of short international calls.
                for _ in range(cfg.fraud_burst):
                    burst_call = self._one_call(origin, ts)
                    burst_call["is_intl"] = True
                    burst_call["duration"] = rng.uniform(5.0, 30.0)
                    pending_fraud.append(burst_call)

    def _one_call(self, origin: int, ts: float) -> dict:
        cfg = self.config
        rng = self._rng
        return {
            "origin": origin,
            "dialed": rng.randrange(cfg.n_dialed),
            "connect_ts": ts,
            "duration": rng.expovariate(1.0 / cfg.mean_duration),
            "is_incomplete": rng.random() < cfg.incomplete_rate,
            "is_intl": rng.random() < cfg.intl_rate,
            "is_toll_free": rng.random() < cfg.toll_free_rate,
        }

    def generate(self, n: int) -> list[dict]:
        return list(self.records(n))

    def generate_sorted_by_origin(self, n: int) -> list[dict]:
        """One day's block re-sorted by origin — Hancock's input layout.

        Hancock programs iterate ``over calls sortedby origin``
        (slide 8): the daily block is sorted by line before signature
        extraction.
        """
        block = self.generate(n)
        return sorted(block, key=lambda c: (c["origin"], c["connect_ts"]))
