"""Synthetic workload generators (the paper's data substitutes)."""

from repro.workloads.arrivals import (
    at_times,
    bursty_gaps,
    poisson_gaps,
    take_gaps,
    uniform_gaps,
)
from repro.workloads.auctions import AuctionConfig, AuctionGenerator, bid_schema
from repro.workloads.cdr import CDRConfig, CDRGenerator, cdr_schema
from repro.workloads.netflow import (
    P2P_KEYWORDS,
    P2P_PORTS,
    NetflowConfig,
    PacketGenerator,
    packet_schema,
)
from repro.workloads.sensors import SensorConfig, SensorGenerator, sensor_schema
from repro.workloads.zipf import PhaseShiftZipf, ZipfGenerator

__all__ = [
    "at_times",
    "bursty_gaps",
    "poisson_gaps",
    "take_gaps",
    "uniform_gaps",
    "AuctionConfig",
    "AuctionGenerator",
    "bid_schema",
    "CDRConfig",
    "CDRGenerator",
    "cdr_schema",
    "P2P_KEYWORDS",
    "P2P_PORTS",
    "NetflowConfig",
    "PacketGenerator",
    "packet_schema",
    "SensorConfig",
    "SensorGenerator",
    "sensor_schema",
    "ZipfGenerator",
    "PhaseShiftZipf",
]
