"""Automatic query decomposition across the two-level hierarchy (slide 54).

"How do we decompose a declarative (SQL) query?  Which sub-queries are
evaluated by which level?  Gigascope does some automatic decomposition."

The decomposer takes a GSQL aggregation query and splits it:

* **LFTA** — WHERE conjuncts built only from raw attributes, comparisons
  and arithmetic (cheap enough for the low level), plus the bounded
  partial-aggregation table;
* **HFTA** — conjuncts involving user-defined functions (expensive),
  the final aggregation merge, and HAVING.

The placement report records where each piece landed, and the resulting
pipeline is a runnable :class:`~repro.gigascope.two_level.TwoLevelAggregation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aggregates.spec import AggSpec
from repro.cql.ast import (
    BinOp,
    Column,
    Expr,
    FuncCall,
    SelectStmt,
    UnaryOp,
    split_conjuncts,
)
from repro.cql.parser import parse
from repro.cql.registry import Catalog
from repro.cql.semantic import (
    compile_expr,
    detect_tumbling_group,
    extract_aggregates,
    resolve_stmt,
)
from repro.errors import SemanticError
from repro.gigascope.two_level import TwoLevelAggregation
from repro.windows.spec import TumblingWindow

__all__ = [
    "Decomposition",
    "decompose",
    "AggregateSplit",
    "linearize_plan",
    "shared_pane_width",
    "split_chain_aggregate",
]


def _has_udf(expr: Expr) -> bool:
    if isinstance(expr, FuncCall):
        return True
    if isinstance(expr, BinOp):
        return _has_udf(expr.left) or _has_udf(expr.right)
    if isinstance(expr, UnaryOp):
        return _has_udf(expr.operand)
    return False


@dataclass
class Decomposition:
    """Outcome of decomposing one aggregation query."""

    pipeline: TwoLevelAggregation
    #: human-readable placement: piece description -> "lfta" | "hfta"
    placement: dict[str, str] = field(default_factory=dict)


def decompose(
    text: str,
    catalog: Catalog,
    max_groups: int,
    default_width: float = 60.0,
) -> Decomposition:
    """Split a single-stream GSQL aggregation into LFTA + HFTA parts."""
    stmt = parse(text)
    if len(stmt.relations) != 1:
        raise SemanticError("decomposition supports single-stream queries")
    resolved = resolve_stmt(stmt, catalog)
    resolver = resolved.resolver
    rel = stmt.relations[0]

    # Window: from a tumbling GROUP BY item, or the default width.
    window: TumblingWindow | None = None
    bucket_attr = "tb"
    group_by: list = []
    group_attrs: list[str] = []
    for item in stmt.group_by:
        tumbling = detect_tumbling_group(item, resolved.ordering_attrs)
        if tumbling is not None:
            window = tumbling
            bucket_attr = item.alias or "tb"
            continue
        if _has_udf(item.expr):
            raise SemanticError(
                "UDF grouping expressions cannot run at the LFTA; "
                "precompute them into the stream or group at the HFTA"
            )
        if isinstance(item.expr, Column):
            key = resolver.key_for(item.expr)
            name = item.alias or item.expr.name
            group_by.append((name, lambda r, k=key: r[k]))
        else:
            name = item.alias or repr(item.expr)
            group_by.append((name, compile_expr(item.expr, resolver, catalog)))
        group_attrs.append(name)
    if window is None:
        window = TumblingWindow(default_width)

    placement: dict[str, str] = {
        f"group window [{window.describe()}]": "lfta",
        "partial aggregation": "lfta",
        "final aggregation merge": "hfta",
    }

    # WHERE split: cheap conjuncts to the LFTA, UDF conjuncts to... the
    # LFTA cannot evaluate them; they must apply pre-aggregation, so a
    # UDF filter forces the conjunct to run at the HFTA *only if* the
    # query groups by the UDF's inputs; otherwise it is rejected.
    cheap = []
    for conj in split_conjuncts(stmt.where):
        if _has_udf(conj):
            raise SemanticError(
                "UDF predicates cannot run below the aggregation at the "
                "LFTA; rewrite the query to filter on raw attributes "
                "(slide 54: decomposition hooks are partly manual)"
            )
        cheap.append(conj)
        placement[f"filter {conj!r}"] = "lfta"

    lfta_filter = None
    if cheap:
        preds = [compile_expr(c, resolver, catalog) for c in cheap]
        lfta_filter = lambda r, _p=preds: all(p(r) for p in _p)  # noqa: E731

    # Aggregates: all registry functions are mergeable.
    agg_specs: list[AggSpec] = []
    seen: dict[FuncCall, str] = {}
    for proj in stmt.projections:
        for call in extract_aggregates(proj.expr):
            if call in seen:
                continue
            func = "count_distinct" if (
                call.name == "count" and call.distinct
            ) else call.name
            if call.args and not isinstance(call.args[0], Column) and not _is_star(call):
                input_fn = compile_expr(call.args[0], resolver, catalog)
            elif _is_star(call):
                input_fn = None
            else:
                key = resolver.key_for(call.args[0])  # type: ignore[arg-type]
                input_fn = lambda r, k=key: r[k]  # noqa: E731
            name = proj.alias if proj.alias and proj.expr == call else (
                f"{call.name}_{len(agg_specs)}"
            )
            seen[call] = name
            agg_specs.append(AggSpec(name, func, input_fn))

    having_fn = None
    if stmt.having is not None:
        from repro.cql.semantic import Resolver, replace_aggregates

        hidden = dict(seen)
        for call in extract_aggregates(stmt.having):
            if call not in hidden:
                name = f"_having_{len(hidden)}"
                func = "count_distinct" if (
                    call.name == "count" and call.distinct
                ) else call.name
                if _is_star(call):
                    input_fn = None
                else:
                    input_fn = compile_expr(call.args[0], resolver, catalog)
                agg_specs.append(AggSpec(name, func, input_fn))
                hidden[call] = name
        rewritten = replace_aggregates(stmt.having, hidden)
        out_attrs = set(group_attrs) | {bucket_attr} | set(hidden.values())
        out_resolver = Resolver({}, extra=out_attrs)
        having_fn = compile_expr(rewritten, out_resolver, catalog)
        placement["having"] = "hfta"

    pipeline = TwoLevelAggregation(
        input_name=rel.name,
        window=window,
        group_by=group_by,
        aggregates=agg_specs,
        max_groups=max_groups,
        group_attrs=group_attrs,
        having=having_fn,
        lfta_filter=lfta_filter,
        bucket_attr=bucket_attr,
    )
    return Decomposition(pipeline=pipeline, placement=placement)


def _is_star(call: FuncCall) -> bool:
    from repro.cql.ast import Star

    return not call.args or isinstance(call.args[0], Star)


# ---------------------------------------------------------------------------
# Plan-level decomposition (reused by the partition-parallel engine)
# ---------------------------------------------------------------------------
#
# The GSQL decomposer above splits a *query text* into LFTA + HFTA; the
# helpers below apply the same split to an already-built operator plan:
# a linear chain ending in an aggregate becomes a shard-local partial
# aggregate (the LFTA role, one per shard) plus a coordinator-side final
# merge (the HFTA role).  :mod:`repro.parallel` drives this to derive
# per-shard plans.


def linearize_plan(plan) -> list | None:
    """Return the operator chain of a single-input, single-output,
    linear unary plan, or ``None`` when the plan has any other shape
    (multiple inputs/outputs, fan-out, or multi-port operators)."""
    if len(plan.inputs) != 1 or len(plan.outputs) != 1:
        return None
    consumers = next(iter(plan.inputs.values()))
    if len(consumers) != 1:
        return None
    op, port = consumers[0]
    if port != 0 or op.arity != 1:
        return None
    chain = [op]
    while True:
        succ = plan.successors(op)
        if not succ:
            break
        if len(succ) != 1:
            return None
        op, port = succ[0]
        if port != 0 or op.arity != 1:
            return None
        chain.append(op)
    output_op = next(iter(plan.outputs.values()))
    if output_op is not chain[-1]:
        return None
    if len(chain) != len(plan.operators):
        return None
    return chain


def shared_pane_width(widths: list[float]) -> float | None:
    """Largest pane width that tiles every tumbling width in ``widths``.

    Panes (partial-aggregate sub-windows, the LFTA role generalized to
    multi-query sharing) can feed several tumbling aggregations at once
    when one pane width divides every query's window width exactly.
    Computes the greatest common divisor over the widths, restricted to
    *exact* float divisibility (``width % pane == 0.0``) so pane
    boundaries land precisely on every query's bucket boundaries —
    a pane that drifts off a bucket edge would split one input record's
    contribution across two buckets.  Returns ``None`` when any width is
    non-positive or no exact common divisor exists (e.g. float widths
    whose ratio is irrational in binary).
    """
    if not widths:
        return None
    for w in widths:
        if not (w > 0):
            return None
    pane = widths[0]
    for w in widths[1:]:
        a, b = pane, w
        # Euclid on floats: terminates because % strictly decreases.
        steps = 0
        while b:
            a, b = b, a % b
            steps += 1
            if steps > 64:
                return None
        pane = a
    if not (pane > 0):
        return None
    if pane < max(widths) * 1e-9:
        # Float-noise gcd (e.g. widths 1.0 and 0.3): a pane this many
        # orders of magnitude below the windows is rounding residue,
        # not a real common divisor, even if `%` lands on exact zeros.
        return None
    for w in widths:
        if w % pane != 0.0:
            return None
    return pane


@dataclass
class AggregateSplit:
    """A terminal aggregate split into shard-partial + coordinator-final.

    ``make_partial()`` builds a fresh shard-side (LFTA-role) operator;
    the remaining fields describe the coordinator-side (HFTA-role)
    merge: grouping names, aggregate specs, the HAVING predicate (which
    must run after the merge, exactly as in the GSQL decomposition), and
    the window/bucket metadata for tumbling aggregates (``window is
    None`` for the blocking form).
    """

    prefix: list
    terminal: object
    group_by: list
    group_names: list
    aggregates: list
    having: object
    window: object = None
    bucket_attr: str = "tb"
    ts_attr: str = "ts"

    def make_partial(self, name: str = "shard_partial"):
        from repro.operators.partial_aggregate import BucketOf, GroupPartial

        if self.window is None:
            return GroupPartial(self.group_by, self.aggregates, name=name)
        # Tumbling terminals keep shard state keyed (bucket, group): the
        # coordinator decides when each bucket closes globally (a shard
        # only sees its own slice of the watermark), so the shard ships
        # states at flush and reports per-epoch progress via ``max_ts``.
        bucket_key = (self.bucket_attr, BucketOf(self.window))
        return GroupPartial(
            [bucket_key, *self.group_by], self.aggregates, name=name
        )


def split_chain_aggregate(chain: list) -> AggregateSplit | None:
    """Split a linear chain ending in an aggregate for shard execution.

    Returns ``None`` when the terminal operator is not a blocking
    :class:`~repro.operators.aggregate.Aggregate` or a tumbling
    :class:`~repro.operators.aggregate.WindowedAggregate` — those are
    the two forms whose output is a pure function of merged partial
    states, which is what makes the partial/final split exact.
    """
    from repro.operators.aggregate import Aggregate, WindowedAggregate

    if not chain:
        return None
    terminal = chain[-1]
    if isinstance(terminal, Aggregate):
        return AggregateSplit(
            prefix=list(chain[:-1]),
            terminal=terminal,
            group_by=list(terminal.group_by),
            group_names=[name for name, _fn in terminal.group_by],
            aggregates=list(terminal.aggregates),
            having=terminal.having,
        )
    if isinstance(terminal, WindowedAggregate) and isinstance(
        terminal.window, TumblingWindow
    ):
        return AggregateSplit(
            prefix=list(chain[:-1]),
            terminal=terminal,
            group_by=list(terminal.group_by),
            group_names=[name for name, _fn in terminal.group_by],
            aggregates=list(terminal.aggregates),
            having=terminal.having,
            window=terminal.window,
            bucket_attr=terminal.bucket_attr,
            ts_attr=terminal.ts_attr,
        )
    return None
