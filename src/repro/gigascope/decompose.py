"""Automatic query decomposition across the two-level hierarchy (slide 54).

"How do we decompose a declarative (SQL) query?  Which sub-queries are
evaluated by which level?  Gigascope does some automatic decomposition."

The decomposer takes a GSQL aggregation query and splits it:

* **LFTA** — WHERE conjuncts built only from raw attributes, comparisons
  and arithmetic (cheap enough for the low level), plus the bounded
  partial-aggregation table;
* **HFTA** — conjuncts involving user-defined functions (expensive),
  the final aggregation merge, and HAVING.

The placement report records where each piece landed, and the resulting
pipeline is a runnable :class:`~repro.gigascope.two_level.TwoLevelAggregation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aggregates.spec import AggSpec
from repro.cql.ast import (
    BinOp,
    Column,
    Expr,
    FuncCall,
    SelectStmt,
    UnaryOp,
    split_conjuncts,
)
from repro.cql.parser import parse
from repro.cql.registry import Catalog
from repro.cql.semantic import (
    compile_expr,
    detect_tumbling_group,
    extract_aggregates,
    resolve_stmt,
)
from repro.errors import SemanticError
from repro.gigascope.two_level import TwoLevelAggregation
from repro.windows.spec import TumblingWindow

__all__ = ["Decomposition", "decompose"]


def _has_udf(expr: Expr) -> bool:
    if isinstance(expr, FuncCall):
        return True
    if isinstance(expr, BinOp):
        return _has_udf(expr.left) or _has_udf(expr.right)
    if isinstance(expr, UnaryOp):
        return _has_udf(expr.operand)
    return False


@dataclass
class Decomposition:
    """Outcome of decomposing one aggregation query."""

    pipeline: TwoLevelAggregation
    #: human-readable placement: piece description -> "lfta" | "hfta"
    placement: dict[str, str] = field(default_factory=dict)


def decompose(
    text: str,
    catalog: Catalog,
    max_groups: int,
    default_width: float = 60.0,
) -> Decomposition:
    """Split a single-stream GSQL aggregation into LFTA + HFTA parts."""
    stmt = parse(text)
    if len(stmt.relations) != 1:
        raise SemanticError("decomposition supports single-stream queries")
    resolved = resolve_stmt(stmt, catalog)
    resolver = resolved.resolver
    rel = stmt.relations[0]

    # Window: from a tumbling GROUP BY item, or the default width.
    window: TumblingWindow | None = None
    bucket_attr = "tb"
    group_by: list = []
    group_attrs: list[str] = []
    for item in stmt.group_by:
        tumbling = detect_tumbling_group(item, resolved.ordering_attrs)
        if tumbling is not None:
            window = tumbling
            bucket_attr = item.alias or "tb"
            continue
        if _has_udf(item.expr):
            raise SemanticError(
                "UDF grouping expressions cannot run at the LFTA; "
                "precompute them into the stream or group at the HFTA"
            )
        if isinstance(item.expr, Column):
            key = resolver.key_for(item.expr)
            name = item.alias or item.expr.name
            group_by.append((name, lambda r, k=key: r[k]))
        else:
            name = item.alias or repr(item.expr)
            group_by.append((name, compile_expr(item.expr, resolver, catalog)))
        group_attrs.append(name)
    if window is None:
        window = TumblingWindow(default_width)

    placement: dict[str, str] = {
        f"group window [{window.describe()}]": "lfta",
        "partial aggregation": "lfta",
        "final aggregation merge": "hfta",
    }

    # WHERE split: cheap conjuncts to the LFTA, UDF conjuncts to... the
    # LFTA cannot evaluate them; they must apply pre-aggregation, so a
    # UDF filter forces the conjunct to run at the HFTA *only if* the
    # query groups by the UDF's inputs; otherwise it is rejected.
    cheap = []
    for conj in split_conjuncts(stmt.where):
        if _has_udf(conj):
            raise SemanticError(
                "UDF predicates cannot run below the aggregation at the "
                "LFTA; rewrite the query to filter on raw attributes "
                "(slide 54: decomposition hooks are partly manual)"
            )
        cheap.append(conj)
        placement[f"filter {conj!r}"] = "lfta"

    lfta_filter = None
    if cheap:
        preds = [compile_expr(c, resolver, catalog) for c in cheap]
        lfta_filter = lambda r, _p=preds: all(p(r) for p in _p)  # noqa: E731

    # Aggregates: all registry functions are mergeable.
    agg_specs: list[AggSpec] = []
    seen: dict[FuncCall, str] = {}
    for proj in stmt.projections:
        for call in extract_aggregates(proj.expr):
            if call in seen:
                continue
            func = "count_distinct" if (
                call.name == "count" and call.distinct
            ) else call.name
            if call.args and not isinstance(call.args[0], Column) and not _is_star(call):
                input_fn = compile_expr(call.args[0], resolver, catalog)
            elif _is_star(call):
                input_fn = None
            else:
                key = resolver.key_for(call.args[0])  # type: ignore[arg-type]
                input_fn = lambda r, k=key: r[k]  # noqa: E731
            name = proj.alias if proj.alias and proj.expr == call else (
                f"{call.name}_{len(agg_specs)}"
            )
            seen[call] = name
            agg_specs.append(AggSpec(name, func, input_fn))

    having_fn = None
    if stmt.having is not None:
        from repro.cql.semantic import Resolver, replace_aggregates

        hidden = dict(seen)
        for call in extract_aggregates(stmt.having):
            if call not in hidden:
                name = f"_having_{len(hidden)}"
                func = "count_distinct" if (
                    call.name == "count" and call.distinct
                ) else call.name
                if _is_star(call):
                    input_fn = None
                else:
                    input_fn = compile_expr(call.args[0], resolver, catalog)
                agg_specs.append(AggSpec(name, func, input_fn))
                hidden[call] = name
        rewritten = replace_aggregates(stmt.having, hidden)
        out_attrs = set(group_attrs) | {bucket_attr} | set(hidden.values())
        out_resolver = Resolver({}, extra=out_attrs)
        having_fn = compile_expr(rewritten, out_resolver, catalog)
        placement["having"] = "hfta"

    pipeline = TwoLevelAggregation(
        input_name=rel.name,
        window=window,
        group_by=group_by,
        aggregates=agg_specs,
        max_groups=max_groups,
        group_attrs=group_attrs,
        having=having_fn,
        lfta_filter=lfta_filter,
        bucket_attr=bucket_attr,
    )
    return Decomposition(pipeline=pipeline, placement=placement)


def _is_star(call: FuncCall) -> bool:
    from repro.cql.ast import Star

    return not call.args or isinstance(call.args[0], Star)
