"""Gigascope protocol schemas (slide 12).

GSQL queries "get raw data from low level schemas defined at packet
level", each protocol layer *inheriting* the fields of the layer below
(``PROTOCOL IPv4(IP)``).  :class:`Protocol` models that hierarchy;
:func:`to_stream_schema` flattens a protocol into the engine's
:class:`~repro.core.tuples.Schema`, and :func:`gigascope_catalog`
registers the standard layer-2/3/4 protocols plus the payload-matching
UDF used by the P2P query (slide 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tuples import Field, Schema
from repro.cql.registry import Catalog
from repro.errors import SchemaError

__all__ = [
    "Protocol",
    "to_stream_schema",
    "ETH",
    "IP",
    "IPV4",
    "TCP",
    "UDP",
    "gigascope_catalog",
]


@dataclass(frozen=True)
class Protocol:
    """A packet-level protocol schema with single inheritance."""

    name: str
    fields: tuple[Field, ...]
    parent: "Protocol | None" = None

    def all_fields(self) -> tuple[Field, ...]:
        """Own fields appended to the inherited ones (low layer first)."""
        inherited = self.parent.all_fields() if self.parent else ()
        names = {f.name for f in inherited}
        own = tuple(f for f in self.fields if f.name not in names)
        clash = [f.name for f in self.fields if f.name in names]
        if clash:
            raise SchemaError(
                f"protocol {self.name} redefines inherited fields {clash}"
            )
        return inherited + own

    def lineage(self) -> list[str]:
        chain = [self.name]
        p = self.parent
        while p is not None:
            chain.append(p.name)
            p = p.parent
        return list(reversed(chain))


def to_stream_schema(protocol: Protocol, ordering: str = "ts") -> Schema:
    """Flatten a protocol into an engine schema ordered by ``ordering``."""
    fields = protocol.all_fields()
    names = {f.name for f in fields}
    if ordering not in names:
        fields = (Field(ordering, float),) + fields
    return Schema(fields, ordering=ordering, name=protocol.name)


ETH = Protocol(
    "ETH",
    (
        Field("src_mac", int),
        Field("dst_mac", int),
        Field("ethertype", int, bounded=True, domain=(0, 65535)),
    ),
)

IP = Protocol(
    "IP",
    (Field("ipversion", int, bounded=True, domain=(4, 6)),),
    parent=ETH,
)

IPV4 = Protocol(
    "IPv4",
    (
        Field("ts", float),
        Field("src_ip", int),
        Field("dst_ip", int),
        Field("hdr_length", int, bounded=True, domain=(20, 60)),
        Field("total_length", int, bounded=True, domain=(40, 65535)),
        Field("length", int, bounded=True, domain=(40, 65535)),
        Field("ttl", int, bounded=True, domain=(0, 255)),
        Field("protocol", int, bounded=True, domain=(0, 255)),
    ),
    parent=IP,
)

TCP = Protocol(
    "TCP",
    (
        Field("src_port", int, bounded=True, domain=(0, 65535)),
        Field("dst_port", int, bounded=True, domain=(0, 65535)),
        Field("flags", str, bounded=True,
              domain=("SYN", "SYN-ACK", "ACK", "DATA", "FIN")),
        Field("payload", str),
    ),
    parent=IPV4,
)

UDP = Protocol(
    "UDP",
    (
        Field("src_port", int, bounded=True, domain=(0, 65535)),
        Field("dst_port", int, bounded=True, domain=(0, 65535)),
    ),
    parent=IPV4,
)


def gigascope_catalog() -> Catalog:
    """Catalog with the standard packet streams and GSQL helper UDFs."""
    catalog = Catalog()
    catalog.register_stream("IPv4", to_stream_schema(IPV4))
    catalog.register_stream("TCP", to_stream_schema(TCP))
    catalog.register_stream("UDP", to_stream_schema(UDP))
    # Slide 10: "search for P2P related keywords within each TCP
    # datagram" — exposed as a scalar UDF over the payload.
    from repro.workloads.netflow import P2P_KEYWORDS, P2P_PORTS

    catalog.register_function(
        "matches_p2p_keyword",
        lambda payload: any(k in payload for k in P2P_KEYWORDS),
    )
    catalog.register_function(
        "is_p2p_port", lambda port: port in P2P_PORTS
    )
    return catalog
