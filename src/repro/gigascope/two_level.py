"""The Gigascope two-level LFTA/HFTA execution hierarchy (slides 37, 48, 54).

Gigascope splits each query into a **low-level** component (LFTA) that
runs close to the wire with tiny memory — cheap filters and a *bounded*
partial-aggregation table — and a **high-level** component (HFTA) on the
host that completes the computation.  The payoff is *data reduction*:
the LFTA ships (partial) aggregate rows, not packets.

:class:`TwoLevelAggregation` wires
:class:`~repro.operators.partial_aggregate.PartialAggregate` (LFTA) to
:class:`~repro.operators.partial_aggregate.FinalAggregate` (HFTA) and
measures the tuples crossing the boundary, the statistic experiments E6
and E7 report.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.aggregates.spec import AggSpec
from repro.core.graph import Plan
from repro.core.stream import Source
from repro.core.engine import Engine, RunResult
from repro.core.tuples import Record
from repro.operators.base import Element, UnaryOperator
from repro.operators.partial_aggregate import FinalAggregate, PartialAggregate
from repro.operators.select import Select
from repro.windows.spec import TumblingWindow

__all__ = ["BoundaryTap", "TwoLevelAggregation"]


class BoundaryTap(UnaryOperator):
    """Pass-through that counts traffic crossing the LFTA/HFTA boundary."""

    def __init__(self, name: str = "boundary") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)
        self.records = 0
        self.punctuations = 0

    def on_record(self, record: Record, port: int) -> list[Element]:
        self.records += 1
        return [record]

    def on_punctuation(self, punct, port: int) -> list[Element]:
        self.punctuations += 1
        return [punct]

    def reset(self) -> None:
        self.records = 0
        self.punctuations = 0


class TwoLevelAggregation:
    """A complete LFTA → HFTA aggregation pipeline over one stream.

    Parameters
    ----------
    input_name:
        The raw stream's name.
    window:
        Tumbling window (the ``time/60`` bucket of slide 37).
    group_by:
        Grouping attributes (or ``(name, fn)`` pairs).
    aggregates:
        Aggregate columns; must be mergeable (all registry functions are).
    max_groups:
        LFTA group-table bound — the low level's defining constraint
        ("bounded number of groups maintained at low level").
    lfta_filter:
        Optional cheap predicate evaluated at the LFTA before
        aggregation (filters are the other low-level data reducer).
    """

    def __init__(
        self,
        input_name: str,
        window: TumblingWindow,
        group_by: Sequence,
        aggregates: Sequence[AggSpec],
        max_groups: int,
        group_attrs: Sequence[str] | None = None,
        having: Callable[[Record], bool] | None = None,
        lfta_filter: Callable[[Record], bool] | None = None,
        bucket_attr: str = "tb",
    ) -> None:
        self.window = window
        self.plan = Plan(name="two_level")
        self.plan.add_input(input_name)
        upstream: object = input_name
        if lfta_filter is not None:
            upstream = self.plan.add(
                Select(lfta_filter, name="lfta_filter"), upstream=[upstream]
            )
        self.lfta = PartialAggregate(
            window,
            group_by,
            aggregates,
            max_groups=max_groups,
            bucket_attr=bucket_attr,
            name="lfta",
        )
        self.plan.add(self.lfta, upstream=[upstream])
        self.boundary = BoundaryTap()
        self.plan.add(self.boundary, upstream=[self.lfta])
        if group_attrs is None:
            group_attrs = [
                item if isinstance(item, str) else item[0] for item in group_by
            ]
        self.hfta = FinalAggregate(
            group_attrs,
            aggregates,
            having=having,
            bucket_attr=bucket_attr,
            name="hfta",
        )
        self.plan.add(self.hfta, upstream=[self.boundary])
        self.plan.mark_output(self.hfta, "out")

    def run(self, source: Source) -> RunResult:
        engine = Engine(self.plan)
        return engine.run([source])

    @property
    def shipped_rows(self) -> int:
        """Rows the LFTA shipped to the host (data-reduction metric)."""
        return self.boundary.records

    @property
    def evictions(self) -> int:
        """Early evictions forced by the bounded LFTA table."""
        return self.lfta.evictions
