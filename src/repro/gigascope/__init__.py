"""Gigascope substrate: packet schemas and the two-level hierarchy."""

from repro.gigascope.decompose import Decomposition, decompose
from repro.gigascope.schemas import (
    ETH,
    IP,
    IPV4,
    TCP,
    UDP,
    Protocol,
    gigascope_catalog,
    to_stream_schema,
)
from repro.gigascope.two_level import BoundaryTap, TwoLevelAggregation

__all__ = [
    "Decomposition",
    "decompose",
    "ETH",
    "IP",
    "IPV4",
    "TCP",
    "UDP",
    "Protocol",
    "gigascope_catalog",
    "to_stream_schema",
    "BoundaryTap",
    "TwoLevelAggregation",
]
