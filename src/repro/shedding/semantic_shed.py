"""Semantic load shedding: drop the least useful tuples first.

Semantic shedding (slide 44, [TCZ+03]) exploits knowledge of the
standing queries: if downstream only reports groups with high counts, or
only tuples in some value range, tuples outside that region can be
dropped with *no* effect on the reported answer.  The policy here ranks
tuples by a user-supplied utility and sheds lowest-utility tuples until
the target drop rate is met (tracked with a running admission budget so
the realized rate converges to the target on any input order).
"""

from __future__ import annotations

from typing import Callable

from repro.core.tuples import Record
from repro.errors import SheddingError
from repro.shedding.base import Shedder

__all__ = ["SemanticShedder", "PredicateShedder"]


class PredicateShedder(Shedder):
    """Shed exactly the tuples failing ``keep_if`` (pure semantic drop)."""

    def __init__(self, keep_if: Callable[[Record], bool], name: str = "predicate") -> None:
        super().__init__(name=name)
        self.keep_if = keep_if

    def admit(self, record: Record, now: float = 0.0, memory: float = 0.0) -> bool:
        return bool(self.keep_if(record))


class SemanticShedder(Shedder):
    """Shed up to ``drop_rate`` of tuples, lowest ``utility`` first.

    ``utility(record) -> float``; tuples with utility >= ``threshold``
    are always admitted.  Among low-utility tuples, a deficit counter
    sheds just enough to track the target drop rate, so the shedder
    degrades gracefully when low-utility tuples are scarce.
    """

    def __init__(
        self,
        utility: Callable[[Record], float],
        drop_rate: float,
        threshold: float = 0.5,
    ) -> None:
        super().__init__(name=f"semantic({drop_rate})")
        if not 0.0 <= drop_rate <= 1.0:
            raise SheddingError(f"drop_rate must be in [0,1]; got {drop_rate}")
        self.utility = utility
        self.drop_rate = drop_rate
        self.threshold = threshold
        self._seen = 0

    def admit(self, record: Record, now: float = 0.0, memory: float = 0.0) -> bool:
        self._seen += 1
        if self.utility(record) >= self.threshold:
            return True
        target_drops = self.drop_rate * self._seen
        return self.dropped >= target_drops

    def reset(self) -> None:
        super().reset()
        self._seen = 0
