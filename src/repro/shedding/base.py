"""Load shedding (slide 44).

When the input rate exceeds system capacity, a stream manager sheds
tuples.  A :class:`Shedder` is an admission policy — callable as
``shedder(record, now, memory) -> bool`` so it plugs directly into
:class:`repro.core.simulation.SimConfig.shedder` — plus bookkeeping of
what was kept and dropped so experiments can quantify the effect on
answers.

Slide 44 distinguishes **random** shedding (drop a coin-flip fraction;
aggregates can be rescaled, results are unbiased but noisy) from
**semantic** shedding (drop the tuples that matter least to the standing
queries; biased for the dropped portion, accurate for what the queries
care about).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.tuples import Record

__all__ = ["Shedder", "shed_stream"]


class Shedder:
    """Base admission policy."""

    def __init__(self, name: str = "shedder") -> None:
        self.name = name
        self.admitted = 0
        self.dropped = 0

    def admit(self, record: Record, now: float = 0.0, memory: float = 0.0) -> bool:
        raise NotImplementedError

    def __call__(self, record: Record, now: float = 0.0, memory: float = 0.0) -> bool:
        keep = self.admit(record, now, memory)
        if keep:
            self.admitted += 1
        else:
            self.dropped += 1
        return keep

    @property
    def keep_rate(self) -> float:
        total = self.admitted + self.dropped
        if total == 0:
            return 1.0
        return self.admitted / total

    def reset(self) -> None:
        self.admitted = 0
        self.dropped = 0


def shed_stream(
    records: Iterable[Record], shedder: Shedder
) -> list[Record]:
    """Apply ``shedder`` to a finite stream; return the admitted records."""
    return [r for r in records if shedder(r)]
