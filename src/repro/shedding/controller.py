"""Feedback load-shedding controller.

"Introducing load shedding in a data stream manager is a challenging
problem" (slide 44): the manager must decide *when* to shed, not just
how.  :class:`LoadController` watches the memory the simulator reports
at admission time and ramps a delegate shedder's drop rate linearly
between a low and a high watermark — no shedding below the low mark,
full ``max_drop_rate`` at the high mark.
"""

from __future__ import annotations

import random
from collections import deque

from repro.core.tuples import Record
from repro.errors import SheddingError
from repro.shedding.base import Shedder

__all__ = ["LoadController"]


class LoadController(Shedder):
    """Memory-watermark-driven random shedding.

    ``trace_limit`` bounds the diagnostics trace: the controller sits on
    the per-record admission path of arbitrarily long runs, so an
    unbounded trace list is a memory leak — exactly the overload the
    controller exists to prevent.  The trace is a ring buffer keeping
    the most recent ``trace_limit`` entries.
    """

    def __init__(
        self,
        low_watermark: float,
        high_watermark: float,
        max_drop_rate: float = 1.0,
        seed: int = 42,
        trace_limit: int = 4096,
    ) -> None:
        super().__init__(name="controller")
        if high_watermark <= low_watermark:
            raise SheddingError(
                f"need high > low watermark; got {low_watermark}, "
                f"{high_watermark}"
            )
        if not 0.0 <= max_drop_rate <= 1.0:
            raise SheddingError(
                f"max_drop_rate must be in [0,1]; got {max_drop_rate}"
            )
        if trace_limit < 1:
            raise SheddingError(
                f"trace_limit must be >= 1; got {trace_limit}"
            )
        self.low = low_watermark
        self.high = high_watermark
        self.max_drop_rate = max_drop_rate
        self._rng = random.Random(seed)
        #: bounded time series of (now, applied drop rate) — most recent
        #: ``trace_limit`` admissions
        self.trace: deque[tuple[float, float]] = deque(maxlen=trace_limit)

    def set_watermarks(self, low: float, high: float) -> None:
        """Retune the shedding ramp at runtime.

        The adaptive controller calls this at punctuation boundaries to
        convert a latency target into pressure-unit watermarks using the
        *measured* per-record cost (a cheap plan serves a longer backlog
        within the same latency budget).  Validation matches the
        constructor; admission/drop counters and the trace are kept —
        retuning is a policy change, not a new run.
        """
        if high <= low:
            raise SheddingError(
                f"need high > low watermark; got {low}, {high}"
            )
        self.low = low
        self.high = high

    def current_drop_rate(self, memory: float) -> float:
        if memory <= self.low:
            return 0.0
        if memory >= self.high:
            return self.max_drop_rate
        frac = (memory - self.low) / (self.high - self.low)
        return frac * self.max_drop_rate

    def admit(self, record: Record, now: float = 0.0, memory: float = 0.0) -> bool:
        rate = self.current_drop_rate(memory)
        self.trace.append((now, rate))
        return self._rng.random() >= rate

    def reset(self) -> None:
        super().reset()
        self.trace.clear()
