"""Load-shedding policies (slide 44)."""

from repro.shedding.base import Shedder, shed_stream
from repro.shedding.controller import LoadController
from repro.shedding.random_shed import RandomShedder
from repro.shedding.semantic_shed import PredicateShedder, SemanticShedder

__all__ = [
    "Shedder",
    "shed_stream",
    "LoadController",
    "RandomShedder",
    "PredicateShedder",
    "SemanticShedder",
]
