"""Random load shedding: drop a fixed fraction of tuples."""

from __future__ import annotations

import random

from repro.core.tuples import Record
from repro.errors import SheddingError
from repro.shedding.base import Shedder

__all__ = ["RandomShedder"]


class RandomShedder(Shedder):
    """Admit each tuple independently with probability ``1 - drop_rate``.

    Downstream aggregates over the admitted tuples can be rescaled by
    ``1 / keep_rate`` to obtain unbiased estimates — slide 44's "random
    load shedding affects queries and their answers" in its mildest form.
    """

    def __init__(self, drop_rate: float, seed: int = 42) -> None:
        super().__init__(name=f"random({drop_rate})")
        if not 0.0 <= drop_rate <= 1.0:
            raise SheddingError(f"drop_rate must be in [0,1]; got {drop_rate}")
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)

    def admit(self, record: Record, now: float = 0.0, memory: float = 0.0) -> bool:
        return self._rng.random() >= self.drop_rate
