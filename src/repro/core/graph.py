"""Query plans as operator DAGs.

A :class:`Plan` wires named external inputs through operators to named
outputs.  The same plan object is executed exactly by the push engine
(:mod:`repro.core.engine`) and approximately — under resource limits —
by the simulator (:mod:`repro.core.simulation`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import PlanError
from repro.operators.base import Operator

__all__ = ["Plan"]


class Plan:
    """An operator DAG with named inputs and outputs."""

    def __init__(self, name: str = "plan") -> None:
        self.name = name
        self.inputs: dict[str, list[tuple[Operator, int]]] = {}
        self.operators: list[Operator] = []
        self._succ: dict[int, list[tuple[Operator, int]]] = {}
        self._in_degree: dict[int, int] = {}
        self.outputs: dict[str, Operator] = {}

    # -- construction -----------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare an external input stream by name."""
        if name in self.inputs:
            raise PlanError(f"duplicate input {name!r}")
        self.inputs[name] = []
        return name

    def add(
        self,
        operator: Operator,
        upstream: Sequence[str | Operator | tuple[str | Operator, int]] = (),
    ) -> Operator:
        """Add ``operator`` and connect ``upstream`` entries to its ports.

        ``upstream`` lists the producer feeding each input port in port
        order; a producer is either an input name, an operator already in
        the plan, or an explicit ``(producer, port)`` pair.
        """
        if operator in self.operators:
            raise PlanError(f"operator {operator.name!r} already in plan")
        self.operators.append(operator)
        self._succ.setdefault(id(operator), [])
        self._in_degree[id(operator)] = 0
        for port, producer in enumerate(upstream):
            if isinstance(producer, tuple):
                producer, explicit_port = producer
                self.connect(producer, operator, explicit_port)
            else:
                self.connect(producer, operator, port)
        return operator

    def connect(
        self, producer: str | Operator, consumer: Operator, port: int = 0
    ) -> None:
        """Wire ``producer`` (input name or operator) into ``consumer``."""
        if consumer not in self.operators:
            raise PlanError(f"consumer {consumer.name!r} not added to plan")
        if port < 0 or port >= consumer.arity:
            raise PlanError(
                f"operator {consumer.name!r} has arity {consumer.arity}; "
                f"cannot connect port {port}"
            )
        if isinstance(producer, str):
            if producer not in self.inputs:
                raise PlanError(f"unknown input {producer!r}")
            self.inputs[producer].append((consumer, port))
        else:
            if producer not in self.operators:
                raise PlanError(f"producer {producer.name!r} not added to plan")
            self._succ[id(producer)].append((consumer, port))
        self._in_degree[id(consumer)] += 1

    def mark_output(self, operator: Operator, name: str = "out") -> None:
        """Expose ``operator``'s output stream under ``name``."""
        if operator not in self.operators:
            raise PlanError(f"operator {operator.name!r} not in plan")
        if name in self.outputs:
            raise PlanError(f"duplicate output name {name!r}")
        self.outputs[name] = operator

    # -- introspection ---------------------------------------------------

    def successors(self, operator: Operator) -> list[tuple[Operator, int]]:
        return list(self._succ.get(id(operator), []))

    def predecessors(self, operator: Operator) -> list[tuple["Operator | str", int]]:
        """Producers feeding ``operator``, as ``(producer, port)`` pairs.

        A producer is either an upstream operator or an external input
        name (a ``str``).  This is the reverse adjacency the feedback
        channel walks when propagating advice against the dataflow.
        """
        preds: list[tuple[Operator | str, int]] = []
        for input_name, consumers in self.inputs.items():
            for consumer, port in consumers:
                if consumer is operator:
                    preds.append((input_name, port))
        for producer in self.operators:
            for consumer, port in self._succ.get(id(producer), []):
                if consumer is operator:
                    preds.append((producer, port))
        return preds

    def output_names_for(self, operator: Operator) -> list[str]:
        return [n for n, op in self.outputs.items() if op is operator]

    def topological_order(self) -> list[Operator]:
        """Operators in a valid dataflow order; raises on cycles."""
        in_deg = dict(self._in_degree)
        # External inputs satisfy one incoming edge per connection.
        for consumers in self.inputs.values():
            for consumer, _port in consumers:
                in_deg[id(consumer)] -= 1
        by_id = {id(op): op for op in self.operators}
        ready = [op for op in self.operators if in_deg[id(op)] == 0]
        order: list[Operator] = []
        while ready:
            op = ready.pop(0)
            order.append(op)
            for consumer, _port in self._succ[id(op)]:
                in_deg[id(consumer)] -= 1
                if in_deg[id(consumer)] == 0:
                    ready.append(consumer)
        if len(order) != len(self.operators):
            stuck = [
                by_id[i].name for i, d in in_deg.items() if d > 0 and i in by_id
            ]
            raise PlanError(f"plan has a cycle or unconnected ports: {stuck}")
        return order

    def validate(self) -> None:
        """Check arity satisfaction and acyclicity."""
        connected: dict[int, int] = {id(op): 0 for op in self.operators}
        for consumers in self.inputs.values():
            for consumer, _port in consumers:
                connected[id(consumer)] += 1
        for succ in self._succ.values():
            for consumer, _port in succ:
                connected[id(consumer)] += 1
        for op in self.operators:
            if connected[id(op)] != op.arity:
                raise PlanError(
                    f"operator {op.name!r} has arity {op.arity} but "
                    f"{connected[id(op)]} connected inputs"
                )
        if not self.outputs:
            raise PlanError("plan declares no outputs")
        self.topological_order()

    def ensure_unique_names(self) -> None:
        """Raise when two operators share a name.

        Duplicate names are tolerated for single-query plans (operators
        are identified by object), but anything keyed by name — metrics,
        traces, checkpoints, live migration — silently merges homonyms.
        Multi-query DAG builders call this after namespacing.
        """
        seen: dict[str, int] = {}
        for op in self.operators:
            seen[op.name] = seen.get(op.name, 0) + 1
        dupes = sorted(name for name, n in seen.items() if n > 1)
        if dupes:
            raise PlanError(
                f"plan has colliding operator names: {dupes}; metrics "
                f"and migration are keyed by name, so shared DAGs must "
                f"namespace per-query operators"
            )

    def reset(self) -> None:
        """Reset the state of every operator for a fresh run."""
        for op in self.operators:
            op.reset()

    def __repr__(self) -> str:
        return (
            f"Plan({self.name!r}, inputs={list(self.inputs)}, "
            f"operators={[op.name for op in self.operators]}, "
            f"outputs={list(self.outputs)})"
        )


def linear_plan(
    input_name: str, operators: Iterable[Operator], output_name: str = "out"
) -> Plan:
    """Build a plan that chains ``operators`` from one input to one output."""
    plan = Plan()
    plan.add_input(input_name)
    upstream: str | Operator = input_name
    last: Operator | None = None
    for op in operators:
        plan.add(op, upstream=[upstream])
        upstream = op
        last = op
    if last is None:
        raise PlanError("linear_plan requires at least one operator")
    plan.mark_output(last, output_name)
    return plan
