"""Core stream model and runtime: tuples, streams, plans, engines."""

from repro.core.engine import Engine, RunResult, run_plan
from repro.core.graph import Plan, linear_plan
from repro.core.metrics import MetricsRegistry, OperatorMetrics, TimeSeries
from repro.core.queues import OpQueue, QueueStats
from repro.core.simulation import SimConfig, SimResult, Simulation
from repro.core.stream import (
    CallbackSource,
    ListSource,
    Source,
    StreamDecl,
    TimedSource,
    merge_sources,
    records_from_dicts,
)
from repro.core.time import VirtualClock
from repro.core.tuples import (
    WILDCARD,
    Field,
    Punctuation,
    Record,
    Schema,
    element_size,
    is_punctuation,
    is_record,
)

__all__ = [
    "Engine",
    "RunResult",
    "run_plan",
    "Plan",
    "linear_plan",
    "MetricsRegistry",
    "OperatorMetrics",
    "TimeSeries",
    "OpQueue",
    "QueueStats",
    "SimConfig",
    "SimResult",
    "Simulation",
    "CallbackSource",
    "ListSource",
    "Source",
    "StreamDecl",
    "TimedSource",
    "merge_sources",
    "records_from_dicts",
    "VirtualClock",
    "WILDCARD",
    "Field",
    "Punctuation",
    "Record",
    "Schema",
    "element_size",
    "is_punctuation",
    "is_record",
]
