"""Stream declarations and sources.

A :class:`StreamDecl` is catalog metadata: a name, a schema, and whether
the entity is a (unbounded, append-only) *stream* or a (finite, updatable)
*relation* — the distinction at the heart of CQL (slide 25).

A :class:`Source` produces the actual elements.  Sources stamp records
with timestamps (the ordering attribute) and monotone sequence numbers,
and may interleave punctuations.  All sources are restartable: each call
to :meth:`Source.events` yields a fresh, identical pass over the data,
which keeps engine runs and tests deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.tuples import Punctuation, Record, Schema
from repro.errors import OrderingError

__all__ = [
    "StreamDecl",
    "Source",
    "ListSource",
    "CallbackSource",
    "TimedSource",
    "merge_sources",
    "records_from_dicts",
]


class StreamDecl:
    """Catalog entry describing a stream or relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        is_stream: bool = True,
    ) -> None:
        self.name = name
        self.schema = schema
        self.is_stream = is_stream

    def __repr__(self) -> str:
        kind = "stream" if self.is_stream else "relation"
        return f"StreamDecl({self.name!r}, {kind}, {self.schema!r})"


class Source:
    """Base class for element producers.

    Subclasses implement :meth:`events`; the base class provides schema
    bookkeeping and an ordering check used by strict sources.
    """

    def __init__(self, name: str, schema: Schema | None = None) -> None:
        self.name = name
        self.schema = schema

    def events(self) -> Iterator[Record | Punctuation]:
        """Yield the stream's elements in order.  Restartable."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Record | Punctuation]:
        return self.events()

    def collect(self) -> list[Record | Punctuation]:
        """Materialize the whole stream (only sensible for finite sources)."""
        return list(self.events())


def records_from_dicts(
    rows: Iterable[Mapping[str, Any]],
    ts_attr: str | None = None,
    start_seq: int = 0,
) -> list[Record]:
    """Convert plain dicts to :class:`Record` objects.

    If ``ts_attr`` is given, each record's ``ts`` is taken from that
    attribute; otherwise records are position-ordered (ts = seq).
    """
    records: list[Record] = []
    for i, row in enumerate(rows):
        seq = start_seq + i
        ts = float(row[ts_attr]) if ts_attr else float(seq)
        records.append(Record(row, ts=ts, seq=seq))
    return records


class ListSource(Source):
    """A finite source backed by a list of elements.

    Parameters
    ----------
    elements:
        Pre-stamped records/punctuations, or plain dicts (which will be
        stamped by position or by ``ts_attr``).
    strict_order:
        If ``True`` (default), raise :class:`OrderingError` when elements
        are not non-decreasing in ``ts`` — streams are sequences (slide
        17) and sources must honour their ordering attribute.
    """

    def __init__(
        self,
        name: str,
        elements: Sequence[Record | Punctuation | Mapping[str, Any]],
        schema: Schema | None = None,
        ts_attr: str | None = None,
        strict_order: bool = True,
    ) -> None:
        super().__init__(name, schema)
        if ts_attr is None and schema is not None:
            ts_attr = schema.ordering
        stamped: list[Record | Punctuation] = []
        punct_positions: list[int] = []
        seq = 0
        for el in elements:
            if isinstance(el, Punctuation):
                punct_positions.append(seq)
                stamped.append(el)
            elif isinstance(el, Record):
                stamped.append(el)
            else:
                ts = float(el[ts_attr]) if ts_attr else float(seq)
                stamped.append(Record(el, ts=ts, seq=seq))
            seq += 1
        if strict_order:
            last = float("-inf")
            for el in stamped:
                if el.ts < last:
                    raise OrderingError(
                        f"source {name!r} is not ordered: ts {el.ts} after {last}"
                    )
                last = el.ts
        self._elements = stamped
        #: indices of punctuations, in order — lets the engine's sliced
        #: columnar ingress cut chunks without re-scanning per element.
        self._punct_positions = punct_positions

    def events(self) -> Iterator[Record | Punctuation]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)


class CallbackSource(Source):
    """A source backed by a zero-argument callable returning an iterable.

    The callable is invoked anew on every :meth:`events` call, so
    generator factories keep the source restartable.
    """

    def __init__(
        self,
        name: str,
        factory: Callable[[], Iterable[Record | Punctuation]],
        schema: Schema | None = None,
    ) -> None:
        super().__init__(name, schema)
        self._factory = factory

    def events(self) -> Iterator[Record | Punctuation]:
        return iter(self._factory())


class TimedSource(Source):
    """A source that assigns arrival times from an arrival process.

    ``arrivals`` yields inter-arrival gaps (or absolute times if
    ``absolute=True``); ``payloads`` yields attribute dicts.  The zip of
    the two, stamped with timestamps and sequence numbers, forms the
    stream.  Used by the simulation experiments, where the *timing* of
    tuples (bursts, rate mismatches) is the object under study.
    """

    def __init__(
        self,
        name: str,
        arrivals: Callable[[], Iterable[float]],
        payloads: Callable[[], Iterable[Mapping[str, Any]]],
        schema: Schema | None = None,
        absolute: bool = False,
        limit: int | None = None,
    ) -> None:
        super().__init__(name, schema)
        self._arrivals = arrivals
        self._payloads = payloads
        self._absolute = absolute
        self._limit = limit

    def events(self) -> Iterator[Record | Punctuation]:
        now = 0.0
        count = 0
        for gap, payload in zip(self._arrivals(), self._payloads()):
            if self._limit is not None and count >= self._limit:
                return
            now = gap if self._absolute else now + gap
            yield Record(payload, ts=now, seq=count)
            count += 1


def merge_sources(
    *sources: Source,
) -> Iterator[tuple[str, Record | Punctuation]]:
    """Merge several sources into one globally ts-ordered event sequence.

    Yields ``(source_name, element)`` pairs ordered by ``(ts, seq)``,
    breaking remaining ties by source position for determinism.  This is
    how the push engine interleaves multiple input streams.
    """
    iterators = [(i, src.name, src.events()) for i, src in enumerate(sources)]
    heads: list[tuple[float, int, int, str, Record | Punctuation]] = []
    import heapq

    counter = 0
    for i, name, it in iterators:
        for el in it:
            heapq.heappush(heads, (el.ts, el.seq, counter, name, el))
            counter += 1
            break
        else:
            continue
    # Keep per-source iterators alive for incremental pulls.
    live = {name: it for _, name, it in iterators}
    while heads:
        ts, seq, _, name, el = heapq.heappop(heads)
        yield name, el
        it = live[name]
        for nxt in it:
            heapq.heappush(heads, (nxt.ts, nxt.seq, counter, name, nxt))
            counter += 1
            break
