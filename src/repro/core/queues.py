"""Inter-operator queues with memory accounting and drop policies.

In simulation mode every plan edge is realized as an :class:`OpQueue`.
Queue occupancy (in tuple-*size* units, per the Chain memory model of
slide 43) is what the memory-minimizing schedulers optimize, and what
overflows when load must be shed (slide 44).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.tuples import Punctuation, Record, element_size

__all__ = ["QueueStats", "OpQueue"]

Element = Record | Punctuation


@dataclass
class QueueStats:
    """Lifetime counters for one queue."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    peak_size: float = 0.0
    peak_length: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "peak_size": self.peak_size,
            "peak_length": self.peak_length,
        }


class OpQueue:
    """A FIFO queue of stream elements with size accounting.

    Parameters
    ----------
    capacity:
        Maximum total *size* of buffered records.  ``None`` means
        unbounded.  When a record would overflow a bounded queue it is
        dropped (tail drop) and counted in :attr:`stats`.

    Punctuations are *never* dropped, whatever the capacity: losing one
    would silently stall every downstream flush that waits on it, and
    the epoch-recovery protocol treats punctuations as commit markers.
    They also occupy no capacity (:func:`element_size` charges 0).
    """

    def __init__(self, name: str = "", capacity: float | None = None) -> None:
        self.name = name
        self.capacity = capacity
        self._items: deque[Element] = deque()
        self._size = 0.0
        self.stats = QueueStats()

    def push(self, element: Element) -> bool:
        """Enqueue ``element``; return ``False`` if it was dropped."""
        sz = element_size(element)
        if (
            self.capacity is not None
            and not isinstance(element, Punctuation)
            and sz > 0
            and self._size + sz > self.capacity
        ):
            self.stats.dropped += 1
            return False
        self._items.append(element)
        self._size += sz
        self.stats.enqueued += 1
        if self._size > self.stats.peak_size:
            self.stats.peak_size = self._size
        if len(self._items) > self.stats.peak_length:
            self.stats.peak_length = len(self._items)
        return True

    def pop(self) -> Element:
        element = self._items.popleft()
        self._size -= element_size(element)
        self.stats.dequeued += 1
        return element

    def peek(self) -> Element:
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def size(self) -> float:
        """Total size of buffered records (memory units)."""
        return self._size

    def clear(self) -> None:
        self._items.clear()
        self._size = 0.0

    def sample(self, registry, prefix: str = "queue") -> None:
        """Record current depth/size into a registry's gauges.

        Called by the observe layer at batch boundaries (never per
        element): ``<prefix>.<name>.depth`` counts buffered elements,
        ``<prefix>.<name>.size`` their total size units.
        """
        label = self.name or "anon"
        registry.gauge(f"{prefix}.{label}.depth").set(float(len(self._items)))
        registry.gauge(f"{prefix}.{label}.size").set(self._size)

    def __repr__(self) -> str:
        return f"OpQueue({self.name!r}, len={len(self._items)}, size={self._size})"
