"""Stream elements: schemas, records, and punctuations.

The tutorial's data model (slides 16-18) treats a data stream as a
potentially unbounded *sequence* of tuples, ordered by an ordering
attribute (e.g. a timestamp) or by arrival position.  Two kinds of
elements flow through operator graphs:

* :class:`Record` — a data tuple with named attribute values plus the
  ordering-attribute value ``ts`` and an arrival sequence number ``seq``.
* :class:`Punctuation` — an in-band marker (Tucker et al., TMSF03;
  slide 28) asserting that no future record will match its pattern.

Schemas (:class:`Schema`) carry per-attribute domain-boundedness
metadata, which the ABB+02 bounded-memory analysis consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError

__all__ = [
    "Field",
    "Schema",
    "Record",
    "Punctuation",
    "FeedbackPunctuation",
    "Downsample",
    "DropKeys",
    "WidenSlide",
    "Pause",
    "Resume",
    "WILDCARD",
    "element_size",
    "is_record",
    "is_punctuation",
    "is_feedback",
]


#: Sentinel used in punctuation patterns to match any value of an attribute.
WILDCARD = "*"


@dataclass(frozen=True)
class Field:
    """One attribute of a stream schema.

    Parameters
    ----------
    name:
        Attribute name, unique within its schema.
    dtype:
        The Python type values of this attribute are expected to have.
    bounded:
        Whether the attribute draws values from a bounded domain.  The
        ABB+02 analysis (slide 35) uses this to decide whether a group-by
        on the attribute can be maintained in bounded memory.
    domain:
        Optional ``(low, high)`` inclusive bounds for numeric attributes,
        or an explicit tuple of admissible values for categorical ones.
    """

    name: str
    dtype: type = float
    bounded: bool = False
    domain: tuple | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid field name: {self.name!r}")

    def domain_size(self) -> float:
        """Return the number of distinct values, or ``inf`` if unbounded."""
        if not self.bounded:
            return math.inf
        if self.domain is None:
            return math.inf
        if len(self.domain) == 2 and all(
            isinstance(v, int) for v in self.domain
        ):
            low, high = self.domain
            return float(high - low + 1)
        return float(len(self.domain))


class Schema:
    """An ordered collection of :class:`Field` objects.

    A schema optionally names its *ordering attribute* — the attribute by
    whose values the stream is (non-strictly) ordered, e.g. a timestamp.
    Position-ordered streams (Aurora/STREAM style, slide 17) leave it
    ``None`` and rely on arrival sequence numbers instead.
    """

    def __init__(
        self,
        fields: Iterable[Field | str],
        ordering: str | None = None,
        name: str = "",
    ) -> None:
        normalized: list[Field] = []
        for f in fields:
            normalized.append(Field(f) if isinstance(f, str) else f)
        self._fields: tuple[Field, ...] = tuple(normalized)
        self._by_name: dict[str, Field] = {}
        for f in self._fields:
            if f.name in self._by_name:
                raise SchemaError(f"duplicate field name: {f.name!r}")
            self._by_name[f.name] = f
        if ordering is not None and ordering not in self._by_name:
            raise SchemaError(
                f"ordering attribute {ordering!r} is not a schema field"
            )
        self.ordering = ordering
        self.name = name

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields and self.ordering == other.ordering

    def __hash__(self) -> int:
        return hash((self._fields, self.ordering))

    def __repr__(self) -> str:
        inner = ", ".join(f.name for f in self._fields)
        ordering = f", ordering={self.ordering!r}" if self.ordering else ""
        return f"Schema([{inner}]{ordering})"

    def project(self, names: Sequence[str], name: str = "") -> "Schema":
        """Return a schema containing only ``names`` (in the given order)."""
        fields = [self.field(n) for n in names]
        ordering = self.ordering if self.ordering in names else None
        return Schema(fields, ordering=ordering, name=name or self.name)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with attributes renamed per ``mapping``."""
        fields = [
            Field(mapping.get(f.name, f.name), f.dtype, f.bounded, f.domain)
            for f in self._fields
        ]
        ordering = (
            mapping.get(self.ordering, self.ordering) if self.ordering else None
        )
        return Schema(fields, ordering=ordering, name=self.name)

    def join(self, other: "Schema", name: str = "") -> "Schema":
        """Return the concatenation of two schemas (for join outputs).

        Name clashes are resolved by raising; callers are expected to
        qualify/rename before joining, mirroring SQL semantics.
        """
        clash = set(self.names) & set(other.names)
        if clash:
            raise SchemaError(f"join would duplicate attributes: {sorted(clash)}")
        return Schema(
            list(self._fields) + list(other._fields),
            ordering=self.ordering,
            name=name,
        )

    def validate(self, values: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``values`` covers the schema."""
        missing = [n for n in self.names if n not in values]
        if missing:
            raise SchemaError(f"record is missing attributes {missing}")


class Record:
    """A data tuple flowing through the system.

    Attributes
    ----------
    values:
        Mapping of attribute name to value.
    ts:
        The ordering-attribute value (virtual time of the tuple).  For
        position-ordered streams this equals the arrival time assigned by
        the source.
    seq:
        Arrival sequence number, assigned by sources; ties on ``ts`` are
        broken by ``seq`` so execution is deterministic.
    size:
        Abstract memory footprint used by queue/memory accounting.  The
        Chain-scheduling model (slide 43) shrinks this as tuples pass
        through selective operators.
    """

    __slots__ = ("values", "ts", "seq", "size")

    def __init__(
        self,
        values: Mapping[str, Any],
        ts: float = 0.0,
        seq: int = 0,
        size: float = 1.0,
    ) -> None:
        self.values = dict(values)
        self.ts = ts
        self.seq = seq
        self.size = size

    def __getitem__(self, name: str) -> Any:
        try:
            return self.values[name]
        except KeyError:
            raise SchemaError(
                f"record has no attribute {name!r}; it has {sorted(self.values)}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        return self.values.get(name, default)

    def __contains__(self, name: object) -> bool:
        return name in self.values

    def with_values(self, values: Mapping[str, Any]) -> "Record":
        """Return a copy carrying ``values`` but the same ts/seq/size."""
        return Record(values, ts=self.ts, seq=self.seq, size=self.size)

    def merged(self, other: "Record", ts: float | None = None) -> "Record":
        """Return the join of two records (used by join operators)."""
        merged = dict(self.values)
        merged.update(other.values)
        out_ts = max(self.ts, other.ts) if ts is None else ts
        return Record(
            merged,
            ts=out_ts,
            seq=max(self.seq, other.seq),
            size=self.size + other.size,
        )

    def key(self, names: Sequence[str]) -> tuple:
        """Return the tuple of values for ``names`` (grouping/join keys)."""
        return tuple(self.values[n] for n in names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.values == other.values
            and self.ts == other.ts
            and self.seq == other.seq
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.values.items()), self.ts, self.seq))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"Record({inner}, ts={self.ts})"


def _pattern_matches(
    pattern: tuple[tuple[str, Any], ...], record: "Record"
) -> bool:
    """TMSF03 pattern semantics, shared by data and feedback punctuations.

    Range patterns compare with ``<``/``>``; on a mixed-type stream those
    comparisons can raise ``TypeError`` (e.g. a ``(0, 100)`` bound probed
    against a string key).  A value the range cannot order is simply not
    covered by the range, so the comparison failure means *no match*, not
    a crash mid-stream.
    """
    for name, pat in pattern:
        if name not in record:
            return False
        value = record[name]
        if pat == WILDCARD:
            continue
        if isinstance(pat, tuple) and len(pat) == 2:
            low, high = pat
            try:
                if low is not None and value < low:
                    return False
                if high is not None and value > high:
                    return False
            except TypeError:
                return False
            continue
        if value != pat:
            return False
    return True


@dataclass(frozen=True)
class Punctuation:
    """An in-band assertion that no future record matches ``pattern``.

    ``pattern`` maps attribute names to either a literal value, the
    :data:`WILDCARD` string, or a ``(low, high)`` tuple meaning the
    inclusive range.  A punctuation *matches* a record when every
    patterned attribute matches (TMSF03 semantics, slide 28).

    The most common punctuation is a pure timestamp bound, e.g.
    ``Punctuation({"ts": (None, 100)})`` meaning "no record with
    ``ts <= 100`` will arrive after me"; :meth:`time_bound` constructs it.
    """

    pattern: tuple[tuple[str, Any], ...]
    ts: float = 0.0
    seq: int = 0

    @staticmethod
    def of(pattern: Mapping[str, Any], ts: float = 0.0, seq: int = 0) -> "Punctuation":
        """Build a punctuation from a dict pattern."""
        return Punctuation(tuple(sorted(pattern.items())), ts=ts, seq=seq)

    @staticmethod
    def time_bound(attr: str, upto: float, ts: float | None = None) -> "Punctuation":
        """Punctuation asserting all future records have ``attr > upto``."""
        return Punctuation.of({attr: (None, upto)}, ts=upto if ts is None else ts)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.pattern)

    def matches(self, record: Record) -> bool:
        """Return ``True`` if ``record`` is covered by this punctuation."""
        return _pattern_matches(self.pattern, record)

    def bound_for(self, attr: str) -> float | None:
        """Return the inclusive upper bound asserted for ``attr``, if any."""
        for name, pat in self.pattern:
            if name != attr:
                continue
            if isinstance(pat, tuple) and len(pat) == 2 and pat[1] is not None:
                return float(pat[1])
            if not isinstance(pat, (tuple, str)):
                return float(pat)
        return None

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.pattern)
        return f"Punctuation({inner})"


@dataclass(frozen=True)
class Downsample:
    """Advice: keep only ``rate`` (0..1] of the records matching the pattern.

    Rate is a *keep* rate: ``Downsample(0.25)`` asks the producer to let
    one in four matching records through.  Producers implement it with a
    deterministic counter stride (see ``repro.feedback.table``) so a
    crash-replayed run admits the same records.
    """

    rate: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"Downsample rate must be in [0, 1]: {self.rate}")


@dataclass(frozen=True)
class DropKeys:
    """Advice: drop matching records whose ``attr`` value is in ``keys``."""

    attr: str
    keys: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))


@dataclass(frozen=True)
class WidenSlide:
    """Advice: emit every ``factor``-th sliding-window refresh instead of all."""

    factor: int

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"WidenSlide factor must be >= 1: {self.factor}")


@dataclass(frozen=True)
class Pause:
    """Advice: drop every matching record until a RESUME arrives."""


@dataclass(frozen=True)
class Resume:
    """Advice: cancel prior advice installed for the same pattern.

    A resume with the empty pattern ``()`` cancels *all* advice at the
    acting operator.
    """


@dataclass(frozen=True)
class FeedbackPunctuation:
    """A control marker flowing *against* the dataflow (FMT, arXiv:0909.2062).

    Where a :class:`Punctuation` describes the past of the forward stream
    ("no more records matching this pattern"), a feedback punctuation is a
    request about its *future*: an overloaded consumer sends
    ``FeedbackPunctuation(pattern, advice)`` upstream asking producers to
    stop, thin, or coarsen the matching slice of the stream.  Operators
    between the emitter and the source either *act* on it, *translate*
    the pattern through their schema mapping, or *forward* it unchanged.

    ``pattern`` uses the same attr → literal | :data:`WILDCARD` |
    ``(low, high)`` grammar as data punctuations; ``origin`` names the
    emitting operator (for traces), ``seq`` orders feedback from one
    emitter.
    """

    pattern: tuple[tuple[str, Any], ...]
    advice: Any
    origin: str = ""
    seq: int = 0

    @staticmethod
    def of(
        pattern: Mapping[str, Any],
        advice: Any,
        origin: str = "",
        seq: int = 0,
    ) -> "FeedbackPunctuation":
        """Build a feedback punctuation from a dict pattern."""
        return FeedbackPunctuation(
            tuple(sorted(pattern.items())), advice, origin=origin, seq=seq
        )

    def as_dict(self) -> dict[str, Any]:
        return dict(self.pattern)

    def matches(self, record: Record) -> bool:
        """Return ``True`` if ``record`` falls in this advice's slice."""
        return _pattern_matches(self.pattern, record)

    def with_pattern(
        self, pattern: tuple[tuple[str, Any], ...], advice: Any | None = None
    ) -> "FeedbackPunctuation":
        """Copy with a translated pattern (and optionally advice)."""
        return FeedbackPunctuation(
            tuple(pattern),
            self.advice if advice is None else advice,
            origin=self.origin,
            seq=self.seq,
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.pattern)
        return f"FeedbackPunctuation({inner}; {self.advice!r})"


def is_record(element: object) -> bool:
    """Return ``True`` for data tuples (as opposed to punctuations)."""
    return isinstance(element, Record)


def is_punctuation(element: object) -> bool:
    """Return ``True`` for punctuation markers."""
    return isinstance(element, Punctuation)


def is_feedback(element: object) -> bool:
    """Return ``True`` for backward-flowing feedback punctuations."""
    return isinstance(element, FeedbackPunctuation)


def element_size(element: object) -> float:
    """Memory footprint of a stream element for queue accounting.

    Punctuations are free; anything exposing a ``size`` attribute (records,
    and the simulator's in-flight tuples) is charged that size.
    """
    if isinstance(element, (Punctuation, FeedbackPunctuation)):
        return 0.0
    return float(getattr(element, "size", 0.0))
