"""Discrete-event simulation of plan execution under resource limits.

The push engine (:mod:`repro.core.engine`) answers *what* a query
returns; this simulator answers *how the system behaves* while computing
it: queue backlogs, memory over time, output rates, and drops, under a
single processor of configurable speed and a pluggable
:class:`~repro.scheduling.base.Scheduler`.  It realizes the resource
models of slides 39-44:

* **Memory model (slide 43 / Chain).**  A tuple occupies ``size`` memory
  units; passing through an operator with selectivity *s* shrinks it to
  ``size * s`` (and to zero when it leaves the system).  Total memory is
  the sum of queued and in-service tuple sizes, sampled on a fixed grid.
* **Rate model (slides 40-41).**  In ``abstract`` mode every tuple also
  carries a ``weight`` — the expected number of real tuples it stands
  for — multiplied by operator selectivity at each hop, so measured
  output rates match the analytic rate model exactly.
* **Semantic mode** executes the real operator logic instead, for
  experiments where answer *content* matters (e.g. load-shedding
  accuracy, slide 44).

Arrivals beyond ``config.until`` are ignored; with ``drain=True`` the
simulator keeps serving queued work after the last admitted arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.core.graph import Plan
from repro.core.metrics import MetricsRegistry, TimeSeries
from repro.core.queues import OpQueue
from repro.core.stream import Source, merge_sources
from repro.core.tuples import Punctuation, Record, element_size
from repro.errors import PlanError
from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["SimConfig", "SimResult", "Simulation", "SimTuple"]

Element = Record | Punctuation
_EPS = 1e-9


class SimTuple:
    """A stream element in flight through the simulator."""

    __slots__ = ("element", "size", "weight", "entry_seq", "entry_ts")

    def __init__(
        self,
        element: Element,
        size: float,
        weight: float,
        entry_seq: int,
        entry_ts: float,
    ) -> None:
        self.element = element
        self.size = size
        self.weight = weight
        self.entry_seq = entry_seq
        self.entry_ts = entry_ts


@dataclass
class SimConfig:
    """Simulation parameters."""

    #: Processor speed: cost units served per unit of virtual time.
    speed: float = 1.0
    #: Ignore arrivals with ``ts`` beyond this bound (``None`` = all).
    until: float | None = None
    #: Memory sampling grid spacing.
    sample_interval: float = 1.0
    #: ``abstract`` (size/weight model) or ``semantic`` (run operators).
    mode: str = "abstract"
    #: Per-edge queue capacity in size units (``None`` = unbounded).
    queue_capacity: float | None = None
    #: Keep serving queued work after the last admitted arrival.
    drain: bool = True
    #: Optional admission filter: ``shedder(element, now, memory) -> bool``
    #: returning False drops the arrival (slide 44 load shedding).
    shedder: Callable[[Element, float, float], bool] | None = None


@dataclass
class SimResult:
    """Everything measured during one simulation run."""

    memory: TimeSeries
    outputs: dict[str, list[Element]]
    output_weight: dict[str, float]
    output_count: dict[str, int]
    output_series: dict[str, TimeSeries]
    drops: int
    shed: int
    metrics: MetricsRegistry
    end_time: float
    latency_sum: float = 0.0
    latency_count: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Mean system time of tuples that reached an output."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    def output_rate(self, name: str = "out") -> float:
        """Weighted output tuples per unit time over the whole run."""
        if self.end_time <= 0:
            return 0.0
        return self.output_weight.get(name, 0.0) / self.end_time


class _OpState:
    __slots__ = ("operator", "key", "queues", "successors", "sink_names")

    def __init__(self, operator, key: int, capacity: float | None) -> None:
        self.operator = operator
        self.key = key
        self.queues: list[OpQueue] = [
            OpQueue(name=f"{operator.name}.{p}", capacity=capacity)
            for p in range(operator.arity)
        ]
        self.successors: list[tuple["_OpState", int]] = []
        self.sink_names: list[str] = []


class _Job:
    __slots__ = ("state", "port", "tup", "finish")

    def __init__(self, state: _OpState, port: int, tup: SimTuple, finish: float):
        self.state = state
        self.port = port
        self.tup = tup
        self.finish = finish


class Simulation:
    """Single-processor discrete-event simulator over a plan."""

    def __init__(
        self,
        plan: Plan,
        scheduler: Scheduler,
        config: SimConfig | None = None,
    ) -> None:
        plan.validate()
        if config is None:
            config = SimConfig()
        if config.mode not in ("abstract", "semantic"):
            raise PlanError(f"unknown simulation mode {config.mode!r}")
        self.plan = plan
        self.scheduler = scheduler
        self.config = config

    def run(self, sources: Sequence[Source] | Mapping[str, Source]) -> SimResult:
        cfg = self.config
        plan = self.plan
        plan.reset()
        by_name = self._resolve_sources(sources)

        order = plan.topological_order()
        states: dict[int, _OpState] = {}
        for key, op in enumerate(order):
            states[id(op)] = _OpState(op, key, cfg.queue_capacity)
        for op in order:
            st = states[id(op)]
            for consumer, port in plan.successors(op):
                st.successors.append((states[id(consumer)], port))
            st.sink_names = plan.output_names_for(op)
        entry_states: dict[str, list[tuple[_OpState, int]]] = {}
        for input_name, consumers in plan.inputs.items():
            entry_states[input_name] = [
                (states[id(consumer)], port) for consumer, port in consumers
            ]

        self.scheduler.on_start(plan)

        metrics = MetricsRegistry()
        result = SimResult(
            memory=TimeSeries("memory"),
            outputs={name: [] for name in plan.outputs},
            output_weight={name: 0.0 for name in plan.outputs},
            output_count={name: 0 for name in plan.outputs},
            output_series={
                name: TimeSeries(f"output:{name}") for name in plan.outputs
            },
            drops=0,
            shed=0,
            metrics=metrics,
            end_time=0.0,
        )

        arrivals = merge_sources(*by_name.values())
        pending = self._next_arrival(arrivals, cfg.until)

        now = 0.0
        job: _Job | None = None
        entry_counter = 0
        next_sample = 0.0
        all_states = list(states.values())

        def total_memory() -> float:
            mem = sum(q.size for st in all_states for q in st.queues)
            if job is not None:
                mem += job.tup.size
            return mem

        def emit_samples_up_to(t: float, inclusive: bool) -> None:
            nonlocal next_sample
            bound = t + _EPS if inclusive else t - _EPS
            while next_sample <= bound:
                result.memory.append(next_sample, total_memory())
                next_sample += cfg.sample_interval

        def try_start() -> None:
            nonlocal job
            if job is not None:
                return
            ready: list[ReadyOp] = []
            for st in all_states:
                for port, q in enumerate(st.queues):
                    if not q:
                        continue
                    head = q.peek()
                    ready.append(
                        ReadyOp(
                            key=st.key,
                            port=port,
                            op_name=st.operator.name,
                            cost=st.operator.cost_per_tuple,
                            selectivity=st.operator.selectivity,
                            head_size=head.size,
                            head_entry_seq=head.entry_seq,
                            head_entry_ts=head.entry_ts,
                            queue_length=len(q),
                            terminal=not st.successors,
                        )
                    )
            if not ready:
                return
            chosen = self.scheduler.choose(ready, now)
            st = next(s for s in all_states if s.key == chosen.key)
            tup = st.queues[chosen.port].pop()
            service = st.operator.cost_per_tuple / cfg.speed
            job = _Job(st, chosen.port, tup, now + service)

        def deliver(st: _OpState, out_tuples: list[SimTuple]) -> None:
            """Record sink output and fan out to successor queues."""
            m = metrics.for_operator(st.operator.name)
            for out in out_tuples:
                if isinstance(out.element, Record):
                    m.records_out += 1
                else:
                    m.punctuations_out += 1
            for name in st.sink_names:
                for out in out_tuples:
                    if out.weight <= 0 and isinstance(out.element, Record):
                        continue
                    result.outputs[name].append(out.element)
                    result.output_weight[name] += out.weight
                    if isinstance(out.element, Record):
                        result.output_count[name] += 1
                        # Weighted mean: both numerator and denominator
                        # carry the tuple's expected multiplicity.
                        result.latency_sum += (now - out.entry_ts) * out.weight
                        result.latency_count += out.weight
                    result.output_series[name].append(
                        now, result.output_weight[name]
                    )
            for succ, port in st.successors:
                for out in out_tuples:
                    ok = succ.queues[port].push(out)  # type: ignore[arg-type]
                    if not ok:
                        result.drops += 1

        def complete(j: _Job) -> None:
            st = j.state
            op = st.operator
            m = metrics.for_operator(op.name)
            m.invocations += 1
            m.busy_time += op.cost_per_tuple / cfg.speed
            if isinstance(j.tup.element, Record):
                m.records_in += 1
            else:
                m.punctuations_in += 1
            outs: list[SimTuple] = []
            if cfg.mode == "abstract":
                new_size = j.tup.size * op.selectivity
                new_weight = j.tup.weight * op.selectivity
                if new_weight > 0 or isinstance(j.tup.element, Punctuation):
                    outs.append(
                        SimTuple(
                            j.tup.element,
                            new_size,
                            new_weight,
                            j.tup.entry_seq,
                            j.tup.entry_ts,
                        )
                    )
            else:
                produced = op.process(j.tup.element, j.port)
                for el in produced:
                    outs.append(
                        SimTuple(
                            el,
                            element_size(el),
                            1.0 if isinstance(el, Record) else 0.0,
                            j.tup.entry_seq,
                            j.tup.entry_ts,
                        )
                    )
            deliver(st, outs)

        # -- main event loop ------------------------------------------------
        # OpQueue.push stores SimTuples; element_size() on them is not used
        # because queue size accounting reads .size, which SimTuple provides
        # via the same attribute protocol as Record.
        while True:
            candidates: list[float] = []
            if job is not None:
                candidates.append(job.finish)
            if pending is not None:
                candidates.append(pending[1].ts)
            if not candidates:
                break
            t = min(candidates)
            emit_samples_up_to(t, inclusive=False)
            now = t
            if job is not None and job.finish <= now + _EPS:
                finished = job
                job = None
                complete(finished)
            while pending is not None and pending[1].ts <= now + _EPS:
                input_name, element = pending
                self._admit(
                    element,
                    entry_states[input_name],
                    entry_counter,
                    now,
                    result,
                    total_memory,
                )
                entry_counter += 1
                pending = self._next_arrival(arrivals, cfg.until)
            # With drain disabled, no new work starts once arrivals end:
            # the in-flight job finishes and the backlog is abandoned.
            if cfg.drain or pending is not None:
                try_start()
            emit_samples_up_to(now, inclusive=True)
            if not cfg.drain and pending is None and job is None:
                break

        result.end_time = now
        return result

    # -- helpers ------------------------------------------------------------

    def _resolve_sources(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> dict[str, Source]:
        if isinstance(sources, Mapping):
            by_name = dict(sources)
        else:
            by_name = {src.name: src for src in sources}
        missing = set(self.plan.inputs) - set(by_name)
        if missing:
            raise PlanError(f"no source provided for inputs {sorted(missing)}")
        return by_name

    def _next_arrival(
        self,
        arrivals: Iterator[tuple[str, Element]],
        until: float | None,
    ) -> tuple[str, Element] | None:
        for name, element in arrivals:
            if until is not None and element.ts > until:
                return None
            return name, element
        return None

    def _admit(
        self,
        element: Element,
        entries: list[tuple[_OpState, int]],
        entry_seq: int,
        now: float,
        result: SimResult,
        total_memory: Callable[[], float],
    ) -> None:
        shedder = self.config.shedder
        if shedder is not None and isinstance(element, Record):
            if not shedder(element, now, total_memory()):
                result.shed += 1
                return
        tup = SimTuple(
            element,
            element_size(element),
            1.0 if isinstance(element, Record) else 0.0,
            entry_seq,
            now,
        )
        for st, port in entries:
            if not st.queues[port].push(tup):  # type: ignore[arg-type]
                result.drops += 1
