"""Push-mode execution engine.

The push engine evaluates a :class:`~repro.core.graph.Plan` exactly:
every arriving element is propagated through the DAG to completion, in
global timestamp order across all inputs, and operators are flushed at
end of stream.  This is the mode used to obtain *correct answers* —
queries, joins, aggregates — while :mod:`repro.core.simulation` is used
when resource limits and timing are the object of study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.columnar.batch import BACKENDS, ColumnBatch, HAVE_NUMPY
from repro.core.graph import Plan
from repro.core.metrics import MetricsRegistry
from repro.core.stream import Source, merge_sources
from repro.core.tuples import (
    FeedbackPunctuation,
    Punctuation,
    Record,
    Resume,
    WidenSlide,
)
from repro.errors import PlanError
from repro.feedback.channel import FeedbackChannel
from repro.feedback.table import AdviceTable
from repro.observe.observer import ObserveConfig, Observer

__all__ = [
    "RunResult",
    "Engine",
    "EngineCheckpoint",
    "run_plan",
    "resolve_sources",
]

Element = Record | Punctuation


@dataclass
class RunResult:
    """Outputs and metrics of one engine run."""

    outputs: dict[str, list[Element]]
    metrics: MetricsRegistry
    #: Records dropped at ingress by an overload guard (0 without one).
    dropped: int = 0

    def records(self, output: str = "out") -> list[Record]:
        """Data tuples (punctuations filtered out) of one output."""
        return [el for el in self.outputs[output] if isinstance(el, Record)]

    def values(self, output: str = "out") -> list[dict]:
        """Attribute dicts of one output's records."""
        return [r.values for r in self.records(output)]

    def punctuations(self, output: str = "out") -> list[Punctuation]:
        return [
            el for el in self.outputs[output] if isinstance(el, Punctuation)
        ]


@dataclass
class EngineCheckpoint:
    """Consistent engine state captured at an epoch boundary.

    A checkpoint pairs every operator's :meth:`~repro.operators.base.
    Operator.snapshot` (in topological order) with the per-output
    positions and punctuation watermarks at capture time.  Restoring it
    rewinds the engine — operator state *and* already-emitted output —
    to exactly that point, so re-feeding the same elements reproduces
    the same results (the replay discipline the
    :class:`repro.resilience.Supervisor` relies on).
    """

    operator_names: list[str]
    operator_states: list[object]
    output_lengths: dict[str, int]
    #: per-output ``ts`` of the last punctuation emitted before the
    #: checkpoint (``None`` when the output has seen no punctuation).
    watermarks: dict[str, float | None]
    #: ingress feedback state (engine advice table + guard feedback
    #: snapshot); ``None`` for checkpoints taken before M9 or when no
    #: feedback was active — recovery must not un-shed (see
    #: :mod:`repro.feedback`).
    feedback: object | None = None


class Engine:
    """Exact, in-order, push-based plan executor.

    Two usage styles:

    * batch — :meth:`run` over finite sources;
    * incremental — :meth:`start`, repeated :meth:`feed`, then
      :meth:`finish`; this is how a standing query inside a DSMS facade
      consumes an open-ended stream.

    ``batch_size`` selects the execution path.  ``None`` (the default)
    is tuple-at-a-time: every element takes one full trip through the
    DAG.  An integer ``k >= 1`` enables micro-batching: the engine
    drains sources in timestamp-ordered chunks of up to ``k``
    consecutive same-input elements and dispatches each chunk with a
    single :meth:`~repro.operators.base.Operator.process_batch` call
    per operator, amortizing dispatch overhead.  A punctuation always
    closes the current chunk, so state flushes triggered by
    punctuations happen at exactly the same stream positions as in
    tuple-at-a-time mode; outputs are element-for-element identical
    for every batch size.  The string ``"auto"`` selects
    :data:`DEFAULT_BATCH_SIZE`.
    """

    #: Batch size selected by ``batch_size="auto"``.  Chosen from the M2
    #: scaling table (``BENCH_m1_m2.json``): throughput rises steeply up
    #: to ~256 and then flattens (CDR: 1.197M -> 1.213M t/s at 4096) or
    #: regresses (netflow: 312k t/s at 256 vs 212k at 4096 — huge chunks
    #: mostly buy larger intermediate element lists, worse locality, and
    #: bigger open-state tables between punctuation-driven flushes, not
    #: further dispatch savings).  256 is the knee on both workloads.
    DEFAULT_BATCH_SIZE = 256

    def __init__(
        self,
        plan: Plan,
        batch_size: int | str | None = None,
        guard=None,
        observe=None,
        representation: str = "tuple",
        column_backend: str | None = None,
        recorder=None,
    ) -> None:
        plan.validate()
        if batch_size == "auto":
            batch_size = self.DEFAULT_BATCH_SIZE
        if batch_size is not None:
            if not isinstance(batch_size, int):
                raise PlanError(
                    f"batch_size must be an int, None, or 'auto'; "
                    f"got {batch_size!r}"
                )
            if batch_size < 1:
                raise PlanError(f"batch_size must be >= 1; got {batch_size}")
        self.plan = plan
        self.batch_size = batch_size
        self._columnar = False
        self._column_backend: str | None = None
        self._backend_eff = "numpy" if HAVE_NUMPY else "python"
        #: Batch representation on the micro-batched path: ``"tuple"``
        #: dispatches record lists through ``process_batch``;
        #: ``"columnar"`` converts record runs to
        #: :class:`~repro.columnar.ColumnBatch` and routes
        #: columnar-capable operators through ``process_columns``
        #: (tuple-only operators transparently get rows back).
        self.representation = representation
        #: Column storage backend (``None`` = auto: numpy when
        #: installed, else pure-python lists).
        self.column_backend = column_backend
        #: Optional ingress admission control (duck-typed to
        #: :class:`repro.resilience.OverloadGuard`): consulted for every
        #: arriving element; elements it refuses are counted as shed
        #: load instead of entering the plan.
        self.guard = guard
        #: Wall-clock observation: ``None`` (off), ``True``, an ``int``
        #: sampling stride, or an :class:`~repro.observe.ObserveConfig`.
        #: When set, operator dispatches are ``perf_counter``-timed
        #: (1-in-N sampled) into ``wall_time``/latency histograms, and
        #: queue-depth / watermark gauges are sampled at batch
        #: boundaries — see :mod:`repro.observe`.
        self.observe_config = ObserveConfig.coerce(observe)
        self._observer: Observer | None = None
        self.metrics = MetricsRegistry()
        self._outputs: dict[str, list[Element]] | None = None
        #: Backward control channel (see :mod:`repro.feedback`): built at
        #: :meth:`start`, drained between forward dispatches.
        self._feedback: FeedbackChannel | None = None
        #: Ingress advice for guardless engines (with a guard, advice
        #: installs into the guard instead).
        self._advice: AdviceTable | None = None
        self._ingress_dropped = 0
        self._ops_by_name: dict[str, object] = {}
        self._preds: dict[int, list] = {}
        #: Optional :class:`repro.replay.Recorder` (duck-typed).  When
        #: set, the engine journals raw ingress (pre-guard, pre-advice),
        #: closes a journal epoch after each punctuation is fully
        #: processed, and reports ingress feedback — the record side of
        #: the time machine (see :mod:`repro.replay`).
        self.recorder = recorder

    @property
    def representation(self) -> str:
        return "columnar" if self._columnar else "tuple"

    @representation.setter
    def representation(self, value: str) -> None:
        if value not in ("tuple", "columnar"):
            raise PlanError(
                f"representation must be 'tuple' or 'columnar'; got {value!r}"
            )
        if value == "columnar" and self.batch_size is None:
            raise PlanError(
                "columnar execution requires micro-batching; "
                "set batch_size (e.g. 'auto')"
            )
        self._columnar = value == "columnar"

    @property
    def column_backend(self) -> str | None:
        return self._column_backend

    @column_backend.setter
    def column_backend(self, value: str | None) -> None:
        if value is not None:
            if value not in BACKENDS:
                raise PlanError(
                    f"column_backend must be one of {BACKENDS} or None; "
                    f"got {value!r}"
                )
            if value == "numpy" and not HAVE_NUMPY:
                raise PlanError(
                    "column_backend 'numpy' requires numpy "
                    "(install repro[numpy])"
                )
        self._column_backend = value
        self._backend_eff = value or ("numpy" if HAVE_NUMPY else "python")

    def run(self, sources: Sequence[Source] | Mapping[str, Source]) -> RunResult:
        """Execute the plan over ``sources`` and return all outputs.

        ``sources`` must cover exactly the plan's declared inputs.  The
        engine interleaves multi-source input by ``(ts, seq)`` so runs
        are deterministic.
        """
        by_name = self._resolve_sources(sources)
        self.start()
        assert self._outputs is not None
        if (
            self._columnar
            and self.guard is None
            and self.recorder is None
            and len(by_name) == 1
        ):
            only = next(iter(by_name.values()))
            elements = getattr(only, "_elements", None)
            punct_positions = getattr(only, "_punct_positions", None)
            if elements is not None and punct_positions is not None:
                self._run_sliced(
                    only.name, elements, punct_positions, self._outputs
                )
                return self.finish()
        if len(by_name) == 1:
            # A single source is already in order; skip the merge heap.
            only = next(iter(by_name.values()))
            merged = ((only.name, el) for el in only.events())
        else:
            merged = merge_sources(*by_name.values())
        if self.recorder is not None:
            # Journal *before* the guard so the log holds the traffic as
            # offered; replay re-sheds through restored guard/advice
            # state instead of replaying the shedding's outcome.
            merged = self._recorded(merged)
        if self.guard is not None:
            merged = self._guarded(merged)
        if self.batch_size is None:
            channel = self._feedback
            inputs = self.plan.inputs
            for input_name, element in merged:
                if self._advice is not None and not self._admit_ingress(
                    element
                ):
                    continue
                for consumer, port in inputs[input_name]:
                    self._dispatch(consumer, element, port, self._outputs)
                if channel is not None and channel.pending:
                    self._process_feedback()
        else:
            self._run_batched(merged, self._outputs)
        return self.finish()

    def _run_batched(self, merged, outputs: dict[str, list[Element]]) -> None:
        """Drain ``merged`` in chunks of consecutive same-input elements."""
        batch_size = self.batch_size
        assert batch_size is not None
        inputs = self.plan.inputs
        channel = self._feedback
        observing = self._observer is not None
        pending: list[Element] = []
        pending_input: str | None = None
        for input_name, element in merged:
            if pending and (
                input_name != pending_input or len(pending) >= batch_size
            ):
                chunk = self._shed_chunk(pending)
                for consumer, port in inputs[pending_input]:
                    self._dispatch_batch(consumer, chunk, port, outputs)
                if observing:
                    self._observe_chunk(pending[-1])
                if channel is not None and channel.pending:
                    self._process_feedback()
                pending = []
            pending_input = input_name
            pending.append(element)
            if isinstance(element, Punctuation):
                # Close the chunk at the punctuation so downstream
                # flushes keep their tuple-at-a-time positions.
                chunk = self._shed_chunk(pending)
                for consumer, port in inputs[pending_input]:
                    self._dispatch_batch(consumer, chunk, port, outputs)
                if observing:
                    self._observe_chunk(element)
                if channel is not None and channel.pending:
                    self._process_feedback()
                pending = []
        if pending:
            assert pending_input is not None
            chunk = self._shed_chunk(pending)
            for consumer, port in inputs[pending_input]:
                self._dispatch_batch(consumer, chunk, port, outputs)
            if observing:
                self._observe_chunk(pending[-1])
            if channel is not None and channel.pending:
                self._process_feedback()

    def _run_sliced(
        self,
        input_name: str,
        elements: Sequence[Element],
        punct_positions: Sequence[int],
        outputs: dict[str, list[Element]],
    ) -> None:
        """Columnar ingress over a pre-materialized source list.

        Chunk boundaries are identical to :meth:`_run_batched` —
        ``batch_size`` records or a punctuation, whichever comes first —
        but chunks are cut by *slicing* instead of a per-element append
        loop, and each chunk is known by construction to be all records
        except possibly a trailing punctuation, so capable consumers get
        their :class:`ColumnBatch` without re-scanning the chunk.
        """
        batch_size = self.batch_size
        assert batch_size is not None
        consumers = self.plan.inputs[input_name]
        observing = self._observer is not None
        backend = self._backend_eff
        n = len(elements)
        puncts = iter(punct_positions)
        next_p = next(puncts, n)
        start = 0
        while start < n:
            end = start + batch_size
            punct_last = False
            if next_p < end:
                end = next_p + 1
                punct_last = True
                next_p = next(puncts, n)
            chunk = self._shed_chunk(elements[start:end])
            start = end
            if not chunk:
                continue
            for consumer, port in consumers:
                if consumer.supports_columns():
                    run = chunk[:-1] if punct_last else chunk
                    if run:
                        self._dispatch_columns(
                            consumer,
                            ColumnBatch.from_rows(run, backend),
                            port,
                            outputs,
                        )
                    if punct_last:
                        self._dispatch(consumer, chunk[-1], port, outputs)
                else:
                    self._dispatch_batch(consumer, chunk, port, outputs)
            if observing:
                self._observe_chunk(chunk[-1])
            if self._feedback is not None and self._feedback.pending:
                self._process_feedback()

    def _observe_chunk(self, last_element: Element) -> None:
        """Batch-boundary observation: stream-progress gauges plus, when
        an overload guard is attached, its ingress queue depths."""
        obs = self._observer
        obs.on_chunk(last_element)
        if self.guard is not None:
            queues = getattr(self.guard, "ingress_queues", None)
            if queues is not None:
                obs.sample_queues(queues())

    def _guarded(self, merged):
        """Filter a merged element stream through the overload guard."""
        guard = self.guard
        for input_name, element in merged:
            if guard.admit(input_name, element):
                yield input_name, element

    def _recorded(self, merged):
        """Journal a merged element stream as it is consumed.

        The boundary hook fires when the *next* element is pulled —
        i.e. after the loop body has fully dispatched the punctuation
        and drained feedback — so the journal's epoch boundaries see a
        quiescent engine (generators resume on the following ``next()``
        call, which is exactly that moment)."""
        rec = self.recorder
        for input_name, element in merged:
            rec.on_element(self, input_name, element)
            yield input_name, element
            if isinstance(element, Punctuation):
                rec.on_boundary(self)

    # -- incremental interface ------------------------------------------------

    def start(self) -> None:
        """Reset state and begin accepting :meth:`feed` calls.

        Metrics are reset along with operator state: each run reports
        its own counters, so back-to-back :meth:`run` calls on one
        engine instance do not double-count.
        """
        self.plan.reset()
        self.metrics = MetricsRegistry()
        for op in self.plan.topological_order():
            self.metrics.operator_kinds[op.name] = getattr(
                op, "kind", type(op).__name__.lower()
            )
            for sub in getattr(op, "constituents", ()):
                self.metrics.operator_kinds[sub.name] = getattr(
                    sub, "kind", type(sub).__name__.lower()
                )
        if self.observe_config is not None:
            self._observer = Observer(self.observe_config, self.metrics)
            self._observer.start_run()
        else:
            self._observer = None
        self._outputs = {name: [] for name in self.plan.outputs}
        self._feedback = FeedbackChannel()
        self._advice = None
        self._ingress_dropped = 0
        self._bind_feedback()
        if self.guard is not None:
            self.guard.attach(self.plan)
            bind = getattr(self.guard, "bind_observer", None)
            if bind is not None:
                bind(self._observer)
            bind_channel = getattr(self.guard, "bind_channel", None)
            if bind_channel is not None:
                bind_channel(self._feedback)
        if self.recorder is not None:
            self.recorder.on_start(self)

    # -- backward control channel ------------------------------------------

    def _bind_feedback(self) -> None:
        """Attach the channel to every operator and cache the reverse
        adjacency the upstream walk follows."""
        self._ops_by_name = {}
        self._preds = {}
        for op in self.plan.topological_order():
            op.bind_feedback(self._feedback)
            self._ops_by_name[op.name] = op
            self._preds[id(op)] = self.plan.predecessors(op)

    def _process_feedback(self) -> None:
        """Drain the channel, walking each emission upstream."""
        channel = self._feedback
        assert channel is not None
        while channel.pending:
            for fb in channel.drain():
                origin = self._ops_by_name.get(fb.origin)
                if origin is None:
                    # Emitted from outside the plan (or by a renamed
                    # operator): deliver straight to every ingress.
                    for input_name in self.plan.inputs:
                        self._deliver_ingress(input_name, fb)
                    continue
                self._propagate_feedback(origin, fb)

    def _propagate_feedback(self, operator, fb: FeedbackPunctuation) -> None:
        stack = [(operator, fb)]
        while stack:
            op, item = stack.pop()
            for producer, _port in self._preds.get(id(op), ()):
                if isinstance(producer, str):
                    self._deliver_ingress(producer, item)
                else:
                    # The producer acts (returns []), translates, or
                    # forwards; whatever survives keeps climbing.
                    for passed in producer.on_feedback(item):
                        stack.append((producer, passed))

    def _deliver_ingress(self, input_name: str, fb: FeedbackPunctuation) -> None:
        """Advice reached a plan input: install it at the ingress."""
        apply_fb = getattr(self.guard, "apply_feedback", None)
        if apply_fb is not None:
            apply_fb(input_name, fb)
        else:
            if self._advice is None:
                self._advice = AdviceTable()
            self._advice.apply(fb)
            self._forward_window_advice(fb)
        assert self._feedback is not None
        self._feedback.record_ingress(input_name, fb)
        if self.recorder is not None:
            self.recorder.on_feedback(input_name, fb)

    def _forward_window_advice(self, fb: FeedbackPunctuation) -> None:
        """Re-deliver window-addressed verbs to the plan's operators.

        ``WIDEN_SLIDE`` acts at a windowed aggregate, never at ingress
        (the advice table has nothing to install for it), and a
        ``RESUME`` must re-tighten any slide a prior ``WIDEN_SLIDE``
        coarsened — advice broadcast from a sharding coordinator or
        replayed from a supervisor's feedback log otherwise leaves the
        aggregate coarse forever.  Acting is idempotent, so double
        delivery is harmless; returns are ignored (delivery, not
        propagation).
        """
        if not isinstance(fb.advice, (WidenSlide, Resume)):
            return
        for op in self.plan.operators:
            op.on_feedback(fb)

    def apply_feedback(
        self, items: Iterable[tuple[str, FeedbackPunctuation]]
    ) -> None:
        """Install ingress feedback pushed from outside (the sharding
        coordinator's cross-shard broadcast).

        Unlike locally-propagated feedback this is *not* recorded in the
        channel's ingress log — re-broadcasting what a coordinator just
        broadcast would loop.  Installation is idempotent, so the shard
        that originated the advice re-applies harmlessly.
        """
        for input_name, fb in items:
            apply_fb = getattr(self.guard, "apply_feedback", None)
            if apply_fb is not None:
                # The guard forwards window-addressed verbs itself.
                apply_fb(input_name, fb)
            else:
                if self._advice is None:
                    self._advice = AdviceTable()
                self._advice.apply(fb)
                self._forward_window_advice(fb)

    def take_ingress_feedback(self) -> list[tuple[str, FeedbackPunctuation]]:
        """Drain feedback that reached this engine's ingresses (picklable)."""
        if self._feedback is None:
            return []
        return self._feedback.take_ingress()

    def _admit_ingress(self, element: Element) -> bool:
        """Guardless ingress advice filter (guarded engines shed inside
        the guard instead)."""
        advice = self._advice
        if advice is None or not isinstance(element, Record):
            return True
        if advice.admit(element):
            return True
        self._ingress_dropped += 1
        return False

    def _shed_chunk(self, elements: Sequence[Element]) -> Sequence[Element]:
        advice = self._advice
        if advice is None or not len(advice):
            return elements
        admit = self._admit_ingress
        return [
            el
            for el in elements
            if not isinstance(el, Record) or admit(el)
        ]

    def feed(self, input_name: str, element: Element) -> list[Element]:
        """Push one element into ``input_name``; return new 'out' output.

        Returns the elements newly appended to the plan's first output,
        which is what interactive callers usually want; all outputs
        remain available via :meth:`finish`.
        """
        if self._outputs is None:
            raise PlanError("Engine.feed() called before start()")
        if input_name not in self.plan.inputs:
            raise PlanError(f"unknown input {input_name!r}")
        primary = next(iter(self.plan.outputs), None)
        before = len(self._outputs[primary]) if primary else 0
        rec = self.recorder
        if rec is not None:
            rec.on_element(self, input_name, element)
        if (
            self.guard is None or self.guard.admit(input_name, element)
        ) and self._admit_ingress(element):
            for consumer, port in self.plan.inputs[input_name]:
                self._dispatch(consumer, element, port, self._outputs)
        if self._feedback is not None and self._feedback.pending:
            self._process_feedback()
        if rec is not None and isinstance(element, Punctuation):
            rec.on_boundary(self)
        if primary is None:
            return []
        return self._outputs[primary][before:]

    def feed_batch(
        self, input_name: str, elements: Sequence[Element]
    ) -> list[Element]:
        """Push a micro-batch into ``input_name``; return new 'out' output.

        The batched analogue of :meth:`feed` for standing queries whose
        driver already has elements in hand (e.g. a network read that
        returned several tuples).
        """
        if self._outputs is None:
            raise PlanError("Engine.feed_batch() called before start()")
        if input_name not in self.plan.inputs:
            raise PlanError(f"unknown input {input_name!r}")
        primary = next(iter(self.plan.outputs), None)
        before = len(self._outputs[primary]) if primary else 0
        elements = list(elements)
        rec = self.recorder
        if rec is None:
            self._feed_chunk(input_name, elements)
        else:
            # Journal epoch boundaries at their exact stream positions:
            # dispatch punctuation-terminated sub-chunks so the boundary
            # hook sees the outputs as they stood at each punctuation.
            start = 0
            for i, el in enumerate(elements):
                if isinstance(el, Punctuation):
                    chunk = elements[start: i + 1]
                    for item in chunk:
                        rec.on_element(self, input_name, item)
                    self._feed_chunk(input_name, chunk)
                    rec.on_boundary(self)
                    start = i + 1
            if start < len(elements):
                chunk = elements[start:]
                for item in chunk:
                    rec.on_element(self, input_name, item)
                self._feed_chunk(input_name, chunk)
        if primary is None:
            return []
        return self._outputs[primary][before:]

    def _feed_chunk(
        self, input_name: str, elements: Sequence[Element]
    ) -> None:
        """Admit, shed, dispatch, and observe one ingress chunk."""
        if self.guard is not None:
            elements = [
                el for el in elements if self.guard.admit(input_name, el)
            ]
        elements = list(self._shed_chunk(elements))
        for consumer, port in self.plan.inputs[input_name]:
            self._dispatch_batch(consumer, elements, port, self._outputs)
        if self._observer is not None and elements:
            self._observe_chunk(elements[-1])
        if self._feedback is not None and self._feedback.pending:
            self._process_feedback()

    def peek_output(self, name: str) -> list[Element]:
        """The elements accumulated so far on output ``name``.

        Valid between :meth:`start` and :meth:`finish`.  Returns the
        live list — callers must treat it as read-only.  The standing-
        query service uses this to drain per-query outputs and to
        preserve a query's results across a deregistering migration.
        """
        if self._outputs is None:
            raise PlanError("Engine.peek_output() called before start()")
        if name not in self._outputs:
            raise PlanError(f"unknown output {name!r}")
        return self._outputs[name]

    def peek_outputs(self) -> dict[str, list[Element]]:
        """All outputs accumulated so far (live dict — read-only)."""
        if self._outputs is None:
            raise PlanError("Engine.peek_outputs() called before start()")
        return self._outputs

    def finish(self) -> RunResult:
        """Flush all operators and return the accumulated result."""
        if self._outputs is None:
            raise PlanError("Engine.finish() called before start()")
        if self.recorder is not None:
            # Close the trailing partial epoch and capture the pre-flush
            # end state the time machine certifies full replays against.
            self.recorder.on_finish(self)
        outputs = self._outputs
        self._flush_all(outputs)
        self._outputs = None
        dropped = self._ingress_dropped
        if self.guard is not None:
            dropped += self.guard.dropped()
            self.guard.publish(self.metrics)
        if self._feedback is not None:
            if self._feedback.emitted:
                self.metrics.incr("feedback.emitted", self._feedback.emitted)
                self.metrics.incr(
                    "feedback.delivered", self._feedback.delivered
                )
            if self._ingress_dropped:
                self.metrics.incr(
                    "feedback.ingress_dropped", self._ingress_dropped
                )
        if self._observer is not None:
            self._observer.finish_run()
            self._observer = None
        return RunResult(
            outputs=outputs, metrics=self.metrics, dropped=dropped
        )

    # -- live plan migration -----------------------------------------------

    def migrate_plan(
        self, new_plan: Plan, allow_io_changes: bool = False
    ) -> None:
        """Swap the running engine onto ``new_plan`` without losing state.

        The adaptive layer (:mod:`repro.adaptive`) calls this at a
        punctuation boundary — never mid-:meth:`feed` — to apply a plan
        revision (a re-ordered filter chain, a
        ``FixedFilterChain``/``Eddy`` swap) to a standing query.  The
        migration reuses the PR 3 snapshot protocol: every old operator
        is snapshotted by name, and every new-plan operator with a
        matching name is ``reset()`` then ``restore()``-d from that
        snapshot, so stateful operators (aggregates, windows) carry
        their open groups across the swap and no tuple is lost or
        duplicated.  New-plan operators without a predecessor start
        fresh; old operators absent from the new plan are dropped.

        By default the new plan must keep the same input and output
        names.  ``allow_io_changes=True`` lifts that restriction for
        multi-query DAGs whose input/output sets change as standing
        queries register and deregister: surviving outputs keep their
        accumulated elements, new outputs start empty, and removed
        outputs are discarded (capture them with :meth:`peek_output`
        first if they must survive).  Because name-keyed state transfer
        is only safe when names are unambiguous, the relaxed path also
        requires unique operator names on both sides.

        Accumulated outputs, metrics, the observer, and the overload
        guard all survive — metrics stay keyed by operator name, so a
        migrated operator keeps accruing into the same counters.
        """
        if self._outputs is None:
            raise PlanError("Engine.migrate_plan() called before start()")
        new_plan.validate()
        if not allow_io_changes:
            if set(new_plan.inputs) != set(self.plan.inputs):
                raise PlanError(
                    f"migration cannot change plan inputs: "
                    f"{sorted(self.plan.inputs)} -> {sorted(new_plan.inputs)}"
                )
            if set(new_plan.outputs) != set(self.plan.outputs):
                raise PlanError(
                    f"migration cannot change plan outputs: "
                    f"{sorted(self.plan.outputs)} -> "
                    f"{sorted(new_plan.outputs)}"
                )
        else:
            self.plan.ensure_unique_names()
            new_plan.ensure_unique_names()
        states = {
            op.name: op.snapshot() for op in self.plan.topological_order()
        }
        for op in new_plan.topological_order():
            op.reset()
            if op.name in states:
                op.restore(states[op.name])
            self.metrics.operator_kinds[op.name] = getattr(
                op, "kind", type(op).__name__.lower()
            )
            for sub in getattr(op, "constituents", ()):
                self.metrics.operator_kinds[sub.name] = getattr(
                    sub, "kind", type(sub).__name__.lower()
                )
        self.plan = new_plan
        if allow_io_changes:
            old_outputs = self._outputs
            self._outputs = {
                name: old_outputs.get(name, [])
                for name in new_plan.outputs
            }
        if self.guard is not None:
            rebind = getattr(self.guard, "rebind", None)
            if rebind is not None:
                rebind(new_plan)
        if self._feedback is not None:
            self._bind_feedback()

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Capture a consistent snapshot of the running engine.

        Must be called between :meth:`start` and :meth:`finish`, at an
        epoch boundary (i.e. not mid-:meth:`feed`).  The snapshot is
        detached: later processing does not mutate it, and one
        checkpoint can seed multiple :meth:`restore_checkpoint` calls.
        """
        if self._outputs is None:
            raise PlanError("Engine.checkpoint() called before start()")
        names: list[str] = []
        states: list[object] = []
        for op in self.plan.topological_order():
            names.append(op.name)
            states.append(op.snapshot())
        watermarks: dict[str, float | None] = {}
        for out_name, elements in self._outputs.items():
            mark: float | None = None
            for el in reversed(elements):
                if isinstance(el, Punctuation):
                    mark = el.ts
                    break
            watermarks[out_name] = mark
        advice_state = (
            self._advice.snapshot() if self._advice is not None else None
        )
        guard_fb = getattr(self.guard, "feedback_snapshot", None)
        guard_state = guard_fb() if guard_fb is not None else None
        feedback = (
            {"advice": advice_state, "guard": guard_state}
            if advice_state is not None or guard_state is not None
            else None
        )
        return EngineCheckpoint(
            operator_names=names,
            operator_states=states,
            output_lengths={
                name: len(els) for name, els in self._outputs.items()
            },
            watermarks=watermarks,
            feedback=feedback,
        )

    def restore_checkpoint(self, cp: EngineCheckpoint) -> None:
        """Rewind the engine to a previously captured checkpoint.

        Operator state is restored in topological order and each
        output is truncated to its checkpointed length, so re-feeding
        the elements that originally followed the checkpoint replays
        byte-identical results.
        """
        if self._outputs is None:
            raise PlanError(
                "Engine.restore_checkpoint() called before start()"
            )
        ops = list(self.plan.topological_order())
        names = [op.name for op in ops]
        if names != cp.operator_names:
            raise PlanError(
                f"checkpoint does not match plan: expected operators "
                f"{cp.operator_names}, plan has {names}"
            )
        for op, state in zip(ops, cp.operator_states):
            op.reset()
            op.restore(state)
        for out_name, length in cp.output_lengths.items():
            if out_name not in self._outputs:
                raise PlanError(
                    f"checkpoint references unknown output {out_name!r}"
                )
            del self._outputs[out_name][length:]
        feedback = getattr(cp, "feedback", None)
        advice_state = feedback.get("advice") if feedback else None
        if advice_state is not None:
            if self._advice is None:
                self._advice = AdviceTable()
            self._advice.restore(advice_state)
        elif self._advice is not None:
            self._advice.reset()
        guard_restore = getattr(self.guard, "feedback_restore", None)
        if guard_restore is not None:
            guard_restore(feedback.get("guard") if feedback else None)
        # Per-epoch observation (queue-depth / watermark gauges and the
        # observer's stream-progress markers) describes positions that
        # were just rolled back; left alone, a replayed trace would keep
        # sampling the pre-restore watermark into the gauges.  Reset so
        # replay produces exactly the samples of a fresh run from here.
        if self._observer is not None:
            self._observer.rewind()
        else:
            self.metrics.gauges.clear()

    # -- internals --------------------------------------------------------

    def _resolve_sources(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> dict[str, Source]:
        return resolve_sources(self.plan, sources)

    def _dispatch(
        self,
        operator,
        element: Element,
        port: int,
        outputs: dict[str, list[Element]],
    ) -> None:
        m = self.metrics.for_operator(operator.name)
        if isinstance(element, Record):
            m.records_in += 1
        else:
            m.punctuations_in += 1
        m.invocations += 1
        m.busy_time += operator.cost_per_tuple
        obs = self._observer
        if obs is None:
            produced = operator.process(element, port)
        else:
            # Inline per-operator sampling: untimed path = one decrement.
            m.sample_tick -= 1
            if m.sample_tick <= 0:
                produced = obs.timed_process(operator, element, port, m)
            else:
                produced = operator.process(element, port)
        for out in produced:
            if isinstance(out, Record):
                m.records_out += 1
            else:
                m.punctuations_out += 1
        self._propagate(operator, produced, outputs)

    def _dispatch_batch(
        self,
        operator,
        elements: Sequence[Element],
        port: int,
        outputs: dict[str, list[Element]],
    ) -> None:
        if not elements:
            return
        if self._columnar and operator.supports_columns():
            # Columnar tier: convert maximal record runs to column
            # batches; punctuations dispatch individually in between,
            # preserving exact stream positions.
            run: list[Element] = []
            for el in elements:
                if isinstance(el, Punctuation):
                    if run:
                        self._dispatch_columns(
                            operator,
                            ColumnBatch.from_rows(run, self._backend_eff),
                            port,
                            outputs,
                        )
                        run = []
                    self._dispatch(operator, el, port, outputs)
                else:
                    run.append(el)
            if run:
                self._dispatch_columns(
                    operator,
                    ColumnBatch.from_rows(run, self._backend_eff),
                    port,
                    outputs,
                )
            return
        m = self.metrics.for_operator(operator.name)
        n_punct = 0
        for el in elements:
            if isinstance(el, Punctuation):
                n_punct += 1
        m.records_in += len(elements) - n_punct
        m.punctuations_in += n_punct
        m.invocations += 1
        m.batches_in += 1
        m.busy_time += operator.cost_per_tuple * len(elements)
        settling = getattr(operator, "drain_attribution", None) is not None
        if settling:
            wall0 = m.wall_time
            timed0 = m.timed_invocations
        obs = self._observer
        if obs is None:
            produced = operator.process_batch(elements, port)
        else:
            m.sample_tick -= 1
            if m.sample_tick <= 0:
                produced = obs.timed_process_batch(
                    operator, elements, port, m
                )
            else:
                produced = operator.process_batch(elements, port)
        for out in produced:
            if isinstance(out, Record):
                m.records_out += 1
            else:
                m.punctuations_out += 1
        if settling:
            self._settle_constituents(operator, m, wall0, timed0)
        self._propagate_batch(operator, produced, outputs)

    def _dispatch_columns(
        self,
        operator,
        batch: ColumnBatch,
        port: int,
        outputs: dict[str, list[Element]],
    ) -> None:
        if batch.length == 0:
            return
        m = self.metrics.for_operator(operator.name)
        m.records_in += batch.length
        m.invocations += 1
        m.batches_in += 1
        m.busy_time += operator.cost_per_tuple * batch.length
        settling = getattr(operator, "drain_attribution", None) is not None
        if settling:
            wall0 = m.wall_time
            timed0 = m.timed_invocations
        obs = self._observer
        if obs is None:
            produced = operator.process_columns(batch, port)
        else:
            m.sample_tick -= 1
            if m.sample_tick <= 0:
                produced = obs.timed_process_columns(operator, batch, port, m)
            else:
                produced = operator.process_columns(batch, port)
        if isinstance(produced, ColumnBatch):
            m.records_out += produced.length
            if settling:
                self._settle_constituents(operator, m, wall0, timed0)
            self._propagate_columns(operator, produced, outputs)
        else:
            for out in produced:
                if isinstance(out, Record):
                    m.records_out += 1
                else:
                    m.punctuations_out += 1
            if settling:
                self._settle_constituents(operator, m, wall0, timed0)
            self._propagate_batch(operator, produced, outputs)

    def _settle_constituents(self, operator, m, wall0, timed0) -> None:
        """Fold a fused operator's per-stage tallies into the metrics of
        its constituents, so observability and the adaptive controller
        keep seeing the individual operators.

        The fused node's sampled ``wall_time`` since ``wall0`` is
        distributed across constituents pro rata by records_in, and the
        fused node's own wall/timed counters are rolled back so chain
        cost totals (``AdaptiveController._record_cost``) don't count
        the same measured time twice.
        """
        tallies = operator.drain_attribution()
        if not tallies:
            return
        costs = {op.name: op.cost_per_tuple for op in operator.constituents}
        wall_delta = m.wall_time - wall0
        timed_delta = m.timed_invocations - timed0
        total_in = 0
        for t in tallies.values():
            total_in += t[0]
        for name, t in tallies.items():
            cm = self.metrics.for_operator(name)
            cm.records_in += t[0]
            cm.records_out += t[1]
            cm.punctuations_in += t[2]
            cm.punctuations_out += t[3]
            cm.invocations += t[4]
            cm.batches_in += t[5]
            cm.busy_time += costs.get(name, 0.0) * (t[0] + t[2])
            if timed_delta > 0:
                cm.timed_invocations += timed_delta
                if total_in > 0:
                    cm.wall_time += wall_delta * (t[0] / total_in)
        if timed_delta > 0:
            m.wall_time = wall0
            m.timed_invocations = timed0

    def _propagate(
        self, operator, produced: list[Element], outputs: dict[str, list[Element]]
    ) -> None:
        if not produced:
            return
        sink_names = self.plan.output_names_for(operator)
        for name in sink_names:
            outputs[name].extend(produced)
        for consumer, port in self.plan.successors(operator):
            for out in produced:
                self._dispatch(consumer, out, port, outputs)

    def _propagate_batch(
        self, operator, produced: list[Element], outputs: dict[str, list[Element]]
    ) -> None:
        # Whole-batch propagation preserves tuple-at-a-time output order:
        # each consumer already received every produced element (in
        # order) before the next consumer in the per-element path too.
        if not produced:
            return
        for name in self.plan.output_names_for(operator):
            outputs[name].extend(produced)
        for consumer, port in self.plan.successors(operator):
            self._dispatch_batch(consumer, produced, port, outputs)

    def _propagate_columns(
        self, operator, batch: ColumnBatch, outputs: dict[str, list[Element]]
    ) -> None:
        # Column batches flow onward in columnar form to capable
        # consumers; rows are rebuilt once at the first boundary that
        # needs them (plan outputs or tuple-only consumers).
        if batch.length == 0:
            return
        rows: list[Element] | None = None
        for name in self.plan.output_names_for(operator):
            if rows is None:
                rows = batch.to_rows()
            outputs[name].extend(rows)
        for consumer, port in self.plan.successors(operator):
            if consumer.supports_columns():
                self._dispatch_columns(consumer, batch, port, outputs)
            else:
                if rows is None:
                    rows = batch.to_rows()
                self._dispatch_batch(consumer, rows, port, outputs)

    def _flush_all(self, outputs: dict[str, list[Element]]) -> None:
        batched = self.batch_size is not None
        for operator in self.plan.topological_order():
            produced = operator.flush()
            if getattr(operator, "drain_attribution", None) is not None:
                # Settle tallies left by tuple-path dispatches (and the
                # flush itself); no timed window spans the flush, so
                # only the counts are distributed.
                m = self.metrics.for_operator(operator.name)
                self._settle_constituents(
                    operator, m, m.wall_time, m.timed_invocations
                )
            if produced:
                m = self.metrics.for_operator(operator.name)
                for out in produced:
                    if isinstance(out, Record):
                        m.records_out += 1
                    else:
                        m.punctuations_out += 1
                if batched:
                    self._propagate_batch(operator, produced, outputs)
                else:
                    self._propagate(operator, produced, outputs)


def resolve_sources(
    plan: Plan, sources: Sequence[Source] | Mapping[str, Source]
) -> dict[str, Source]:
    """Match ``sources`` to ``plan``'s declared inputs, by name."""
    if isinstance(sources, Mapping):
        by_name = dict(sources)
    else:
        by_name = {src.name: src for src in sources}
    missing = set(plan.inputs) - set(by_name)
    if missing:
        raise PlanError(f"no source provided for inputs {sorted(missing)}")
    extra = set(by_name) - set(plan.inputs)
    if extra:
        raise PlanError(f"sources {sorted(extra)} match no plan input")
    return by_name


def run_plan(
    plan: Plan,
    sources: Sequence[Source] | Mapping[str, Source],
    batch_size: int | str | None = None,
    observe=None,
    representation: str = "tuple",
    column_backend: str | None = None,
) -> RunResult:
    """One-shot convenience: build an :class:`Engine` and run it.

    ``batch_size=None`` executes tuple-at-a-time; an integer enables the
    micro-batched path (identical outputs, amortized dispatch);
    ``"auto"`` selects :data:`Engine.DEFAULT_BATCH_SIZE`.  ``observe``
    enables wall-clock measurement (see :mod:`repro.observe`).
    ``representation="columnar"`` (requires a batch size) runs
    columnar-capable operators on struct-of-arrays batches — same
    outputs again, vectorized kernels (see :mod:`repro.columnar`).
    """
    return Engine(
        plan,
        batch_size=batch_size,
        observe=observe,
        representation=representation,
        column_backend=column_backend,
    ).run(sources)
