"""Execution metrics.

Both execution modes record per-operator counters; simulations also
record time series (queue memory per tick, cumulative outputs) used by
the scheduling/shedding experiments (slides 42-44).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["OperatorMetrics", "TimeSeries", "MetricsRegistry"]


@dataclass
class OperatorMetrics:
    """Lifetime counters for one operator."""

    records_in: int = 0
    records_out: int = 0
    punctuations_in: int = 0
    punctuations_out: int = 0
    invocations: int = 0
    busy_time: float = 0.0
    #: Micro-batches dispatched to the operator (0 when the engine runs
    #: tuple-at-a-time; each batch also counts one invocation).
    batches_in: int = 0

    @property
    def observed_selectivity(self) -> float:
        """Output/input ratio actually observed (records only).

        Returns ``nan`` when the operator has seen no input: "no
        evidence" must stay distinguishable from "drops everything"
        (selectivity 0.0), otherwise the rate-based optimizer would
        order a never-fed operator as if it were a perfect filter.
        """
        if self.records_in == 0:
            return float("nan")
        return self.records_out / self.records_in

    @property
    def avg_batch_size(self) -> float:
        """Mean elements per dispatched micro-batch (``nan`` if none)."""
        if self.batches_in == 0:
            return float("nan")
        return (self.records_in + self.punctuations_in) / self.batches_in


class TimeSeries:
    """An append-only (t, value) series with simple reductions."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def at(self, t: float) -> float:
        """Value at the greatest recorded time ``<= t`` (step semantics)."""
        result = 0.0
        for ti, vi in zip(self.times, self.values):
            if ti > t:
                break
            result = vi
        return result


class MetricsRegistry:
    """Per-run collection of operator metrics and named time series."""

    def __init__(self) -> None:
        self.operators: dict[str, OperatorMetrics] = {}
        self.series: dict[str, TimeSeries] = {}
        #: Free-form named counters (overload drops, supervisor retries,
        #: replayed epochs, ...) that do not belong to one operator.
        self.counters: dict[str, float] = {}

    def incr(self, name: str, by: float = 1.0) -> None:
        """Increment the named run-level counter."""
        self.counters[name] = self.counters.get(name, 0.0) + by

    def for_operator(self, name: str) -> OperatorMetrics:
        if name not in self.operators:
            self.operators[name] = OperatorMetrics()
        return self.operators[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def summary(self) -> dict[str, dict[str, float | None]]:
        out: dict[str, dict[str, float | None]] = {}
        for name, m in self.operators.items():
            selectivity = m.observed_selectivity
            avg_batch = m.avg_batch_size
            out[name] = {
                "records_in": m.records_in,
                "records_out": m.records_out,
                "invocations": m.invocations,
                "busy_time": round(m.busy_time, 9),
                # NaN is not valid strict JSON; report the no-data cases
                # as None so summaries stay serializable.
                "observed_selectivity": (
                    None if math.isnan(selectivity) else round(selectivity, 6)
                ),
                "batches_in": m.batches_in,
                "avg_batch_size": (
                    None if math.isnan(avg_batch) else round(avg_batch, 3)
                ),
            }
        return out
