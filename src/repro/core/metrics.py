"""Execution metrics.

Both execution modes record per-operator counters; simulations also
record time series (queue memory per tick, cumulative outputs) used by
the scheduling/shedding experiments (slides 42-44).

Two kinds of measurement coexist per operator:

* ``busy_time`` — *modeled* virtual service time, charged from
  ``cost_per_tuple``.  The simulator and the scheduling experiments
  reason in these units, so they are deterministic and hardware-free.
* ``wall_time`` — *measured* wall-clock seconds, recorded by the
  :mod:`repro.observe` layer (``perf_counter`` spans, optionally
  sampled).  Rate-based optimization and overload control can consume
  these instead of the model (slides 41-44 presume the DSMS can measure
  itself).

The registry also carries the observability primitives those
measurements land in: fixed-bucket :class:`FixedHistogram` (latency and
batch-size distributions), last/min/max :class:`Gauge` (queue depth,
watermark lag), free-form run counters, and finished trace spans.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "OperatorMetrics",
    "TimeSeries",
    "Gauge",
    "FixedHistogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "BATCH_BUCKETS",
]

#: Default per-dispatch latency buckets (seconds): 1µs .. 1s, roughly
#: geometric.  The +inf overflow bucket is implicit.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
)

#: Default batch-size buckets (elements per dispatched micro-batch).
BATCH_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


@dataclass
class OperatorMetrics:
    """Lifetime counters for one operator."""

    records_in: int = 0
    records_out: int = 0
    punctuations_in: int = 0
    punctuations_out: int = 0
    invocations: int = 0
    busy_time: float = 0.0
    #: Micro-batches dispatched to the operator (0 when the engine runs
    #: tuple-at-a-time; each batch also counts one invocation).
    batches_in: int = 0
    #: Estimated wall-clock seconds spent inside the operator's
    #: ``process``/``process_batch`` calls (self time, excluding
    #: downstream propagation).  Under 1-in-N sampling each measured
    #: span is charged N times, so this stays an estimate of the total.
    #: 0.0 when no observer was attached.
    wall_time: float = 0.0
    #: Dispatches actually measured with ``perf_counter`` (<= invocations
    #: under sampling; 0 without an observer).
    timed_invocations: int = 0
    #: Observer sampling countdown — scheduling state, not a measurement.
    #: Kept per operator so a fixed dispatch pattern (e.g. a two-operator
    #: chain with an even stride) cannot alias the sampler onto a subset
    #: of operators; 0 means the next dispatch is timed, so every
    #: operator's first dispatch is always measured.
    sample_tick: int = 0

    @property
    def observed_selectivity(self) -> float:
        """Output/input ratio actually observed (records only).

        Returns ``nan`` when the operator has seen no input: "no
        evidence" must stay distinguishable from "drops everything"
        (selectivity 0.0), otherwise the rate-based optimizer would
        order a never-fed operator as if it were a perfect filter.
        """
        if self.records_in == 0:
            return float("nan")
        return self.records_out / self.records_in

    @property
    def avg_batch_size(self) -> float:
        """Mean elements per dispatched micro-batch (``nan`` if none)."""
        if self.batches_in == 0:
            return float("nan")
        return (self.records_in + self.punctuations_in) / self.batches_in

    @property
    def measured_rate(self) -> float:
        """Measured service rate in records/sec (``nan`` if unmeasured).

        ``records_in / wall_time`` — the operator's observed capacity,
        the quantity the rate-based optimizer (slide 41) needs instead
        of a modeled ``cost_per_tuple``.  ``nan`` when no observer
        timed this operator (absence of evidence, like
        :attr:`observed_selectivity`).
        """
        if self.wall_time <= 0.0 or self.records_in == 0:
            return float("nan")
        return self.records_in / self.wall_time


class TimeSeries:
    """An append-only (t, value) series with simple reductions.

    Times must be appended in non-decreasing order (every producer —
    simulation ticks, batch boundaries — already appends
    monotonically); :meth:`at` relies on that to binary-search.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def at(self, t: float) -> float:
        """Value at the greatest recorded time ``<= t`` (step semantics)."""
        index = bisect_right(self.times, t)
        if index == 0:
            return 0.0
        return self.values[index - 1]


class Gauge:
    """A sampled instantaneous value with last/min/max/mean tracking."""

    __slots__ = ("name", "last", "min", "max", "total", "samples")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.last = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0
        self.samples = 0

    def set(self, value: float) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.total += value
        self.samples += 1

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge's samples in (shard-merge discipline)."""
        if other.samples == 0:
            return
        self.last = other.last  # later merge input wins, like a re-sample
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.total += other.total
        self.samples += other.samples

    def snapshot(self) -> dict[str, float | int | None]:
        """JSON-safe summary (``None`` fields when never sampled)."""
        if self.samples == 0:
            return {
                "last": None, "min": None, "max": None,
                "mean": None, "samples": 0,
            }
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "samples": self.samples,
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, last={self.last}, n={self.samples})"


class FixedHistogram:
    """Fixed-boundary histogram with an implicit +inf overflow bucket.

    ``bounds`` are ascending bucket *upper* bounds; observation ``v``
    lands in the first bucket with ``v <= bound`` (Prometheus ``le``
    semantics).  Fixed buckets keep ``observe`` O(log B) with a bounded
    footprint — the low-overhead requirement of the observe layer —
    and make shard histograms mergeable by plain vector addition.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(
        self, name: str = "", bounds: Sequence[float] = LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("FixedHistogram needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly ascending: {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # [+inf overflow last]
        self.total = 0.0
        self.count = 0

    def observe(self, value: float, weight: int = 1) -> None:
        """Record ``value``; ``weight`` scales sampled observations."""
        self.counts[bisect_left(self.bounds, value)] += weight
        self.total += value * weight
        self.count += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the bucket where
        the cumulative count crosses ``q`` (inf for the overflow
        bucket, 0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1]; got {q}")
        if self.count == 0:
            return 0.0
        threshold = q * self.count
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            if cumulative >= threshold:
                return bound
        return math.inf

    def merge(self, other: "FixedHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.name!r} vs {other.name!r}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    def snapshot(self) -> dict:
        """JSON-safe summary; quantiles map +inf to ``None``."""
        def q(value: float) -> float | None:
            return None if math.isinf(value) else value

        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": q(self.quantile(0.50)),
            "p95": q(self.quantile(0.95)),
            "p99": q(self.quantile(0.99)),
            "buckets": {
                **{repr(b): c for b, c in zip(self.bounds, self.counts)},
                "+inf": self.counts[-1],
            },
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"FixedHistogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Per-run collection of operator metrics and named time series."""

    def __init__(self) -> None:
        self.operators: dict[str, OperatorMetrics] = {}
        self.series: dict[str, TimeSeries] = {}
        #: Free-form named counters (overload drops, supervisor retries,
        #: replayed epochs, ...) that do not belong to one operator.
        self.counters: dict[str, float] = {}
        #: Sampled instantaneous values (queue depths, watermark lag).
        self.gauges: dict[str, Gauge] = {}
        #: Fixed-bucket distributions (dispatch latency, batch sizes).
        self.histograms: dict[str, FixedHistogram] = {}
        #: Finished trace spans (:class:`repro.observe.Span`), in end
        #: order.  Plain data — picklable across shard/process merges.
        self.spans: list = []
        #: Operator-name -> operator kind (lowercase class name), for
        #: exporter labels.  Populated by the engine at start.
        self.operator_kinds: dict[str, str] = {}

    def incr(self, name: str, by: float = 1.0) -> None:
        """Increment the named run-level counter."""
        self.counters[name] = self.counters.get(name, 0.0) + by

    def for_operator(self, name: str) -> OperatorMetrics:
        if name not in self.operators:
            self.operators[name] = OperatorMetrics()
        return self.operators[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS
    ) -> FixedHistogram:
        if name not in self.histograms:
            self.histograms[name] = FixedHistogram(name, bounds)
        return self.histograms[name]

    def summary(self) -> dict[str, dict[str, float | None]]:
        out: dict[str, dict[str, float | None]] = {}
        for name, m in self.operators.items():
            selectivity = m.observed_selectivity
            avg_batch = m.avg_batch_size
            rate = m.measured_rate
            out[name] = {
                "records_in": m.records_in,
                "records_out": m.records_out,
                "invocations": m.invocations,
                "busy_time": round(m.busy_time, 9),
                "wall_time": round(m.wall_time, 9),
                "timed_invocations": m.timed_invocations,
                # NaN is not valid strict JSON; report the no-data cases
                # as None so summaries stay serializable.
                "observed_selectivity": (
                    None if math.isnan(selectivity) else round(selectivity, 6)
                ),
                "measured_rate": (
                    None if math.isnan(rate) else round(rate, 3)
                ),
                "batches_in": m.batches_in,
                "avg_batch_size": (
                    None if math.isnan(avg_batch) else round(avg_batch, 3)
                ),
            }
        return out
