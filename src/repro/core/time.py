"""Virtual time for deterministic stream execution.

The library never reads wall-clock time.  All experiments run against a
:class:`VirtualClock` advanced by the engine, so results are exactly
reproducible (see DESIGN.md, "Determinism").
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    The engine advances the clock to each element's timestamp as it is
    processed; simulations advance it tick by tick.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t`` (never backwards)."""
        if t > self._now:
            self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt >= 0``."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
