"""Relation-to-stream operators (CQL, slide 25).

CQL queries map streams to relations (windows), relations to relations
(SQL), and relations back to streams via three *streamify* operators:

* ``ISTREAM`` — emit a row when it **enters** the relation,
* ``DSTREAM`` — emit a row when it **leaves** the relation,
* ``RSTREAM`` — emit the **whole relation** at every instant.

:class:`IStream` here implements the monotone-query form (a row is
emitted on first appearance), which is exact for select-project-join
over append-only streams.  :class:`DStream` and :class:`RStream` require
the upstream to emit the relation's full contents at each timestamp
(snapshot stream); they diff/echo consecutive snapshots.
"""

from __future__ import annotations

from repro.core.tuples import Punctuation, Record
from repro.operators.base import Element, UnaryOperator

__all__ = ["IStream", "DStream", "RStream"]


def _row_key(record: Record) -> tuple:
    return tuple(sorted(record.values.items()))


class IStream(UnaryOperator):
    """Emit each distinct row the first time it appears."""

    def __init__(self, name: str = "istream", cost_per_tuple: float = 1.0) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self._seen: set[tuple] = set()

    def on_record(self, record: Record, port: int) -> list[Element]:
        key = _row_key(record)
        if key in self._seen:
            return []
        self._seen.add(key)
        return [record]

    def reset(self) -> None:
        self._seen.clear()

    def snapshot(self) -> object:
        return {"seen": set(self._seen)}

    def restore(self, state: object) -> None:
        self._seen = set(state["seen"])

    def memory(self) -> float:
        return float(len(self._seen))


class _SnapshotDiff(UnaryOperator):
    """Shared machinery: buffer rows per instant, act on instant change."""

    def __init__(self, name: str, cost_per_tuple: float = 1.0) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self._current_ts: float | None = None
        self._current: dict[tuple, Record] = {}
        self._previous: dict[tuple, Record] = {}

    def _roll(self, new_ts: float) -> list[Element]:
        out = self._emit_on_roll()
        self._previous = self._current
        self._current = {}
        self._current_ts = new_ts
        return out

    def _emit_on_roll(self) -> list[Element]:
        raise NotImplementedError

    def on_record(self, record: Record, port: int) -> list[Element]:
        out: list[Element] = []
        if self._current_ts is None:
            self._current_ts = record.ts
        elif record.ts != self._current_ts:
            out = self._roll(record.ts)
        self._current[_row_key(record)] = record
        return out

    def flush(self) -> list[Element]:
        if self._current_ts is None:
            return []
        out = self._roll(float("inf"))
        # After the final snapshot, the relation ceases to exist; a
        # DStream emits the remaining rows as deletions.
        out.extend(self._emit_final())
        return out

    def _emit_final(self) -> list[Element]:
        return []

    def reset(self) -> None:
        self._current_ts = None
        self._current = {}
        self._previous = {}

    def snapshot(self) -> object:
        return {
            "current_ts": self._current_ts,
            "current": dict(self._current),
            "previous": dict(self._previous),
        }

    def restore(self, state: object) -> None:
        self._current_ts = state["current_ts"]
        self._current = dict(state["current"])
        self._previous = dict(state["previous"])

    def memory(self) -> float:
        return float(len(self._current) + len(self._previous))


class DStream(_SnapshotDiff):
    """Emit rows present in the previous snapshot but not the current."""

    def __init__(self, name: str = "dstream", cost_per_tuple: float = 1.0) -> None:
        super().__init__(name, cost_per_tuple)

    def _emit_on_roll(self) -> list[Element]:
        dropped = [
            rec
            for key, rec in sorted(self._previous.items())
            if key not in self._current
        ]
        ts = self._current_ts if self._current_ts is not None else 0.0
        return [Record(r.values, ts=ts, seq=r.seq) for r in dropped]

    def _emit_final(self) -> list[Element]:
        # self._previous now holds the last snapshot (after _roll).
        return [rec for _key, rec in sorted(self._previous.items())]


class RStream(_SnapshotDiff):
    """Re-emit the entire relation at every instant."""

    def __init__(self, name: str = "rstream", cost_per_tuple: float = 1.0) -> None:
        super().__init__(name, cost_per_tuple)

    def _emit_on_roll(self) -> list[Element]:
        # _roll is called when the instant completes; ``_current`` holds
        # the finished snapshot, which is the relation to re-emit.
        return [rec for _key, rec in sorted(self._current.items())]
