"""Selection: per-element filtering (slide 29).

Selections are local, per-element operators — the easy case for streams.
Punctuations pass through unchanged: a predicate only removes records,
so any assertion about future records still holds on the output.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.tuples import Punctuation, Record
from repro.errors import ColumnUnavailable
from repro.operators.base import Element, UnaryOperator

__all__ = ["Select"]


class Select(UnaryOperator):
    """Emit exactly the records satisfying ``predicate``.

    Parameters
    ----------
    predicate:
        ``predicate(record) -> bool``.
    selectivity:
        Estimated pass fraction, used by the optimizer and by the
        simulator's abstract mode; the operator's actual behaviour
        depends only on ``predicate``.
    """

    def __init__(
        self,
        predicate: Callable[[Record], bool],
        name: str = "select",
        cost_per_tuple: float = 1.0,
        selectivity: float = 0.5,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.predicate = predicate

    def on_record(self, record: Record, port: int) -> list[Element]:
        if self.predicate(record):
            return [record]
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # One output list and one predicate lookup for the whole batch
        # instead of a list allocation per element.
        self._validate_port(port)
        predicate = self.predicate
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
            elif predicate(el):
                append(el)
        return out

    def supports_columns(self) -> bool:
        # Vectorizable only when the predicate is an expression that can
        # evaluate over a whole batch (e.g. repro.columnar.Col trees).
        return hasattr(self.predicate, "mask")

    def process_columns(self, batch, port: int = 0):
        self._validate_port(port)
        try:
            mask = self.predicate.mask(batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
        return batch.compress(mask)
