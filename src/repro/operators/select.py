"""Selection: per-element filtering (slide 29).

Selections are local, per-element operators — the easy case for streams.
Punctuations pass through unchanged: a predicate only removes records,
so any assertion about future records still holds on the output.
"""

from __future__ import annotations

from typing import Callable

from repro.core.tuples import Record
from repro.operators.base import Element, UnaryOperator

__all__ = ["Select"]


class Select(UnaryOperator):
    """Emit exactly the records satisfying ``predicate``.

    Parameters
    ----------
    predicate:
        ``predicate(record) -> bool``.
    selectivity:
        Estimated pass fraction, used by the optimizer and by the
        simulator's abstract mode; the operator's actual behaviour
        depends only on ``predicate``.
    """

    def __init__(
        self,
        predicate: Callable[[Record], bool],
        name: str = "select",
        cost_per_tuple: float = 1.0,
        selectivity: float = 0.5,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.predicate = predicate

    def on_record(self, record: Record, port: int) -> list[Element]:
        if self.predicate(record):
            return [record]
        return []
