"""Selection: per-element filtering (slide 29).

Selections are local, per-element operators — the easy case for streams.
Punctuations pass through unchanged: a predicate only removes records,
so any assertion about future records still holds on the output.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.tuples import FeedbackPunctuation, Punctuation, Record
from repro.errors import ColumnUnavailable, PlanError
from repro.operators.base import Element, UnaryOperator

__all__ = ["Select"]


class Select(UnaryOperator):
    """Emit exactly the records satisfying ``predicate``.

    Parameters
    ----------
    predicate:
        ``predicate(record) -> bool``.
    selectivity:
        Estimated pass fraction, used by the optimizer and by the
        simulator's abstract mode; the operator's actual behaviour
        depends only on ``predicate``.
    """

    def __init__(
        self,
        predicate: Callable[[Record], bool],
        name: str = "select",
        cost_per_tuple: float = 1.0,
        selectivity: float = 0.5,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.predicate = predicate
        self._advice = None  # lazily-built repro.feedback AdviceTable

    def on_record(self, record: Record, port: int) -> list[Element]:
        if self._advice is not None and not self._advice.admit(record):
            return []
        if self.predicate(record):
            return [record]
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # One output list and one predicate lookup for the whole batch
        # instead of a list allocation per element.
        self._validate_port(port)
        predicate = self.predicate
        advice = self._advice
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
            elif advice is not None and not advice.admit(el):
                pass
            elif predicate(el):
                append(el)
        return out

    def supports_columns(self) -> bool:
        # Vectorizable only when the predicate is an expression that can
        # evaluate over a whole batch (e.g. repro.columnar.Col trees) —
        # and no feedback advice is installed (advice filters per record).
        if self._advice is not None and len(self._advice):
            return False
        return hasattr(self.predicate, "mask")

    # -- feedback ----------------------------------------------------------

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        # A selection *acts* by pre-dropping the advised slice before
        # paying the predicate cost, and still forwards upstream so
        # producers closer to the source can stop doing wasted work too.
        if self._advice is None:
            from repro.feedback.table import AdviceTable

            self._advice = AdviceTable()
        self._advice.apply(fb)
        return [fb]

    def snapshot(self) -> object:
        if self._advice is None:
            return None
        return self._advice.snapshot()

    def restore(self, state: object) -> None:
        if state is None:
            if self._advice is not None:
                self._advice.reset()
            return
        if not isinstance(state, list):
            raise PlanError(
                f"operator {self.name!r} (Select) is stateless apart from "
                f"feedback advice; cannot restore a "
                f"{type(state).__name__} snapshot"
            )
        if self._advice is None:
            from repro.feedback.table import AdviceTable

            self._advice = AdviceTable()
        self._advice.restore(state)

    def reset(self) -> None:
        if self._advice is not None:
            self._advice.reset()

    def process_columns(self, batch, port: int = 0):
        self._validate_port(port)
        try:
            mask = self.predicate.mask(batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
        return batch.compress(mask)
