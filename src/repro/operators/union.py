"""Stream merge operators (slide 13: "merging data streams").

:class:`Union` interleaves two inputs in arrival order (the engine
already delivers globally ts-ordered input, so no buffering is needed).

:class:`OrderedMerge` enforces an output ordered by the ordering
attribute even when inputs advance at different speeds: it buffers each
input and releases elements only up to the minimum progress across
inputs, where progress is advanced by record timestamps and by
punctuations.  This is how Gigascope turns a blocking merge into a
non-blocking one using ordering properties (slide 48).
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.tuples import Punctuation, Record
from repro.operators.base import BinaryOperator, Element

__all__ = ["Union", "OrderedMerge"]


class Union(BinaryOperator):
    """Bag union of two streams; forwards elements as they arrive."""

    def __init__(self, name: str = "union", cost_per_tuple: float = 1.0) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)

    def on_record(self, record: Record, port: int) -> list[Element]:
        return [record]

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        # A punctuation on one input says nothing about the other; it
        # cannot be propagated as-is without being wrong for the union.
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        return [el for el in elements if not isinstance(el, Punctuation)]


class OrderedMerge(BinaryOperator):
    """Merge two ts-ordered streams into one ts-ordered stream.

    Elements are buffered per input; an element is released once its
    timestamp is <= the progress watermark of the *other* input, making
    the merge safe regardless of interleaving.  ``ts_attr`` names the
    ordering attribute used for watermark punctuations.
    """

    def __init__(
        self,
        name: str = "merge",
        ts_attr: str = "ts",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.ts_attr = ts_attr
        self._heap: list[tuple[float, int, int, Element]] = []
        self._progress = [float("-inf"), float("-inf")]
        self._counter = 0

    def _release(self) -> list[Element]:
        watermark = min(self._progress)
        out: list[Element] = []
        while self._heap and self._heap[0][0] <= watermark:
            _, _, _, el = heapq.heappop(self._heap)
            out.append(el)
        return out

    def on_record(self, record: Record, port: int) -> list[Element]:
        self._progress[port] = max(self._progress[port], record.ts)
        heapq.heappush(
            self._heap, (record.ts, record.seq, self._counter, record)
        )
        self._counter += 1
        return self._release()

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound = punct.bound_for(self.ts_attr)
        if bound is None:
            bound = punct.ts
        self._progress[port] = max(self._progress[port], bound)
        released = self._release()
        if min(self._progress) >= bound:
            released.append(punct)
        return released

    def flush(self) -> list[Element]:
        out = [el for _, _, _, el in sorted(self._heap)]
        self._heap.clear()
        return out

    def reset(self) -> None:
        self._heap.clear()
        self._progress = [float("-inf"), float("-inf")]
        self._counter = 0

    def snapshot(self) -> object:
        return {
            "heap": list(self._heap),
            "progress": list(self._progress),
            "counter": self._counter,
        }

    def restore(self, state: object) -> None:
        self._heap = list(state["heap"])
        self._progress = list(state["progress"])
        self._counter = state["counter"]

    def memory(self) -> float:
        return float(len(self._heap))
