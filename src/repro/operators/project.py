"""Projection operators (slide 29).

Duplicate-*preserving* projection is a local, per-element operator.  The
tutorial notes two stream-specific wrinkles:

* a projection on an ordering-attribute stream must retain the ordering
  attribute for the output to remain a stream in that order ([JMS95]);
  :class:`Project` enforces this when ``ordering`` is supplied;
* duplicate-*eliminating* projection is like grouping — it needs state.
  :class:`DistinctProject` keeps the set of seen keys, and can bound that
  state with a window or purge it on punctuation.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core.tuples import FeedbackPunctuation, Punctuation, Record
from repro.errors import ColumnUnavailable, SchemaError
from repro.operators.base import Element, UnaryOperator

__all__ = ["Project", "DistinctProject"]

Extractor = Callable[[Record], Any]


class Project(UnaryOperator):
    """Duplicate-preserving projection / expression evaluation.

    ``columns`` maps output attribute names to either an input attribute
    name (plain rename/keep) or a callable computing the value from the
    record.  When ``ordering`` is given it must be among the outputs —
    projecting away the ordering attribute would destroy streamability.
    """

    def __init__(
        self,
        columns: Sequence[str] | Mapping[str, str | Extractor],
        name: str = "project",
        ordering: str | None = None,
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        if not isinstance(columns, Mapping):
            columns = {c: c for c in columns}
        if ordering is not None and ordering not in columns:
            raise SchemaError(
                f"projection must retain ordering attribute {ordering!r} "
                f"to produce an ordered stream (JMS95)"
            )
        self.columns: dict[str, str | Extractor] = dict(columns)
        self.ordering = ordering

    def on_record(self, record: Record, port: int) -> list[Element]:
        out: dict[str, Any] = {}
        for out_name, spec in self.columns.items():
            out[out_name] = spec(record) if callable(spec) else record[spec]
        return [record.with_values(out)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        columns = list(self.columns.items())
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = {
                name: (spec(el) if callable(spec) else el[spec])
                for name, spec in columns
            }
            append(el.with_values(values))
        return out

    def supports_columns(self) -> bool:
        # Every spec must be a plain attribute keep/rename or an
        # expression with batch evaluation (repro.columnar.Expr).
        return all(
            isinstance(spec, str) or hasattr(spec, "values")
            for spec in self.columns.values()
        )

    def _transform_columns(self, batch):
        """Projected columns over ``batch`` (raises ColumnUnavailable)."""
        from repro.columnar.expr import column_of

        out = {}
        for name, spec in self.columns.items():
            if isinstance(spec, str):
                out[name] = batch.column(spec)
            else:
                out[name] = column_of(spec.values(batch), batch)
        return batch.with_columns(out)

    def process_columns(self, batch, port: int = 0):
        self._validate_port(port)
        try:
            return self._transform_columns(batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)

    def feedback_mapping(self) -> dict[str, str]:
        """Output attr → input attr, for the translatable (plain) specs.

        Callable specs compute values the input stream does not carry;
        feedback naming them cannot be translated and is forwarded.
        """
        return {
            out: spec
            for out, spec in self.columns.items()
            if isinstance(spec, str)
        }

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        from repro.feedback.translate import translate_feedback

        translated = translate_feedback(fb, self.feedback_mapping())
        return [fb if translated is None else translated]


class DistinctProject(UnaryOperator):
    """Duplicate-eliminating projection.

    Emits the projected record the first time its key is seen.  State is
    the set of seen keys — unbounded on an unbounded stream unless either
    ``window`` (maximum key age in ordering-attribute units) bounds it or
    punctuations purge it (keys entirely covered by a punctuation can
    never repeat, so they are dropped).
    """

    def __init__(
        self,
        columns: Sequence[str],
        name: str = "distinct",
        window: float | None = None,
        cost_per_tuple: float = 1.0,
        selectivity: float = 0.5,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.columns = list(columns)
        self.window = window
        self._seen: dict[tuple, float] = {}

    def on_record(self, record: Record, port: int) -> list[Element]:
        key = record.key(self.columns)
        if self.window is not None:
            horizon = record.ts - self.window
            self._seen = {
                k: t for k, t in self._seen.items() if t >= horizon
            }
            if key in self._seen:
                self._seen[key] = record.ts
                return []
            self._seen[key] = record.ts
        else:
            if key in self._seen:
                return []
            self._seen[key] = record.ts
        values = {c: record[c] for c in self.columns}
        return [record.with_values(values)]

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound_attrs = {name for name, _ in punct.pattern}
        if set(self.columns) <= bound_attrs:
            # Keys fully described by the punctuation cannot recur.
            self._seen = {
                k: t
                for k, t in self._seen.items()
                if not punct.matches(
                    Record(dict(zip(self.columns, k)), ts=t)
                )
            }
        return [punct]

    def reset(self) -> None:
        self._seen.clear()

    def snapshot(self) -> object:
        return {"seen": dict(self._seen)}

    def restore(self, state: object) -> None:
        self._seen = dict(state["seen"])

    def memory(self) -> float:
        return float(len(self._seen))
