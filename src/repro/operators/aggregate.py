"""Grouped aggregation over streams (slides 34-37).

Two operators:

* :class:`Aggregate` — the classical blocking form: stream-in,
  relation-out.  Group states accumulate until end of stream (or until a
  punctuation closes a group early, which is what makes the operator
  non-blocking on punctuated streams — TMSF03).
* :class:`WindowedAggregate` — aggregation scoped by a window
  specification, the standard way to make aggregation non-blocking on
  unbounded streams (slide 26).  Tumbling windows emit a result row per
  (bucket, group) when the bucket closes; sliding/row/landmark windows
  emit the refreshed result as each tuple arrives.

The bounded-memory caveats of slide 35-36 (unbounded grouping attributes
or holistic aggregates ⇒ unbounded state) are observable through
:meth:`Operator.memory`; the static analysis lives in
:mod:`repro.aggregates.bounded`.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Mapping, Sequence

from repro.aggregates.functions import AggregateFunction
from repro.aggregates.spec import AggSpec
from repro.core.tuples import (
    FeedbackPunctuation,
    Punctuation,
    Record,
    Resume,
    WidenSlide,
)
from repro.errors import ColumnUnavailable, WindowError
from repro.operators.base import Element, UnaryOperator
from repro.windows.buffers import WindowBuffer, make_buffer
from repro.windows.spec import (
    LandmarkWindow,
    PartitionedWindow,
    PunctuationWindow,
    RowWindow,
    TimeWindow,
    TumblingWindow,
    WindowSpec,
)

__all__ = ["AggSpec", "Aggregate", "AttrGetter", "WindowedAggregate"]

Extractor = Callable[[Record], Any]
GroupItem = str | tuple[str, Extractor]


class AttrGetter:
    """Extractor for a plain grouping attribute.

    A distinguishable (and picklable) stand-in for the
    ``lambda r: r[attr]`` closure: the partition-parallel planner
    inspects ``group_by`` extractors to decide whether a grouping column
    is a raw attribute (so hash-partitioning on it colocates groups) or
    a derived expression (which it cannot see through).
    """

    __slots__ = ("attr",)

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def __call__(self, record: Record) -> Any:
        return record[self.attr]

    def __repr__(self) -> str:
        return f"AttrGetter({self.attr!r})"


def _normalize_group_by(
    group_by: Sequence[GroupItem],
) -> list[tuple[str, Extractor]]:
    normalized: list[tuple[str, Extractor]] = []
    for item in group_by:
        if isinstance(item, str):
            normalized.append((item, AttrGetter(item)))
        else:
            normalized.append(item)
    return normalized


class _GroupState:
    __slots__ = ("key_values", "states", "count")

    def __init__(self, key_values: dict, specs: Sequence[AggSpec]) -> None:
        self.key_values = key_values
        self.states = [spec.new_state() for spec in specs]
        self.count = 0


def _columnar_capable(group_by, aggregates) -> bool:
    """Whether group extractors and agg inputs vectorize over a batch.

    Plain attributes (:class:`AttrGetter` / str inputs) and columnar
    expressions qualify; opaque callables (lambdas) do not — they can
    only be evaluated record-at-a-time.
    """
    for _name, fn in group_by:
        if not (isinstance(fn, AttrGetter) or hasattr(fn, "values")):
            return False
    for spec in aggregates:
        inp = spec.input
        if inp is not None and not isinstance(inp, str) \
                and not hasattr(inp, "values"):
            return False
    return True


def _group_columns(group_by, batch) -> list[list]:
    """One native-valued column per grouping key (may raise
    :class:`~repro.errors.ColumnUnavailable`).

    Values must be *native* Python (``pylist``): group keys feed dict
    lookups and the ``repr``-sorted emission order, both of which must
    match the tuple path exactly.
    """
    from repro.columnar.batch import as_pylist
    from repro.columnar.expr import column_of

    cols = []
    for _name, fn in group_by:
        if isinstance(fn, AttrGetter):
            cols.append(batch.pylist(fn.attr))
        else:
            cols.append(as_pylist(column_of(fn.values(batch), batch)))
    return cols


def _spec_columns(aggregates, batch) -> list[list | None]:
    """One native-valued input column per agg spec (``None`` ≙ count)."""
    from repro.columnar.batch import as_pylist
    from repro.columnar.expr import column_of

    cols: list[list | None] = []
    for spec in aggregates:
        inp = spec.input
        if inp is None:
            cols.append(None)
        elif isinstance(inp, str):
            cols.append(batch.pylist(inp))
        else:
            cols.append(as_pylist(column_of(inp.values(batch), batch)))
    return cols


class Aggregate(UnaryOperator):
    """Blocking grouped aggregation: stream-in, relation-out.

    Results are emitted at :meth:`flush` (end of stream), or earlier for
    any group fully covered by an arriving punctuation.
    """

    def __init__(
        self,
        group_by: Sequence[GroupItem],
        aggregates: Sequence[AggSpec],
        having: Callable[[Record], bool] | None = None,
        name: str = "aggregate",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.group_by = _normalize_group_by(group_by)
        self.aggregates = list(aggregates)
        self.having = having
        self._groups: dict[tuple, _GroupState] = {}
        self._max_ts = 0.0

    def _group_key(self, record: Record) -> tuple[tuple, dict]:
        values = {name: fn(record) for name, fn in self.group_by}
        return tuple(values[name] for name, _ in self.group_by), values

    def on_record(self, record: Record, port: int) -> list[Element]:
        self._max_ts = max(self._max_ts, record.ts)
        key, values = self._group_key(record)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(values, self.aggregates)
            self._groups[key] = state
        for spec, fn_state in zip(self.aggregates, state.states):
            fn_state.add(spec.extract(record))
        state.count += 1
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # Records only accumulate state, so the whole batch folds into
        # the group table without any per-element list allocation.
        self._validate_port(port)
        groups = self._groups
        specs = self.aggregates
        out: list[Element] = []
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            if el.ts > self._max_ts:
                self._max_ts = el.ts
            key, values = self._group_key(el)
            state = groups.get(key)
            if state is None:
                state = _GroupState(values, specs)
                groups[key] = state
            for spec, fn_state in zip(specs, state.states):
                fn_state.add(spec.extract(el))
            state.count += 1
        return out

    def supports_columns(self) -> bool:
        return _columnar_capable(self.group_by, self.aggregates)

    def process_columns(self, batch, port: int = 0) -> list[Element]:
        self._validate_port(port)
        if batch.length == 0:
            return []
        try:
            key_cols = _group_columns(self.group_by, batch)
            spec_cols = _spec_columns(self.aggregates, batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
        mx = max(batch.ts_list())
        if mx > self._max_ts:
            self._max_ts = mx
        groups = self._groups
        specs = self.aggregates
        names = [name for name, _ in self.group_by]
        keys = zip(*key_cols) if key_cols else iter(
            [()] * batch.length  # global aggregation: one empty key
        )
        # Bucket row indices per key first, then fold group by group
        # with each state's add() bound once per batch instead of once
        # per row.  Every group still sees its own rows in stream order
        # (buckets are insertion-ordered, indices ascending), so
        # exact-sum states stay bit-identical to the tuple path.
        buckets: dict[tuple, list[int]] = {}
        buckets_get = buckets.get
        for i, key in enumerate(keys):
            b = buckets_get(key)
            if b is None:
                buckets[key] = [i]
            else:
                b.append(i)
        groups_get = groups.get
        for key, idxs in buckets.items():
            state = groups_get(key)
            if state is None:
                state = _GroupState(dict(zip(names, key)), specs)
                groups[key] = state
            state.count += len(idxs)
            for fn_state, col in zip(state.states, spec_cols):
                add = fn_state.add
                if col is None:
                    for _ in idxs:
                        add(1)
                else:
                    for i in idxs:
                        add(col[i])
        return []

    def _emit(self, state: _GroupState, ts: float) -> Record | None:
        values = dict(state.key_values)
        for spec, fn_state in zip(self.aggregates, state.states):
            values[spec.name] = fn_state.result()
        out = Record(values, ts=ts)
        if self.having is not None and not self.having(out):
            return None
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        """Close and emit groups no future record can extend."""
        pattern_attrs = {name for name, _ in punct.pattern}
        group_attrs = {name for name, _ in self.group_by}
        out: list[Element] = []
        if group_attrs <= pattern_attrs:
            closed = []
            for key, state in self._groups.items():
                probe = Record(state.key_values, ts=punct.ts)
                if punct.matches(probe):
                    closed.append(key)
            for key in sorted(closed, key=repr):
                emitted = self._emit(self._groups.pop(key), punct.ts)
                if emitted is not None:
                    out.append(emitted)
        out.append(punct)
        return out

    def flush(self) -> list[Element]:
        out: list[Element] = []
        for key in sorted(self._groups, key=repr):
            # Results summarize everything up to the last seen instant.
            emitted = self._emit(self._groups[key], ts=self._max_ts)
            if emitted is not None:
                out.append(emitted)
        self._groups.clear()
        return out

    def reset(self) -> None:
        self._groups.clear()
        self._max_ts = 0.0

    def snapshot(self) -> object:
        return {
            "groups": copy.deepcopy(self._groups),
            "max_ts": self._max_ts,
        }

    def restore(self, state: object) -> None:
        self._groups = copy.deepcopy(state["groups"])
        self._max_ts = state["max_ts"]

    def memory(self) -> float:
        return float(
            sum(
                sum(s.state_size() for s in g.states) or 1
                for g in self._groups.values()
            )
        )

    def feedback_mapping(self) -> dict[str, str]:
        """Output group attr → input attr, for plain-attribute groups."""
        return {
            name: fn.attr
            for name, fn in self.group_by
            if isinstance(fn, AttrGetter)
        }

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        # Feedback over the aggregate's *output* (group columns) names
        # the same attributes the input carries when the grouping is a
        # plain AttrGetter; aggregate-result columns don't exist
        # upstream, so advice naming them is forwarded untranslated.
        from repro.feedback.translate import translate_feedback

        translated = translate_feedback(fb, self.feedback_mapping())
        return [fb if translated is None else translated]

    @property
    def group_count(self) -> int:
        return len(self._groups)


class WindowedAggregate(UnaryOperator):
    """Aggregation scoped by a window specification.

    * ``TumblingWindow`` — one output row per (closed bucket, group),
      carrying the bucket id in attribute ``bucket_attr`` (default
      ``"tb"``, matching the GSQL idiom ``time/60 as tb``).  Buckets
      close when the watermark (max seen ts, or a punctuation bound)
      passes their end; remaining buckets close at flush.
    * ``TimeWindow`` / ``RowWindow`` / ``PartitionedWindow`` /
      ``LandmarkWindow`` — per-arrival emission of the refreshed
      aggregate for the arriving record's group.
    """

    def __init__(
        self,
        window: WindowSpec,
        group_by: Sequence[GroupItem],
        aggregates: Sequence[AggSpec],
        having: Callable[[Record], bool] | None = None,
        name: str = "window_aggregate",
        bucket_attr: str = "tb",
        ts_attr: str = "ts",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.window = window
        self.group_by = _normalize_group_by(group_by)
        self.aggregates = list(aggregates)
        self.having = having
        self.bucket_attr = bucket_attr
        self.ts_attr = ts_attr
        self._tumbling = isinstance(window, TumblingWindow)
        self._punctuated = isinstance(window, PunctuationWindow)
        if self._tumbling:
            self._buckets: dict[int, dict[tuple, _GroupState]] = {}
            self._watermark = float("-inf")
        elif self._punctuated:
            # Punctuation-based windows (slide 28): the window of a
            # group is delimited by the application's markers, so the
            # blocking Aggregate with punctuation-close semantics is
            # exactly the right machinery.
            if set(window.attrs) - {name for name, _f in self.group_by}:
                raise WindowError(
                    "punctuation window attributes must be grouped: "
                    f"{window.describe()}"
                )
            self._delegate = Aggregate(
                group_by, aggregates, having=having, name=f"{name}.groups"
            )
        else:
            if not isinstance(
                window,
                (TimeWindow, RowWindow, PartitionedWindow, LandmarkWindow),
            ):
                raise WindowError(
                    f"WindowedAggregate does not support {window.describe()}"
                )
            self._buffer: WindowBuffer = make_buffer(window)
        # WIDEN_SLIDE feedback thins the buffered (per-arrival) refresh
        # stream: emit every _emit_stride-th refresh only.
        self._emit_stride = 1
        self._emit_counter = 0

    # -- shared helpers ----------------------------------------------------

    def _group_values(self, record: Record) -> tuple[tuple, dict]:
        values = {name: fn(record) for name, fn in self.group_by}
        return tuple(values[name] for name, _ in self.group_by), values

    def _row(self, key_values: dict, states: Sequence[AggregateFunction],
             ts: float, extra: Mapping[str, Any] | None = None) -> Record | None:
        values = dict(key_values)
        if extra:
            values.update(extra)
        for spec, fn_state in zip(self.aggregates, states):
            values[spec.name] = fn_state.result()
        out = Record(values, ts=ts)
        if self.having is not None and not self.having(out):
            return None
        return out

    # -- tumbling path -------------------------------------------------------

    def _close_buckets(self, upto_ts: float) -> list[Element]:
        """Emit every bucket whose end <= upto_ts."""
        assert isinstance(self.window, TumblingWindow)
        out: list[Element] = []
        closeable = sorted(
            b
            for b in self._buckets
            if self.window.bucket_start(b + 1) <= upto_ts
        )
        for bucket in closeable:
            groups = self._buckets.pop(bucket)
            end_ts = self.window.bucket_start(bucket + 1)
            for key in sorted(groups, key=repr):
                state = groups[key]
                row = self._row(
                    state.key_values,
                    state.states,
                    ts=end_ts,
                    extra={self.bucket_attr: bucket},
                )
                if row is not None:
                    out.append(row)
        return out

    def on_record(self, record: Record, port: int) -> list[Element]:
        if self._tumbling:
            return self._on_record_tumbling(record)
        if self._punctuated:
            return self._delegate.on_record(record, port)
        return self._on_record_buffered(record)

    def _on_record_tumbling(self, record: Record) -> list[Element]:
        assert isinstance(self.window, TumblingWindow)
        self._watermark = max(self._watermark, record.ts)
        out = self._close_buckets(self._watermark)
        bucket = self.window.bucket_of(record.ts)
        groups = self._buckets.setdefault(bucket, {})
        key, values = self._group_values(record)
        state = groups.get(key)
        if state is None:
            state = _GroupState(values, self.aggregates)
            groups[key] = state
        for spec, fn_state in zip(self.aggregates, state.states):
            fn_state.add(spec.extract(record))
        state.count += 1
        return out

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        """Amortized tumbling-window path.

        The per-element path scans the open-bucket table on every record
        to find closeable buckets.  Here we track the earliest open
        bucket end and only scan when the watermark actually crosses it,
        which is exactly when the per-element scan would have found work.
        Non-tumbling windows emit per arrival and fall back to the
        element loop.
        """
        self._validate_port(port)
        if not self._tumbling:
            return super().process_batch(elements, port)
        window = self.window
        buckets = self._buckets
        specs = self.aggregates
        min_end = min(
            (window.bucket_start(b + 1) for b in buckets),
            default=float("inf"),
        )
        out: list[Element] = []
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                min_end = min(
                    (window.bucket_start(b + 1) for b in buckets),
                    default=float("inf"),
                )
                continue
            ts = el.ts
            if ts > self._watermark:
                self._watermark = ts
            if self._watermark >= min_end:
                out.extend(self._close_buckets(self._watermark))
                min_end = min(
                    (window.bucket_start(b + 1) for b in buckets),
                    default=float("inf"),
                )
            bucket = window.bucket_of(ts)
            groups = buckets.get(bucket)
            if groups is None:
                groups = {}
                buckets[bucket] = groups
                end = window.bucket_start(bucket + 1)
                if end < min_end:
                    min_end = end
            key, values = self._group_values(el)
            state = groups.get(key)
            if state is None:
                state = _GroupState(values, specs)
                groups[key] = state
            for spec, fn_state in zip(specs, state.states):
                fn_state.add(spec.extract(el))
            state.count += 1
        return out

    def supports_columns(self) -> bool:
        # Only the tumbling path folds without per-record emission; the
        # buffered windows emit one refreshed row per arrival and the
        # punctuated form delegates to the blocking Aggregate.
        return self._tumbling and _columnar_capable(
            self.group_by, self.aggregates
        )

    def process_columns(self, batch, port: int = 0) -> list[Element]:
        self._validate_port(port)
        if batch.length == 0:
            return []
        try:
            key_cols = _group_columns(self.group_by, batch)
            spec_cols = _spec_columns(self.aggregates, batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
        window = self.window
        buckets = self._buckets
        specs = self.aggregates
        names = [name for name, _ in self.group_by]
        inputs = list(zip(specs, spec_cols))
        ts_list = batch.ts_list()
        min_end = min(
            (window.bucket_start(b + 1) for b in buckets),
            default=float("inf"),
        )
        out: list[Element] = []
        keys = zip(*key_cols) if key_cols else iter([()] * batch.length)
        for i, key in enumerate(keys):
            ts = ts_list[i]
            if ts > self._watermark:
                self._watermark = ts
            if self._watermark >= min_end:
                out.extend(self._close_buckets(self._watermark))
                min_end = min(
                    (window.bucket_start(b + 1) for b in buckets),
                    default=float("inf"),
                )
            bucket = window.bucket_of(ts)
            groups = buckets.get(bucket)
            if groups is None:
                groups = {}
                buckets[bucket] = groups
                end = window.bucket_start(bucket + 1)
                if end < min_end:
                    min_end = end
            state = groups.get(key)
            if state is None:
                state = _GroupState(dict(zip(names, key)), specs)
                groups[key] = state
            for (_spec, col), fn_state in zip(inputs, state.states):
                fn_state.add(1 if col is None else col[i])
            state.count += 1
        return out

    # -- buffered (sliding/row/landmark) path -------------------------------

    def _on_record_buffered(self, record: Record) -> list[Element]:
        self._buffer.insert(record)
        self._buffer.expire(record.ts)
        key, key_values = self._group_values(record)
        states = [spec.new_state() for spec in self.aggregates]
        for r in self._buffer.contents():
            rk, _ = self._group_values(r)
            if rk != key:
                continue
            for spec, fn_state in zip(self.aggregates, states):
                fn_state.add(spec.extract(r))
        row = self._row(key_values, states, ts=record.ts)
        if row is not None and self._emit_stride > 1:
            self._emit_counter += 1
            if self._emit_counter % self._emit_stride:
                return []
        return [row] if row is not None else []

    # -- punctuation & lifecycle ---------------------------------------------

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        if self._punctuated:
            return self._delegate.on_punctuation(punct, port)
        out: list[Element] = []
        if self._tumbling:
            bound = punct.bound_for(self.ts_attr)
            if bound is not None:
                self._watermark = max(self._watermark, bound)
                out.extend(self._close_buckets(self._watermark))
        out.append(punct)
        return out

    def flush(self) -> list[Element]:
        if self._punctuated:
            return self._delegate.flush()
        if not self._tumbling:
            return []
        return self._close_buckets(float("inf"))

    def reset(self) -> None:
        if self._tumbling:
            self._buckets.clear()
            self._watermark = float("-inf")
        elif self._punctuated:
            self._delegate.reset()
        else:
            self._buffer.clear()
        self._emit_stride = 1
        self._emit_counter = 0

    def snapshot(self) -> object:
        if self._tumbling:
            state: dict = {
                "buckets": copy.deepcopy(self._buckets),
                "watermark": self._watermark,
            }
        elif self._punctuated:
            state = {"delegate": self._delegate.snapshot()}
        else:
            # Sliding/row/landmark windows: the buffer holds the whole
            # window contents; a deep copy is the exact state.
            state = {"buffer": copy.deepcopy(self._buffer)}
        if self._emit_stride != 1 or self._emit_counter:
            state["feedback"] = (self._emit_stride, self._emit_counter)
        return state

    def restore(self, state: object) -> None:
        if self._tumbling:
            self._buckets = copy.deepcopy(state["buckets"])
            self._watermark = state["watermark"]
        elif self._punctuated:
            self._delegate.restore(state["delegate"])
        else:
            self._buffer = copy.deepcopy(state["buffer"])
        self._emit_stride, self._emit_counter = state.get("feedback", (1, 0))

    def feedback_mapping(self) -> dict[str, str]:
        """Output group attr → input attr, for plain-attribute groups."""
        return {
            name: fn.attr
            for name, fn in self.group_by
            if isinstance(fn, AttrGetter)
        }

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        from repro.feedback.translate import translate_feedback

        advice = fb.advice
        if isinstance(advice, WidenSlide):
            if not self._tumbling and not self._punctuated:
                # Act: coarsen the per-arrival refresh stream.  The
                # advice is addressed to the window, so it is consumed —
                # nothing upstream knows what a slide is.
                self._emit_stride = advice.factor
                return []
            return [fb]
        if isinstance(advice, Resume) and self._emit_stride != 1:
            self._emit_stride = 1
            self._emit_counter = 0
            # Fall through: RESUME also cancels advice installed above.
        translated = translate_feedback(fb, self.feedback_mapping())
        return [fb if translated is None else translated]

    def memory(self) -> float:
        if self._tumbling:
            return float(
                sum(len(groups) for groups in self._buckets.values())
            )
        if self._punctuated:
            return self._delegate.memory()
        return self._buffer.memory()

    @property
    def open_buckets(self) -> int:
        if not self._tumbling:
            return 0
        return len(self._buckets)
