"""Symmetric hash join (Wilschut & Apers, PDIS 1991; slide 31).

The classic streaming equijoin: one hash table per input; every arriving
tuple probes the *other* input's table and then inserts itself into its
own.  Results are produced incrementally and the operator never blocks —
"takes into account the streaming nature of inputs".

Without windows the tables grow without bound (the general join problem
of slide 30); :class:`~repro.operators.window_join.WindowJoin` bounds
them with per-input windows, and :class:`~repro.operators.xjoin.XJoin`
spills them to disk.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.tuples import Punctuation, Record
from repro.errors import ColumnUnavailable
from repro.operators.base import BinaryOperator, Element

__all__ = ["SymmetricHashJoin"]


class SymmetricHashJoin(BinaryOperator):
    """Unwindowed streaming equijoin.

    Parameters
    ----------
    left_keys, right_keys:
        Equi-join attribute lists (same length); a pair matches when the
        key tuples are equal.
    theta:
        Optional residual predicate ``theta(left_record, right_record)``
        applied after the hash match.
    """

    def __init__(
        self,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        theta: Callable[[Record, Record], bool] | None = None,
        name: str = "shjoin",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        if len(left_keys) != len(right_keys):
            raise ValueError("left_keys and right_keys must align")
        self.keys = (list(left_keys), list(right_keys))
        self.theta = theta
        self._tables: tuple[dict, dict] = ({}, {})
        #: number of hash-bucket entries inspected (cost accounting)
        self.probes = 0

    def on_record(self, record: Record, port: int) -> list[Element]:
        other = 1 - port
        key = record.key(self.keys[port])
        out: list[Element] = []
        for match in self._tables[other].get(key, ()):
            self.probes += 1
            left, right = (record, match) if port == 0 else (match, record)
            if self.theta is None or self.theta(left, right):
                out.append(left.merged(right, ts=max(left.ts, right.ts)))
        self._tables[port].setdefault(key, []).append(record)
        return out

    def supports_columns(self) -> bool:
        return True

    def process_columns(self, batch, port: int = 0) -> list[Element]:
        # Vectorized probe: extract the key columns once for the whole
        # batch instead of building a key tuple through record.key()
        # per row, then run the classic probe+insert per element.
        self._validate_port(port)
        names = self.keys[port]
        try:
            key_cols = [batch.pylist(n) for n in names]
        except ColumnUnavailable:
            # Row path reproduces the exact KeyError of record.key().
            return self.process_batch(batch.to_rows(), port)
        rows = batch.to_rows()
        other = self._tables[1 - port]
        mine = self._tables[port]
        theta = self.theta
        out: list[Element] = []
        keys = zip(*key_cols) if key_cols else iter([()] * batch.length)
        for record, key in zip(rows, keys):
            matches = other.get(key)
            if matches:
                for match in matches:
                    self.probes += 1
                    left, right = (
                        (record, match) if port == 0 else (match, record)
                    )
                    if theta is None or theta(left, right):
                        out.append(
                            left.merged(right, ts=max(left.ts, right.ts))
                        )
            bucket = mine.get(key)
            if bucket is None:
                mine[key] = [record]
            else:
                bucket.append(record)
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        # A one-input punctuation does not constrain joined outputs in
        # general; swallow it (a window join handles these usefully).
        return []

    def reset(self) -> None:
        self._tables = ({}, {})
        self.probes = 0

    def snapshot(self) -> object:
        return {
            "tables": (
                {k: list(v) for k, v in self._tables[0].items()},
                {k: list(v) for k, v in self._tables[1].items()},
            ),
            "probes": self.probes,
        }

    def restore(self, state: object) -> None:
        left, right = state["tables"]
        self._tables = (
            {k: list(v) for k, v in left.items()},
            {k: list(v) for k, v in right.items()},
        )
        self.probes = state["probes"]

    def memory(self) -> float:
        return float(
            sum(len(v) for v in self._tables[0].values())
            + sum(len(v) for v in self._tables[1].values())
        )

    def table_sizes(self) -> tuple[int, int]:
        return (
            sum(len(v) for v in self._tables[0].values()),
            sum(len(v) for v in self._tables[1].values()),
        )
