"""Punctuation injection and handling utilities (TMSF03, slide 28).

Streams whose sources do not emit punctuations can have them derived
from ordering properties — exactly how Gigascope turns blocking
operators into non-blocking ones using timestamp properties (slide 48).
:class:`Heartbeat` injects a timestamp-bound punctuation every
``interval`` units of the ordering attribute, exploiting the fact that
the stream is ordered on it.

:class:`DropPunctuations` strips punctuations (for sinks that only want
data), and :class:`PunctuationCounter` is a measuring pass-through.
"""

from __future__ import annotations

from repro.core.tuples import Punctuation, Record
from repro.operators.base import Element, UnaryOperator

__all__ = ["Heartbeat", "DropPunctuations", "PunctuationCounter"]


class Heartbeat(UnaryOperator):
    """Derive periodic punctuations from a stream's ordering attribute.

    When a record with ``ts`` at or past the next boundary arrives, the
    operator emits ``Punctuation(attr <= boundary)`` *before* the record
    — sound because the stream is ordered on the attribute.
    """

    def __init__(
        self,
        interval: float,
        attr: str = "ts",
        name: str = "heartbeat",
        cost_per_tuple: float = 0.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0; got {interval}")
        self.interval = interval
        self.attr = attr
        self._next_boundary: float | None = None

    def on_record(self, record: Record, port: int) -> list[Element]:
        out: list[Element] = []
        if self._next_boundary is None:
            self._next_boundary = (
                (record.ts // self.interval) + 1
            ) * self.interval
        # Strictly greater: a record with ts == boundary would contradict
        # a punctuation asserting "no more records with ts <= boundary".
        while record.ts > self._next_boundary:
            out.append(Punctuation.time_bound(self.attr, self._next_boundary))
            self._next_boundary += self.interval
        out.append(record)
        return out

    def reset(self) -> None:
        self._next_boundary = None

    def snapshot(self) -> object:
        return {"next_boundary": self._next_boundary}

    def restore(self, state: object) -> None:
        self._next_boundary = state["next_boundary"]


class DropPunctuations(UnaryOperator):
    """Remove punctuations from a stream."""

    def __init__(self, name: str = "drop_puncts") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)

    def on_record(self, record: Record, port: int) -> list[Element]:
        return [record]

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        return []


class PunctuationCounter(UnaryOperator):
    """Pass-through that counts punctuations and records."""

    def __init__(self, name: str = "punct_counter") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)
        self.records = 0
        self.punctuations = 0

    def on_record(self, record: Record, port: int) -> list[Element]:
        self.records += 1
        return [record]

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        self.punctuations += 1
        return [punct]

    def reset(self) -> None:
        self.records = 0
        self.punctuations = 0

    def snapshot(self) -> object:
        return {"records": self.records, "punctuations": self.punctuations}

    def restore(self, state: object) -> None:
        self.records = state["records"]
        self.punctuations = state["punctuations"]
