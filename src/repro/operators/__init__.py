"""Stream query operators (slides 29-38)."""

from repro.operators.aggregate import AggSpec, Aggregate, WindowedAggregate
from repro.operators.base import (
    BinaryOperator,
    CompiledChain,
    Operator,
    UnaryOperator,
    run_chain,
)
from repro.operators.eddy import Eddy, EddyFilter, FixedFilterChain
from repro.operators.join import SymmetricHashJoin
from repro.operators.map import Extend, MapOp, Rename
from repro.operators.mjoin import MultiJoin
from repro.operators.partial_aggregate import (
    STATES_ATTR,
    FinalAggregate,
    PartialAggregate,
)
from repro.operators.project import DistinctProject, Project
from repro.operators.punctuate import (
    DropPunctuations,
    Heartbeat,
    PunctuationCounter,
)
from repro.operators.select import Select
from repro.operators.sort import Limit, Sort
from repro.operators.streamify import DStream, IStream, RStream
from repro.operators.union import OrderedMerge, Union
from repro.operators.window_join import JoinCosts, WindowJoin
from repro.operators.xjoin import EvictingHashJoin, XJoin

__all__ = [
    "AggSpec",
    "Aggregate",
    "WindowedAggregate",
    "BinaryOperator",
    "CompiledChain",
    "Operator",
    "UnaryOperator",
    "run_chain",
    "Eddy",
    "EddyFilter",
    "FixedFilterChain",
    "SymmetricHashJoin",
    "MultiJoin",
    "Extend",
    "MapOp",
    "Rename",
    "STATES_ATTR",
    "FinalAggregate",
    "PartialAggregate",
    "DistinctProject",
    "Project",
    "DropPunctuations",
    "Heartbeat",
    "PunctuationCounter",
    "Select",
    "Limit",
    "Sort",
    "DStream",
    "IStream",
    "RStream",
    "OrderedMerge",
    "Union",
    "JoinCosts",
    "WindowJoin",
    "EvictingHashJoin",
    "XJoin",
]
