"""Two-level (partial/final) aggregation, Gigascope-style (slide 37).

Gigascope evaluates aggregation in two tiers: the **LFTA** (low-level,
resource-limited — e.g. on the network card) keeps a *bounded* group
table for the current time bucket; the **HFTA** (high-level host
process) merges whatever the LFTA ships and can maintain an unbounded
number of groups.

:class:`PartialAggregate` is the LFTA side: when its group table is full
and a new group arrives, the largest-count resident group is *evicted
early* — emitted downstream as a partial row — freeing the slot.  At
bucket close, every resident group is emitted, followed by a punctuation
announcing the bucket is complete.

:class:`FinalAggregate` is the HFTA side: it merges partial rows by
(bucket, group), closing buckets on the LFTA's punctuations (or flush).

Partial rows carry the serialized aggregate *states* in the reserved
attribute ``_states``, so algebraic aggregates (avg) merge exactly.
"""

from __future__ import annotations

import copy
from typing import Callable, Sequence

from repro.aggregates.functions import AggregateFunction
from repro.core.tuples import Punctuation, Record
from repro.errors import ColumnUnavailable, WindowError
from repro.operators.aggregate import (
    AggSpec,
    AttrGetter,
    _GroupState,
    _normalize_group_by,
    _spec_columns,
)
from repro.operators.base import Element, UnaryOperator
from repro.windows.spec import TumblingWindow

__all__ = [
    "PartialAggregate",
    "FinalAggregate",
    "GroupPartial",
    "BucketOf",
    "STATES_ATTR",
]

#: Reserved attribute carrying aggregate states in partial rows.
STATES_ATTR = "_states"


class BucketOf:
    """Extractor mapping a record to its tumbling-window bucket id.

    Used as a grouping key so a :class:`GroupPartial` can keep windowed
    partial states keyed by (bucket, group) — the shard-side shape of a
    tumbling aggregate in the partition-parallel engine.  A class (not a
    closure) so shard plans stay picklable and inspectable.
    """

    __slots__ = ("window",)

    def __init__(self, window: TumblingWindow) -> None:
        self.window = window

    def __call__(self, record: Record) -> int:
        return self.window.bucket_of(record.ts)

    def __repr__(self) -> str:
        return f"BucketOf({self.window.describe()})"


def _partial_capable(group_by, aggregates) -> bool:
    """Columnar capability for the shard-side partial operators.

    Same rules as the blocking aggregate, plus :class:`BucketOf`, whose
    column derives from the batch timestamps.
    """
    for _name, fn in group_by:
        if not (
            isinstance(fn, (AttrGetter, BucketOf)) or hasattr(fn, "values")
        ):
            return False
    for spec in aggregates:
        inp = spec.input
        if inp is not None and not isinstance(inp, str) \
                and not hasattr(inp, "values"):
            return False
    return True


def _partial_group_columns(group_by, batch) -> list[list]:
    """Native-valued grouping columns, resolving BucketOf via ts."""
    from repro.columnar.batch import as_pylist
    from repro.columnar.expr import column_of

    cols = []
    for _name, fn in group_by:
        if isinstance(fn, AttrGetter):
            cols.append(batch.pylist(fn.attr))
        elif isinstance(fn, BucketOf):
            bucket_of = fn.window.bucket_of
            cols.append([bucket_of(ts) for ts in batch.ts_list()])
        else:
            cols.append(as_pylist(column_of(fn.values(batch), batch)))
    return cols


class GroupPartial(UnaryOperator):
    """Shard-side partial state for *unwindowed* grouped aggregation.

    The unwindowed sibling of :class:`PartialAggregate`, used by the
    partition-parallel engine (:mod:`repro.parallel`): each shard folds
    its slice of the stream into per-group aggregate states and ships
    the serialized states — in ``_states`` rows, exactly like the LFTA —
    for a coordinator-side merge.  Mirroring
    :class:`~repro.operators.aggregate.Aggregate`'s punctuation
    semantics, groups fully covered by an arriving punctuation are
    closed early (their states shipped, since no future record can
    extend them); everything else ships at flush.

    ``max_ts`` tracks the largest record timestamp seen, so the
    coordinator can reconstruct the flush timestamp the single-engine
    blocking aggregate would have stamped (the global max, which no
    single shard observes).
    """

    def __init__(
        self,
        group_by: Sequence,
        aggregates: Sequence[AggSpec],
        name: str = "group_partial",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.group_by = _normalize_group_by(group_by)
        self.aggregates = list(aggregates)
        self._groups: dict[tuple, _GroupState] = {}
        self.max_ts = 0.0

    def _state_row(self, state: _GroupState, ts: float) -> Record:
        values = dict(state.key_values)
        values[STATES_ATTR] = list(state.states)
        return Record(values, ts=ts)

    def on_record(self, record: Record, port: int) -> list[Element]:
        if record.ts > self.max_ts:
            self.max_ts = record.ts
        key = tuple(fn(record) for _name, fn in self.group_by)
        state = self._groups.get(key)
        if state is None:
            values = {name: fn(record) for name, fn in self.group_by}
            state = _GroupState(values, self.aggregates)
            self._groups[key] = state
        for spec, fn_state in zip(self.aggregates, state.states):
            fn_state.add(spec.extract(record))
        state.count += 1
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # Shard-local hot loop: fold the whole batch into the group
        # table without per-element dispatch.
        self._validate_port(port)
        group_by = self.group_by
        specs = self.aggregates
        groups = self._groups
        out: list[Element] = []
        max_ts = self.max_ts
        for el in elements:
            if isinstance(el, Punctuation):
                self.max_ts = max_ts
                out.extend(self.on_punctuation(el, port))
                continue
            if el.ts > max_ts:
                max_ts = el.ts
            key = tuple(fn(el) for _name, fn in group_by)
            state = groups.get(key)
            if state is None:
                values = {name: fn(el) for name, fn in group_by}
                state = _GroupState(values, specs)
                groups[key] = state
            for spec, fn_state in zip(specs, state.states):
                fn_state.add(spec.extract(el))
            state.count += 1
        self.max_ts = max_ts
        return out

    def supports_columns(self) -> bool:
        return _partial_capable(self.group_by, self.aggregates)

    def process_columns(self, batch, port: int = 0) -> list[Element]:
        self._validate_port(port)
        if batch.length == 0:
            return []
        try:
            key_cols = _partial_group_columns(self.group_by, batch)
            spec_cols = _spec_columns(self.aggregates, batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
        mx = max(batch.ts_list())
        if mx > self.max_ts:
            self.max_ts = mx
        groups = self._groups
        specs = self.aggregates
        names = [name for name, _ in self.group_by]
        inputs = list(zip(specs, spec_cols))
        keys = zip(*key_cols) if key_cols else iter([()] * batch.length)
        for i, key in enumerate(keys):
            state = groups.get(key)
            if state is None:
                state = _GroupState(dict(zip(names, key)), specs)
                groups[key] = state
            for (_spec, col), fn_state in zip(inputs, state.states):
                fn_state.add(1 if col is None else col[i])
            state.count += 1
        return []

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        pattern_attrs = {name for name, _ in punct.pattern}
        group_attrs = {name for name, _ in self.group_by}
        out: list[Element] = []
        if group_attrs <= pattern_attrs:
            closed = [
                key
                for key, state in self._groups.items()
                if punct.matches(Record(state.key_values, ts=punct.ts))
            ]
            for key in sorted(closed, key=repr):
                out.append(self._state_row(self._groups.pop(key), punct.ts))
        out.append(punct)
        return out

    def flush(self) -> list[Element]:
        out = [
            self._state_row(self._groups[key], self.max_ts)
            for key in sorted(self._groups, key=repr)
        ]
        self._groups.clear()
        return out

    def reset(self) -> None:
        self._groups.clear()
        self.max_ts = 0.0

    def snapshot(self) -> object:
        return {
            "groups": copy.deepcopy(self._groups),
            "max_ts": self.max_ts,
        }

    def restore(self, state: object) -> None:
        self._groups = copy.deepcopy(state["groups"])
        self.max_ts = state["max_ts"]

    def memory(self) -> float:
        return float(len(self._groups))


class PartialAggregate(UnaryOperator):
    """LFTA-side tumbling aggregation with a bounded group table."""

    def __init__(
        self,
        window: TumblingWindow,
        group_by: Sequence,
        aggregates: Sequence[AggSpec],
        max_groups: int,
        name: str = "lfta",
        bucket_attr: str = "tb",
        ts_attr: str = "ts",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        if not isinstance(window, TumblingWindow):
            raise WindowError("partial aggregation requires a tumbling window")
        if max_groups < 1:
            raise WindowError(f"max_groups must be >= 1; got {max_groups}")
        self.window = window
        self.group_by = _normalize_group_by(group_by)
        self.aggregates = list(aggregates)
        self.max_groups = max_groups
        self.bucket_attr = bucket_attr
        self.ts_attr = ts_attr
        self._bucket: int | None = None
        self._groups: dict[tuple, _GroupState] = {}
        #: early evictions forced by the bounded table (experiment E6)
        self.evictions = 0

    def _partial_row(self, state: _GroupState, bucket: int, ts: float) -> Record:
        values = dict(state.key_values)
        values[self.bucket_attr] = bucket
        values[STATES_ATTR] = list(state.states)
        return Record(values, ts=ts)

    def _close_bucket(self, ts: float) -> list[Element]:
        assert self._bucket is not None
        out: list[Element] = []
        for key in sorted(self._groups, key=repr):
            out.append(
                self._partial_row(self._groups[key], self._bucket, ts)
            )
        self._groups.clear()
        out.append(
            Punctuation.of(
                {self.bucket_attr: (None, self._bucket)}, ts=ts
            )
        )
        return out

    def on_record(self, record: Record, port: int) -> list[Element]:
        bucket = self.window.bucket_of(record.ts)
        out: list[Element] = []
        if self._bucket is None:
            self._bucket = bucket
        elif bucket != self._bucket:
            out.extend(self._close_bucket(record.ts))
            self._bucket = bucket

        key = tuple(fn(record) for _name, fn in self.group_by)
        state = self._groups.get(key)
        if state is None:
            if len(self._groups) >= self.max_groups:
                # Bounded table: evict the heaviest group early.
                victim_key = max(
                    self._groups, key=lambda k: (self._groups[k].count, repr(k))
                )
                victim = self._groups.pop(victim_key)
                out.append(self._partial_row(victim, bucket, record.ts))
                self.evictions += 1
            values = {name: fn(record) for name, fn in self.group_by}
            state = _GroupState(values, self.aggregates)
            self._groups[key] = state
        for spec, fn_state in zip(self.aggregates, state.states):
            fn_state.add(spec.extract(record))
        state.count += 1
        return out

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # The LFTA loop is the hottest spot of the two-level pipeline:
        # fold the whole batch into the bounded group table, paying the
        # bucket-close / eviction machinery only when it fires.
        self._validate_port(port)
        group_by = self.group_by
        specs = self.aggregates
        max_groups = self.max_groups
        window = self.window
        out: list[Element] = []
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            bucket = window.bucket_of(el.ts)
            if self._bucket is None:
                self._bucket = bucket
            elif bucket != self._bucket:
                out.extend(self._close_bucket(el.ts))
                self._bucket = bucket
            groups = self._groups
            key = tuple(fn(el) for _name, fn in group_by)
            state = groups.get(key)
            if state is None:
                if len(groups) >= max_groups:
                    victim_key = max(
                        groups, key=lambda k: (groups[k].count, repr(k))
                    )
                    victim = groups.pop(victim_key)
                    out.append(self._partial_row(victim, bucket, el.ts))
                    self.evictions += 1
                values = {name: fn(el) for name, fn in group_by}
                state = _GroupState(values, specs)
                groups[key] = state
            for spec, fn_state in zip(specs, state.states):
                fn_state.add(spec.extract(el))
            state.count += 1
        return out

    def supports_columns(self) -> bool:
        return _partial_capable(self.group_by, self.aggregates)

    def process_columns(self, batch, port: int = 0) -> list[Element]:
        # Index loop (not a bulk fold): bucket closes and bounded-table
        # evictions interleave with arrivals, and their emission order
        # must match the tuple path row for row.
        self._validate_port(port)
        if batch.length == 0:
            return []
        try:
            key_cols = _partial_group_columns(self.group_by, batch)
            spec_cols = _spec_columns(self.aggregates, batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
        window = self.window
        specs = self.aggregates
        max_groups = self.max_groups
        names = [name for name, _ in self.group_by]
        inputs = list(zip(specs, spec_cols))
        ts_list = batch.ts_list()
        out: list[Element] = []
        keys = zip(*key_cols) if key_cols else iter([()] * batch.length)
        for i, key in enumerate(keys):
            ts = ts_list[i]
            bucket = window.bucket_of(ts)
            if self._bucket is None:
                self._bucket = bucket
            elif bucket != self._bucket:
                out.extend(self._close_bucket(ts))
                self._bucket = bucket
            groups = self._groups
            state = groups.get(key)
            if state is None:
                if len(groups) >= max_groups:
                    victim_key = max(
                        groups, key=lambda k: (groups[k].count, repr(k))
                    )
                    victim = groups.pop(victim_key)
                    out.append(self._partial_row(victim, bucket, ts))
                    self.evictions += 1
                state = _GroupState(dict(zip(names, key)), specs)
                groups[key] = state
            for (_spec, col), fn_state in zip(inputs, state.states):
                fn_state.add(1 if col is None else col[i])
            state.count += 1
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound = punct.bound_for(self.ts_attr)
        if bound is not None and self._bucket is not None:
            if self.window.bucket_start(self._bucket + 1) <= bound:
                out = self._close_bucket(bound)
                self._bucket = None
                return out
        return []

    def flush(self) -> list[Element]:
        if self._bucket is None:
            return []
        out = self._close_bucket(float("inf"))
        self._bucket = None
        return out

    def reset(self) -> None:
        self._bucket = None
        self._groups.clear()
        self.evictions = 0

    def snapshot(self) -> object:
        return {
            "bucket": self._bucket,
            "groups": copy.deepcopy(self._groups),
            "evictions": self.evictions,
        }

    def restore(self, state: object) -> None:
        self._bucket = state["bucket"]
        self._groups = copy.deepcopy(state["groups"])
        self.evictions = state["evictions"]

    def memory(self) -> float:
        return float(len(self._groups))


class FinalAggregate(UnaryOperator):
    """HFTA-side merge of partial rows into final per-bucket results."""

    def __init__(
        self,
        group_attrs: Sequence[str],
        aggregates: Sequence[AggSpec],
        having: Callable[[Record], bool] | None = None,
        name: str = "hfta",
        bucket_attr: str = "tb",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.group_attrs = list(group_attrs)
        self.aggregates = list(aggregates)
        self.having = having
        self.bucket_attr = bucket_attr
        # (bucket, group key) -> merged states
        self._merged: dict[tuple, tuple[dict, list[AggregateFunction]]] = {}

    def on_record(self, record: Record, port: int) -> list[Element]:
        bucket = record[self.bucket_attr]
        group_key = record.key(self.group_attrs)
        incoming: list[AggregateFunction] = record[STATES_ATTR]
        key = (bucket, group_key)
        entry = self._merged.get(key)
        if entry is None:
            key_values = {a: record[a] for a in self.group_attrs}
            key_values[self.bucket_attr] = bucket
            states = [spec.new_state() for spec in self.aggregates]
            entry = (key_values, states)
            self._merged[key] = entry
        for mine, theirs in zip(entry[1], incoming):
            mine.merge(theirs)
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # Partial rows only merge state; punctuations (bucket-complete
        # markers) are the only emitters, so batch output stays small.
        self._validate_port(port)
        out: list[Element] = []
        on_record = self.on_record
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
            else:
                on_record(el, port)
        return out

    def _emit_bucket(self, bucket, ts: float) -> list[Element]:
        out: list[Element] = []
        keys = sorted(
            (k for k in self._merged if k[0] == bucket), key=repr
        )
        for key in keys:
            key_values, states = self._merged.pop(key)
            values = dict(key_values)
            for spec, st in zip(self.aggregates, states):
                values[spec.name] = st.result()
            row = Record(values, ts=ts)
            if self.having is None or self.having(row):
                out.append(row)
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound = punct.bound_for(self.bucket_attr)
        if bound is None:
            return [punct]
        out: list[Element] = []
        buckets = sorted({k[0] for k in self._merged if k[0] <= bound})
        for bucket in buckets:
            out.extend(self._emit_bucket(bucket, punct.ts))
        out.append(punct)
        return out

    def flush(self) -> list[Element]:
        out: list[Element] = []
        for bucket in sorted({k[0] for k in self._merged}):
            out.extend(self._emit_bucket(bucket, float("inf")))
        return out

    def reset(self) -> None:
        self._merged.clear()

    def snapshot(self) -> object:
        return {"merged": copy.deepcopy(self._merged)}

    def restore(self, state: object) -> None:
        self._merged = copy.deepcopy(state["merged"])

    def memory(self) -> float:
        return float(len(self._merged))

    @property
    def group_count(self) -> int:
        return len(self._merged)
