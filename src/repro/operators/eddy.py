"""Eddy: continuously adaptive tuple routing (Avnur & Hellerstein, 2000).

Slide 22 lists eddies as the adaptive-query-plan technique stream
systems borrow for "volatile, unpredictable environments"; Telegraph
(slide 51) builds on them.  An eddy holds a set of commutative filters
and decides *per tuple* in which order to apply them, steering toward
the filter that currently kills tuples at the least cost.

Routing policy: filters are ranked by observed drop-rate per unit cost
(a deterministic analogue of lottery scheduling — a filter earns
"tickets" by consuming and dropping tuples); with probability
``epsilon`` a seeded RNG explores a random order so drifted
selectivities are re-learned.  Statistics decay with factor ``decay`` so
old behaviour fades (slide 16's "adaptive query plan" requirement).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.tuples import Record
from repro.errors import PlanError
from repro.operators.base import Element, UnaryOperator

__all__ = ["EddyFilter", "Eddy", "FixedFilterChain"]


def _snapshot_filters(filters: Sequence["EddyFilter"]) -> dict:
    return {f.name: (f.seen, f.passed) for f in filters}


def _restore_filters(filters: Sequence["EddyFilter"], state: dict) -> None:
    for f in filters:
        seen, passed = state.get(f.name, (0.0, 0.0))
        f.seen = seen
        f.passed = passed


class EddyFilter:
    """One commutative predicate with running statistics."""

    def __init__(
        self,
        name: str,
        predicate: Callable[[Record], bool],
        cost: float = 1.0,
    ) -> None:
        self.name = name
        self.predicate = predicate
        self.cost = cost
        self.seen = 0.0
        self.passed = 0.0

    def observed_pass_rate(self) -> float:
        if self.seen == 0:
            return 0.5  # optimistic prior: unknown filters get tried
        return self.passed / self.seen

    def rank(self) -> float:
        """Lower is better: expected pass-rate weighted by cost."""
        return self.observed_pass_rate() * self.cost

    def apply(self, record: Record) -> bool:
        result = self.predicate(record)
        self.seen += 1
        if result:
            self.passed += 1
        return result

    def decay(self, factor: float) -> None:
        self.seen *= factor
        self.passed *= factor


class Eddy(UnaryOperator):
    """Adaptively ordered conjunction of filters."""

    def __init__(
        self,
        filters: Sequence[EddyFilter],
        name: str = "eddy",
        epsilon: float = 0.05,
        decay: float = 0.99,
        seed: int = 17,
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.filters = list(filters)
        self.epsilon = epsilon
        self.decay_factor = decay
        self.seed = seed
        self._rng = random.Random(seed)
        #: total predicate-evaluation cost spent (the adaptivity metric)
        self.work_done = 0.0

    def on_record(self, record: Record, port: int) -> list[Element]:
        if self._rng.random() < self.epsilon:
            order = list(self.filters)
            self._rng.shuffle(order)
        else:
            order = sorted(self.filters, key=lambda f: (f.rank(), f.name))
        for f in self.filters:
            f.decay(self.decay_factor)
        for f in order:
            self.work_done += f.cost
            if not f.apply(record):
                return []
        return [record]

    def current_order(self) -> list[str]:
        """The order the eddy would use right now (diagnostics)."""
        return [
            f.name
            for f in sorted(self.filters, key=lambda f: (f.rank(), f.name))
        ]

    def reset(self) -> None:
        for f in self.filters:
            f.seen = 0.0
            f.passed = 0.0
        self.work_done = 0.0
        self._rng = random.Random(self.seed)

    def snapshot(self) -> object:
        return {
            "filters": _snapshot_filters(self.filters),
            "work_done": self.work_done,
            "rng": self._rng.getstate(),
        }

    def restore(self, state: object) -> None:
        if state is None:
            return
        if not isinstance(state, dict) or "filters" not in state:
            raise PlanError(
                f"eddy {self.name!r} handed an incompatible snapshot"
            )
        _restore_filters(self.filters, state["filters"])
        self.work_done = state.get("work_done", 0.0)
        # A snapshot taken from a FixedFilterChain (the adaptive
        # chain -> eddy migration) carries no RNG state; exploration
        # then restarts from the configured seed.
        rng_state = state.get("rng")
        if rng_state is not None:
            self._rng.setstate(rng_state)


class FixedFilterChain(UnaryOperator):
    """The non-adaptive baseline: apply filters in the given order."""

    def __init__(
        self,
        filters: Sequence[EddyFilter],
        name: str = "fixed_chain",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.filters = list(filters)
        self.work_done = 0.0

    def on_record(self, record: Record, port: int) -> list[Element]:
        for f in self.filters:
            self.work_done += f.cost
            if not f.predicate(record):
                return []
        return [record]

    def current_order(self) -> list[str]:
        """The (fixed) application order, mirroring :meth:`Eddy.current_order`."""
        return [f.name for f in self.filters]

    def reordered(self, order: Sequence[str]) -> "FixedFilterChain":
        """A new chain applying the same filters in ``order``.

        The conjunction is commutative — a record passes iff every
        predicate holds — so any permutation emits the same records;
        only the work spent differs.
        """
        by_name = {f.name: f for f in self.filters}
        if sorted(by_name) != sorted(order):
            raise PlanError(
                f"chain {self.name!r} holds filters {sorted(by_name)}; "
                f"cannot reorder to {list(order)}"
            )
        return FixedFilterChain(
            [by_name[fname] for fname in order],
            name=self.name,
            cost_per_tuple=self.cost_per_tuple,
        )

    def reset(self) -> None:
        self.work_done = 0.0

    def snapshot(self) -> object:
        return {
            "filters": _snapshot_filters(self.filters),
            "work_done": self.work_done,
        }

    def restore(self, state: object) -> None:
        if state is None:
            return
        if not isinstance(state, dict) or "filters" not in state:
            raise PlanError(
                f"filter chain {self.name!r} handed an incompatible snapshot"
            )
        # Accepts an Eddy snapshot too (the eddy -> chain migration):
        # the RNG state it carries has no counterpart here and is
        # dropped with the adaptivity it served.
        _restore_filters(self.filters, state["filters"])
        self.work_done = state.get("work_done", 0.0)
