"""Sort and limit operators.

``ORDER BY`` is inherently blocking on a stream (slide 16's "one pass"
constraint), so :class:`Sort` is a *relation-out* operator: it buffers
its input and emits the sorted result at flush.  It exists mainly for
the DBMS tier's audit queries and for finite-stream analysis;
punctuations can release sorted prefixes early when the sort key is the
ordering attribute.

:class:`Limit` is stream-friendly: it forwards the first ``n`` records
and drops the rest (and can short-circuit whole plans).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError
from repro.operators.base import Element, UnaryOperator

__all__ = ["Sort", "Limit"]


class Sort(UnaryOperator):
    """Blocking sort by one or more keys.

    Parameters
    ----------
    keys:
        ``(attribute, descending)`` pairs, highest priority first.
    limit:
        Optional top-N: only the first ``limit`` sorted records are
        emitted (ORDER BY ... LIMIT fusion).
    """

    def __init__(
        self,
        keys: Sequence[tuple[str, bool]],
        limit: int | None = None,
        name: str = "sort",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        if not keys:
            raise PlanError("Sort requires at least one key")
        if limit is not None and limit < 0:
            raise PlanError(f"limit must be >= 0; got {limit}")
        self.keys = list(keys)
        self.limit = limit
        self._buffer: list[Record] = []

    def on_record(self, record: Record, port: int) -> list[Element]:
        self._buffer.append(record)
        return []

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        # Sorting reorders arbitrarily; a content punctuation no longer
        # describes a prefix of the output, so it is absorbed.
        return []

    def _sorted(self) -> list[Record]:
        out = list(self._buffer)
        # Stable multi-key sort: apply keys in reverse priority.
        for attr, descending in reversed(self.keys):
            out.sort(key=lambda r, a=attr: r[a], reverse=descending)
        return out

    def flush(self) -> list[Element]:
        out = self._sorted()
        self._buffer = []
        if self.limit is not None:
            out = out[: self.limit]
        return list(out)

    def reset(self) -> None:
        self._buffer = []

    def snapshot(self) -> object:
        return {"buffer": list(self._buffer)}

    def restore(self, state: object) -> None:
        self._buffer = list(state["buffer"])

    def memory(self) -> float:
        return float(len(self._buffer))


class Limit(UnaryOperator):
    """Forward the first ``n`` records, drop everything after."""

    def __init__(self, n: int, name: str = "limit") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)
        if n < 0:
            raise PlanError(f"limit must be >= 0; got {n}")
        self.n = n
        self._emitted = 0

    def on_record(self, record: Record, port: int) -> list[Element]:
        if self._emitted >= self.n:
            return []
        self._emitted += 1
        return [record]

    def reset(self) -> None:
        self._emitted = 0

    def snapshot(self) -> object:
        return {"emitted": self._emitted}

    def restore(self, state: object) -> None:
        self._emitted = state["emitted"]

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self.n
