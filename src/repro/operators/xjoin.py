"""XJoin: a reactively scheduled, disk-spilling hash join (Urhan &
Franklin, 2000; slide 31).

XJoin extends the symmetric hash join for the case where the two hash
tables outgrow memory: overflowing *partitions* are spilled to disk and
their joins completed later (during input stalls and in a final clean-up
phase), so no results are lost.

This implementation keeps the three-stage structure:

* **Stage 1 (memory-to-memory)** — arriving tuples probe the opposite
  memory-resident partitions, then insert into their own.  When total
  memory exceeds ``memory_budget``, the largest partition pair flips to
  *disk-resident*: its tuples are written out (counted as page I/O).
* **Stage 3 (clean-up, here at flush)** — disk-resident tuples are read
  back and joined against everything they have not met yet.

Duplicate avoidance follows the XJoin timestamping idea: each tuple
records the arrival-sequence interval during which it was memory
resident; a pair is produced by the clean-up stage only if the later
tuple arrived *after* the earlier one was spilled.

A plain :class:`~repro.operators.join.SymmetricHashJoin` under the same
budget must *evict* (losing results); experiment E4 contrasts the two.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.tuples import Punctuation, Record
from repro.operators.base import BinaryOperator, Element

__all__ = ["XJoin", "EvictingHashJoin"]

_INF = float("inf")


class _XTuple:
    __slots__ = ("record", "arrival", "spilled_at")

    def __init__(self, record: Record, arrival: int) -> None:
        self.record = record
        self.arrival = arrival
        self.spilled_at = _INF  # arrival counter when spilled; inf = never


class XJoin(BinaryOperator):
    """Memory-bounded symmetric hash join that spills instead of dropping.

    Parameters
    ----------
    memory_budget:
        Maximum number of memory-resident tuples across both tables.
    page_size:
        Tuples per simulated disk page (I/O accounting).
    """

    def __init__(
        self,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        memory_budget: int = 1024,
        page_size: int = 16,
        n_partitions: int = 8,
        theta: Callable[[Record, Record], bool] | None = None,
        name: str = "xjoin",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        if len(left_keys) != len(right_keys):
            raise ValueError("left_keys and right_keys must align")
        if memory_budget < 2:
            raise ValueError("memory budget must hold at least 2 tuples")
        self.keys = (list(left_keys), list(right_keys))
        self.memory_budget = memory_budget
        self.page_size = page_size
        self.n_partitions = n_partitions
        self.theta = theta
        # memory[side][partition] -> {key: [_XTuple]}
        self._memory: tuple[list[dict], list[dict]] = (
            [dict() for _ in range(n_partitions)],
            [dict() for _ in range(n_partitions)],
        )
        self._disk: tuple[list[list[_XTuple]], list[list[_XTuple]]] = (
            [[] for _ in range(n_partitions)],
            [[] for _ in range(n_partitions)],
        )
        self._mem_count = 0
        self._arrivals = 0
        #: simulated page writes + reads
        self.pages_written = 0
        self.pages_read = 0

    # -- helpers -----------------------------------------------------------

    def _partition_of(self, key: tuple) -> int:
        return hash(key) % self.n_partitions

    def _partition_len(self, side: int, part: int) -> int:
        return sum(len(v) for v in self._memory[side][part].values())

    def _emit(self, left: Record, right: Record) -> Record | None:
        if self.theta is None or self.theta(left, right):
            return left.merged(right, ts=max(left.ts, right.ts))
        return None

    def _spill_largest(self) -> None:
        """Move the largest memory partition (one side) to disk."""
        best = (0, 0)
        best_len = -1
        for side in (0, 1):
            for part in range(self.n_partitions):
                n = self._partition_len(side, part)
                if n > best_len:
                    best_len = n
                    best = (side, part)
        side, part = best
        table = self._memory[side][part]
        spilled: list[_XTuple] = []
        for bucket in table.values():
            for xt in bucket:
                xt.spilled_at = self._arrivals
                spilled.append(xt)
        table.clear()
        self._disk[side][part].extend(spilled)
        self._mem_count -= len(spilled)
        self.pages_written += max(1, -(-len(spilled) // self.page_size))

    # -- data path -----------------------------------------------------------

    def on_record(self, record: Record, port: int) -> list[Element]:
        other = 1 - port
        self._arrivals += 1
        xt = _XTuple(record, self._arrivals)
        key = record.key(self.keys[port])
        part = self._partition_of(key)

        out: list[Element] = []
        for match in self._memory[other][part].get(key, ()):
            left, right = (
                (record, match.record) if port == 0 else (match.record, record)
            )
            emitted = self._emit(left, right)
            if emitted is not None:
                out.append(emitted)

        self._memory[port][part].setdefault(key, []).append(xt)
        self._mem_count += 1
        while self._mem_count > self.memory_budget:
            self._spill_largest()
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        return []

    def flush(self) -> list[Element]:
        """Clean-up stage: join disk-resident tuples with everything
        they have not met, without duplicating stage-1 results."""
        out: list[Element] = []
        for part in range(self.n_partitions):
            left_all = self._all_tuples(0, part)
            right_all = self._all_tuples(1, part)
            if not left_all or not right_all:
                continue
            read = sum(len(self._disk[s][part]) for s in (0, 1))
            if read:
                self.pages_read += max(1, -(-read // self.page_size))
            right_by_key: dict[tuple, list[_XTuple]] = {}
            for xt in right_all:
                right_by_key.setdefault(
                    xt.record.key(self.keys[1]), []
                ).append(xt)
            for lx in left_all:
                key = lx.record.key(self.keys[0])
                for rx in right_by_key.get(key, ()):
                    if self._matched_in_stage1(lx, rx):
                        continue
                    emitted = self._emit(lx.record, rx.record)
                    if emitted is not None:
                        out.append(emitted)
        return out

    @staticmethod
    def _matched_in_stage1(a: _XTuple, b: _XTuple) -> bool:
        """Was the pair already produced when the later tuple arrived?

        Stage 1 produced (a, b) iff the earlier tuple was still memory
        resident when the later one arrived.
        """
        earlier, later = (a, b) if a.arrival < b.arrival else (b, a)
        return later.arrival <= earlier.spilled_at

    def _all_tuples(self, side: int, part: int) -> list[_XTuple]:
        mem = [
            xt
            for bucket in self._memory[side][part].values()
            for xt in bucket
        ]
        return mem + list(self._disk[side][part])

    def reset(self) -> None:
        for side in (0, 1):
            for part in range(self.n_partitions):
                self._memory[side][part].clear()
                self._disk[side][part].clear()
        self._mem_count = 0
        self._arrivals = 0
        self.pages_written = 0
        self.pages_read = 0

    def memory(self) -> float:
        return float(self._mem_count)

    @property
    def disk_tuples(self) -> int:
        return sum(
            len(self._disk[s][p])
            for s in (0, 1)
            for p in range(self.n_partitions)
        )


class EvictingHashJoin(BinaryOperator):
    """Symmetric hash join that *evicts oldest tuples* at the budget.

    The memory-limited strawman XJoin is compared against: evicted
    tuples are gone, so joins involving them are silently lost.  Tracks
    ``evicted`` for the experiment's accounting.
    """

    def __init__(
        self,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        memory_budget: int = 1024,
        theta: Callable[[Record, Record], bool] | None = None,
        name: str = "evicting_join",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.keys = (list(left_keys), list(right_keys))
        self.memory_budget = memory_budget
        self.theta = theta
        self._tables: tuple[dict, dict] = ({}, {})
        self._fifo: list[tuple[int, tuple, Record]] = []
        self.evicted = 0

    def on_record(self, record: Record, port: int) -> list[Element]:
        other = 1 - port
        key = record.key(self.keys[port])
        out: list[Element] = []
        for match in self._tables[other].get(key, ()):
            left, right = (record, match) if port == 0 else (match, record)
            if self.theta is None or self.theta(left, right):
                out.append(left.merged(right, ts=max(left.ts, right.ts)))
        self._tables[port].setdefault(key, []).append(record)
        self._fifo.append((port, key, record))
        while len(self._fifo) > self.memory_budget:
            old_port, old_key, old_rec = self._fifo.pop(0)
            bucket = self._tables[old_port].get(old_key)
            if bucket and old_rec in bucket:
                bucket.remove(old_rec)
                self.evicted += 1
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        return []

    def reset(self) -> None:
        self._tables = ({}, {})
        self._fifo.clear()
        self.evicted = 0

    def memory(self) -> float:
        return float(len(self._fifo))
