"""Binary sliding-window join (Kang, Naughton, Viglas — ICDE 2003).

Slide 32's recipe, per new tuple on input A:

1. scan B's window for joining tuples and output results,
2. insert the tuple into A's window,
3. invalidate expired tuples in A's window.

Slide 33's key observations, which this operator makes measurable:

* each *side* can independently use a **hash** index (cheap probes, pays
  hash memory and per-expiry maintenance) or an **indexed nested loop**
  (INL) scan (no index memory, probe cost grows with the window);
* asymmetric combinations win when arrival rates differ — spend the
  cheap strategy on the fast stream's probes into the slow stream's
  small window, and vice versa.

CPU accounting: the operator sums abstract work units (``cpu_used``)
using per-action costs, so experiment E3 can compare strategies under a
fixed CPU budget without relying on Python wall-clock timing.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Callable, Sequence

from repro.core.tuples import Punctuation, Record
from repro.errors import WindowError
from repro.operators.base import BinaryOperator, Element
from repro.windows.spec import RowWindow, TimeWindow, WindowSpec

__all__ = ["WindowJoin", "JoinCosts"]


class JoinCosts:
    """Abstract per-action CPU costs for the KNV03 cost model."""

    def __init__(
        self,
        hash_probe: float = 1.0,
        hash_insert: float = 1.0,
        hash_invalidate: float = 1.0,
        scan_tuple: float = 0.25,
        list_insert: float = 0.25,
        list_invalidate: float = 0.25,
        output: float = 0.1,
    ) -> None:
        self.hash_probe = hash_probe
        self.hash_insert = hash_insert
        self.hash_invalidate = hash_invalidate
        self.scan_tuple = scan_tuple
        self.list_insert = list_insert
        self.list_invalidate = list_invalidate
        self.output = output


class _Side:
    """Window state for one join input."""

    def __init__(
        self, window: WindowSpec, keys: Sequence[str], strategy: str
    ) -> None:
        if not isinstance(window, (TimeWindow, RowWindow)):
            raise WindowError(
                f"window join supports RANGE/ROWS windows; got "
                f"{window.describe()}"
            )
        if strategy not in ("hash", "nl"):
            raise WindowError(f"join strategy must be 'hash' or 'nl': {strategy}")
        self.window = window
        self.keys = list(keys)
        self.strategy = strategy
        self.queue: deque[Record] = deque()  # arrival order, for expiry
        self.table: dict[tuple, list[Record]] = {}  # hash strategy only

    def insert(self, record: Record) -> None:
        self.queue.append(record)
        if self.strategy == "hash":
            self.table.setdefault(record.key(self.keys), []).append(record)

    def expire(self, ref_ts: float) -> int:
        """Invalidate tuples that left the window; return how many."""
        removed = 0
        while self.queue and self._expired(self.queue[0], ref_ts):
            old = self.queue.popleft()
            removed += 1
            if self.strategy == "hash":
                bucket = self.table.get(old.key(self.keys))
                if bucket:
                    bucket.remove(old)
                    if not bucket:
                        del self.table[old.key(self.keys)]
        return removed

    def _expired(self, record: Record, ref_ts: float) -> bool:
        if isinstance(self.window, TimeWindow):
            return record.ts <= ref_ts - self.window.range_
        return len(self.queue) > self.window.rows

    def matches(self, key: tuple) -> tuple[list[Record], int]:
        """Return (matching tuples, tuples inspected)."""
        if self.strategy == "hash":
            found = self.table.get(key, [])
            return list(found), len(found)
        found = [r for r in self.queue if r.key(self.keys) == key]
        return found, len(self.queue)

    def __len__(self) -> int:
        return len(self.queue)

    def memory(self) -> float:
        base = float(len(self.queue))
        if self.strategy == "hash":
            base += float(len(self.table))  # directory overhead
        return base


class WindowJoin(BinaryOperator):
    """KNV03 binary window join with per-side strategies.

    Parameters
    ----------
    left_window, right_window:
        :class:`TimeWindow` or :class:`RowWindow` per input.
    left_keys, right_keys:
        Equi-join attributes.
    left_strategy, right_strategy:
        ``"hash"`` or ``"nl"`` — how *that side's window* is organized
        (and therefore how the opposite stream probes it).
    """

    def __init__(
        self,
        left_window: WindowSpec,
        right_window: WindowSpec,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        left_strategy: str = "hash",
        right_strategy: str = "hash",
        theta: Callable[[Record, Record], bool] | None = None,
        costs: JoinCosts | None = None,
        name: str = "window_join",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        if len(left_keys) != len(right_keys):
            raise ValueError("left_keys and right_keys must align")
        self.sides = (
            _Side(left_window, left_keys, left_strategy),
            _Side(right_window, right_keys, right_strategy),
        )
        self.theta = theta
        self.costs = costs or JoinCosts()
        #: total abstract CPU consumed so far
        self.cpu_used = 0.0
        #: join results produced
        self.results = 0

    def on_record(self, record: Record, port: int) -> list[Element]:
        me = self.sides[port]
        other = self.sides[1 - port]
        costs = self.costs

        # 0. invalidate expired tuples (KNV03 step 3, hoisted before the
        #    probe so expired tuples can never produce results; windows
        #    define which pairs are valid, |a.ts - b.ts| <= T)
        for side in self.sides:
            removed = side.expire(record.ts)
            per_removal = (
                costs.hash_invalidate
                if side.strategy == "hash"
                else costs.list_invalidate
            )
            self.cpu_used += removed * per_removal

        # 1. probe the other side's window
        key = record.key(me.keys)
        found, inspected = other.matches(key)
        if other.strategy == "hash":
            self.cpu_used += costs.hash_probe
        else:
            self.cpu_used += inspected * costs.scan_tuple

        out: list[Element] = []
        for match in found:
            left, right = (record, match) if port == 0 else (match, record)
            if self.theta is None or self.theta(left, right):
                out.append(left.merged(right, ts=max(left.ts, right.ts)))
                self.results += 1
                self.cpu_used += costs.output

        # 2. insert into my window
        me.insert(record)
        self.cpu_used += (
            costs.hash_insert if me.strategy == "hash" else costs.list_insert
        )
        # Row-count windows shrink on insert, not on time.
        if isinstance(me.window, RowWindow):
            removed = me.expire(record.ts)
            per_removal = (
                costs.hash_invalidate
                if me.strategy == "hash"
                else costs.list_invalidate
            )
            self.cpu_used += removed * per_removal
        return out

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        """Amortized probe loop for a batch arriving on one input.

        Side/cost attribute lookups are hoisted out of the loop and the
        abstract CPU charge is accumulated locally, folding back into
        ``cpu_used`` once per batch instead of several times per tuple.
        """
        self._validate_port(port)
        me = self.sides[port]
        other = self.sides[1 - port]
        costs = self.costs
        theta = self.theta
        me_keys = me.keys
        me_is_rows = isinstance(me.window, RowWindow)
        me_insert_cost = (
            costs.hash_insert if me.strategy == "hash" else costs.list_insert
        )
        me_invalidate_cost = (
            costs.hash_invalidate
            if me.strategy == "hash"
            else costs.list_invalidate
        )
        other_invalidate_cost = (
            costs.hash_invalidate
            if other.strategy == "hash"
            else costs.list_invalidate
        )
        other_is_hash = other.strategy == "hash"
        cpu = 0.0
        results = 0
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                self.cpu_used += cpu
                cpu = 0.0
                out.extend(self.on_punctuation(el, port))
                continue
            cpu += me.expire(el.ts) * me_invalidate_cost
            cpu += other.expire(el.ts) * other_invalidate_cost
            key = el.key(me_keys)
            found, inspected = other.matches(key)
            if other_is_hash:
                cpu += costs.hash_probe
            else:
                cpu += inspected * costs.scan_tuple
            for match in found:
                left, right = (el, match) if port == 0 else (match, el)
                if theta is None or theta(left, right):
                    append(left.merged(right, ts=max(left.ts, right.ts)))
                    results += 1
                    cpu += costs.output
            me.insert(el)
            cpu += me_insert_cost
            if me_is_rows:
                cpu += me.expire(el.ts) * me_invalidate_cost
        self.cpu_used += cpu
        self.results += results
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound = punct.bound_for("ts")
        if bound is None:
            bound = punct.ts
        for side in self.sides:
            side.expire(bound)
        return []

    def reset(self) -> None:
        for side in self.sides:
            side.queue.clear()
            side.table.clear()
        self.cpu_used = 0.0
        self.results = 0

    def snapshot(self) -> object:
        # One deepcopy call over both sides' queue+table keeps the
        # identity sharing between a side's arrival queue and its hash
        # buckets (they reference the same Record objects).
        sides = copy.deepcopy(
            [(side.queue, side.table) for side in self.sides]
        )
        return {
            "sides": sides,
            "cpu_used": self.cpu_used,
            "results": self.results,
        }

    def restore(self, state: object) -> None:
        sides = copy.deepcopy(state["sides"])
        for side, (queue, table) in zip(self.sides, sides):
            side.queue = queue
            side.table = table
        self.cpu_used = state["cpu_used"]
        self.results = state["results"]

    def memory(self) -> float:
        return self.sides[0].memory() + self.sides[1].memory()

    def window_sizes(self) -> tuple[int, int]:
        return len(self.sides[0]), len(self.sides[1])
