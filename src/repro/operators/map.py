"""Per-element transformation operators."""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core.tuples import (
    DropKeys,
    FeedbackPunctuation,
    Punctuation,
    Record,
)
from repro.errors import ColumnUnavailable
from repro.feedback.translate import canonical_pattern
from repro.operators.base import Element, UnaryOperator

__all__ = ["MapOp", "Rename", "Extend"]


class MapOp(UnaryOperator):
    """Apply ``fn(record) -> dict`` and emit the transformed record.

    ``fn`` returning ``None`` drops the record (filter-map).
    """

    def __init__(
        self,
        fn: Callable[[Record], Mapping[str, Any] | None],
        name: str = "map",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.fn = fn

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = self.fn(record)
        if values is None:
            return []
        return [record.with_values(values)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        fn = self.fn
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = fn(el)
            if values is not None:
                append(el.with_values(values))
        return out

    def supports_columns(self) -> bool:
        # Vectorizable only for batch-aware functions such as
        # repro.columnar.ColumnMapFn (which never drop records).
        return hasattr(self.fn, "apply_columns")

    def _transform_columns(self, batch):
        return self.fn.apply_columns(batch)

    def process_columns(self, batch, port: int = 0):
        self._validate_port(port)
        try:
            return self._transform_columns(batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)


class Rename(UnaryOperator):
    """Rename attributes (used to qualify join inputs)."""

    def __init__(self, mapping: Mapping[str, str], name: str = "rename") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)
        self.mapping = dict(mapping)

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = {
            self.mapping.get(k, k): v for k, v in record.values.items()
        }
        return [record.with_values(values)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        mapping_get = self.mapping.get
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = {mapping_get(k, k): v for k, v in el.values.items()}
            append(el.with_values(values))
        return out

    def supports_columns(self) -> bool:
        return True

    def _transform_columns(self, batch):
        full = batch.materialize()
        mapping_get = self.mapping.get
        names = full.fields()
        renamed = [mapping_get(n, n) for n in names]
        if len(set(renamed)) != len(renamed):
            # Colliding targets resolve per-record in the tuple path
            # (that record's key order wins); don't vectorize those.
            raise ColumnUnavailable(
                f"rename {self.name!r} maps several fields to one name"
            )
        columns = {}
        masks = {}
        for old, new in zip(names, renamed):
            values, mask = full.raw_column(old)
            columns[new] = values
            if mask is not None:
                masks[new] = mask
        return full.with_columns(columns, masks)

    def process_columns(self, batch, port: int = 0):
        self._validate_port(port)
        try:
            return self._transform_columns(batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)

    def feedback_mapping(self) -> dict[str, str]:
        """Output attr → input attr (the inverse of ``mapping``).

        When several input attributes collapse onto one output name the
        output attr is ambiguous and left out — feedback naming it is
        forwarded untranslated rather than guessing.
        """
        inverse: dict[str, str] = {}
        ambiguous: set[str] = set()
        for old, new in self.mapping.items():
            if new in inverse:
                ambiguous.add(new)
            inverse[new] = old
        for name in ambiguous:
            del inverse[name]
        return inverse

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        mapping = self.feedback_mapping()
        renamed: list[tuple[str, object]] = []
        for name, pat in fb.pattern:
            # Identity for untouched attrs: only names this rename
            # produces or consumes need mapping.
            if name in mapping:
                renamed.append((mapping[name], pat))
            elif name in self.mapping:
                return [fb]  # source name: gone downstream, ambiguous here
            else:
                renamed.append((name, pat))
        advice = fb.advice
        if isinstance(advice, DropKeys):
            if advice.attr in mapping:
                advice = DropKeys(mapping[advice.attr], advice.keys)
            elif advice.attr in self.mapping:
                return [fb]
        return [fb.with_pattern(canonical_pattern(renamed), advice)]


class Extend(UnaryOperator):
    """Add computed attributes, keeping the existing ones.

    This is the GSQL idiom ``time/60 as tb`` (slide 37): derive a window
    bucket or peer id without losing the rest of the tuple.
    """

    def __init__(
        self,
        additions: Mapping[str, Callable[[Record], Any]],
        name: str = "extend",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.additions = dict(additions)

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = dict(record.values)
        for out_name, fn in self.additions.items():
            values[out_name] = fn(record)
        return [record.with_values(values)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        additions = list(self.additions.items())
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = dict(el.values)
            for out_name, fn in additions:
                values[out_name] = fn(el)
            append(el.with_values(values))
        return out

    def supports_columns(self) -> bool:
        return all(
            hasattr(fn, "values") and not isinstance(fn, dict)
            for fn in self.additions.values()
        )

    def _transform_columns(self, batch):
        from repro.columnar.expr import column_of

        full = batch.materialize()
        columns = {}
        masks = {}
        for name in full.fields():
            values, mask = full.raw_column(name)
            columns[name] = values
            if mask is not None:
                masks[name] = mask
        for out_name, fn in self.additions.items():
            # Each addition reads the *input* record, same as the tuple
            # path, so evaluating over the original batch is exact.
            columns[out_name] = column_of(fn.values(batch), batch)
            masks.pop(out_name, None)
        return full.with_columns(columns, masks)

    def process_columns(self, batch, port: int = 0):
        self._validate_port(port)
        try:
            return self._transform_columns(batch)
        except ColumnUnavailable:
            return self.process_batch(batch.to_rows(), port)
