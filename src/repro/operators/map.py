"""Per-element transformation operators."""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.tuples import Record
from repro.operators.base import Element, UnaryOperator

__all__ = ["MapOp", "Rename", "Extend"]


class MapOp(UnaryOperator):
    """Apply ``fn(record) -> dict`` and emit the transformed record.

    ``fn`` returning ``None`` drops the record (filter-map).
    """

    def __init__(
        self,
        fn: Callable[[Record], Mapping[str, Any] | None],
        name: str = "map",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.fn = fn

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = self.fn(record)
        if values is None:
            return []
        return [record.with_values(values)]


class Rename(UnaryOperator):
    """Rename attributes (used to qualify join inputs)."""

    def __init__(self, mapping: Mapping[str, str], name: str = "rename") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)
        self.mapping = dict(mapping)

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = {
            self.mapping.get(k, k): v for k, v in record.values.items()
        }
        return [record.with_values(values)]


class Extend(UnaryOperator):
    """Add computed attributes, keeping the existing ones.

    This is the GSQL idiom ``time/60 as tb`` (slide 37): derive a window
    bucket or peer id without losing the rest of the tuple.
    """

    def __init__(
        self,
        additions: Mapping[str, Callable[[Record], Any]],
        name: str = "extend",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.additions = dict(additions)

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = dict(record.values)
        for out_name, fn in self.additions.items():
            values[out_name] = fn(record)
        return [record.with_values(values)]
