"""Per-element transformation operators."""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core.tuples import Punctuation, Record
from repro.operators.base import Element, UnaryOperator

__all__ = ["MapOp", "Rename", "Extend"]


class MapOp(UnaryOperator):
    """Apply ``fn(record) -> dict`` and emit the transformed record.

    ``fn`` returning ``None`` drops the record (filter-map).
    """

    def __init__(
        self,
        fn: Callable[[Record], Mapping[str, Any] | None],
        name: str = "map",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        self.fn = fn

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = self.fn(record)
        if values is None:
            return []
        return [record.with_values(values)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        fn = self.fn
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = fn(el)
            if values is not None:
                append(el.with_values(values))
        return out


class Rename(UnaryOperator):
    """Rename attributes (used to qualify join inputs)."""

    def __init__(self, mapping: Mapping[str, str], name: str = "rename") -> None:
        super().__init__(name, cost_per_tuple=0.0, selectivity=1.0)
        self.mapping = dict(mapping)

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = {
            self.mapping.get(k, k): v for k, v in record.values.items()
        }
        return [record.with_values(values)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        mapping_get = self.mapping.get
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = {mapping_get(k, k): v for k, v in el.values.items()}
            append(el.with_values(values))
        return out


class Extend(UnaryOperator):
    """Add computed attributes, keeping the existing ones.

    This is the GSQL idiom ``time/60 as tb`` (slide 37): derive a window
    bucket or peer id without losing the rest of the tuple.
    """

    def __init__(
        self,
        additions: Mapping[str, Callable[[Record], Any]],
        name: str = "extend",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        self.additions = dict(additions)

    def on_record(self, record: Record, port: int) -> list[Element]:
        values = dict(record.values)
        for out_name, fn in self.additions.items():
            values[out_name] = fn(record)
        return [record.with_values(values)]

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        additions = list(self.additions.items())
        out: list[Element] = []
        append = out.append
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                continue
            values = dict(el.values)
            for out_name, fn in additions:
                values[out_name] = fn(el)
            append(el.with_values(values))
        return out
