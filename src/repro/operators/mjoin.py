"""Sliding-window multi-joins (Golab & Özsu, VLDB 2003 — [GO03]).

Slide 30 notes that stream-join work "focuses on joins between streams
with windows specified on each stream", and the deck's references
include [GO03], *Processing Sliding Window Multi-Joins in Continuous
Queries over Data Streams*.  This module implements that n-way case:
one operator holding a window per input, joining all inputs on a common
equi-key (the star/shared-key setting GO03 analyzes).

Per new tuple on input *i*:

1. expire every window against the arrival timestamp,
2. probe the other windows **in a chosen order**, short-circuiting as
   soon as any window has no match — the order is the GO03 question:
   probing the most selective (fewest expected matches) stream first
   minimizes intermediate results,
3. emit the cross-product of matches merged with the new tuple,
4. insert the tuple into window *i*.

Probe-order strategies:

* ``"fixed"`` — input order (the naive baseline),
* ``"smallest_window"`` — fewest currently buffered tuples first,
* ``"fewest_matches"`` — fewest *matching* tuples first (one cheap hash
  lookup per side before committing to an order; GO03's heuristic).

``cpu_used`` counts abstract work (probes + intermediate-result rows)
so experiment A4 can compare orderings without wall-clock noise.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError, WindowError
from repro.operators.base import Element, Operator
from repro.operators.window_join import _Side
from repro.windows.spec import RowWindow, TimeWindow, WindowSpec

__all__ = ["MultiJoin"]

_ORDERS = ("fixed", "smallest_window", "fewest_matches")


class MultiJoin(Operator):
    """N-way sliding-window equi-join on a shared key.

    Parameters
    ----------
    windows:
        One :class:`TimeWindow`/:class:`RowWindow` per input stream.
    keys:
        Per-input key attribute lists (all must have equal length; a
        tuple from any input matches tuples whose key values are equal).
    probe_order:
        ``"fixed"``, ``"smallest_window"``, or ``"fewest_matches"``.
    """

    def __init__(
        self,
        windows: Sequence[WindowSpec],
        keys: Sequence[Sequence[str]],
        probe_order: str = "fewest_matches",
        name: str = "mjoin",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity)
        if len(windows) < 2:
            raise PlanError("MultiJoin needs at least two inputs")
        if len(windows) != len(keys):
            raise PlanError("windows and keys must align")
        lengths = {len(k) for k in keys}
        if len(lengths) != 1:
            raise PlanError("all key lists must have the same length")
        if probe_order not in _ORDERS:
            raise WindowError(
                f"probe_order must be one of {_ORDERS}; got {probe_order!r}"
            )
        self.arity = len(windows)
        self.probe_order = probe_order
        self.sides = [
            _Side(w, k, strategy="hash") for w, k in zip(windows, keys)
        ]
        #: abstract work: hash probes + intermediate rows materialized
        self.cpu_used = 0.0
        self.results = 0

    # -- data path -----------------------------------------------------------

    def on_record(self, record: Record, port: int) -> list[Element]:
        for side in self.sides:
            side.expire(record.ts)

        key = record.key(self.sides[port].keys)
        other_ports = [p for p in range(self.arity) if p != port]

        # Choose probe order.
        if self.probe_order == "smallest_window":
            other_ports.sort(key=lambda p: (len(self.sides[p]), p))
        elif self.probe_order == "fewest_matches":
            sizes = {}
            for p in other_ports:
                matches, _inspected = self.sides[p].matches(key)
                sizes[p] = len(matches)
                self.cpu_used += 1  # the sizing lookup
            other_ports.sort(key=lambda p: (sizes[p], p))

        # Cascade with short-circuit.
        partials: list[list[Record]] = [[record]]
        per_port_matches: list[list[Record]] = []
        for p in other_ports:
            found, _inspected = self.sides[p].matches(key)
            self.cpu_used += 1  # the probe
            if not found:
                per_port_matches = []
                break
            per_port_matches.append(found)
            # Intermediate-result cost: rows materialized so far.
            self.cpu_used += len(found) * len(partials[-1])
            partials.append(
                [a.merged(b) for a in partials[-1] for b in found]
            )

        out: list[Element] = []
        if per_port_matches and len(per_port_matches) == len(other_ports):
            for combo in partials[-1]:
                merged = combo
                merged = Record(
                    merged.values, ts=record.ts, seq=record.seq
                )
                out.append(merged)
                self.results += 1

        self.sides[port].insert(record)
        self.cpu_used += 1  # the insert
        # Row windows shrink on insert.
        if isinstance(self.sides[port].window, RowWindow):
            self.sides[port].expire(record.ts)
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound = punct.bound_for("ts")
        if bound is None:
            bound = punct.ts
        for side in self.sides:
            side.expire(bound)
        return []

    def reset(self) -> None:
        for side in self.sides:
            side.queue.clear()
            side.table.clear()
        self.cpu_used = 0.0
        self.results = 0

    def memory(self) -> float:
        return sum(side.memory() for side in self.sides)

    def window_sizes(self) -> tuple[int, ...]:
        return tuple(len(side) for side in self.sides)
