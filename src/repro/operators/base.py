"""Operator base classes.

Operators are the nodes of a query plan.  Each operator consumes stream
elements (records and punctuations) on one or more input ports and emits
elements on a single output.  Operators are *push-based*: the engine (or
an upstream operator in a fused chain) calls :meth:`Operator.process` for
every arriving element and :meth:`Operator.flush` at end of stream.

Operators also expose the metadata the optimization and scheduling layers
need (slides 39-43):

* ``cost_per_tuple`` — virtual service time per input tuple,
* ``selectivity`` — expected output tuples per input tuple (also used as
  the *size* reduction factor in the Chain memory model of slide 43),
* ``memory()`` — current operator state footprint.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.tuples import FeedbackPunctuation, Punctuation, Record
from repro.errors import PlanError

__all__ = ["Operator", "UnaryOperator", "BinaryOperator", "CompiledChain"]

Element = Record | Punctuation


class Operator:
    """Base class for all stream operators."""

    #: Number of input ports the operator expects.
    arity: int = 1

    def __init__(
        self,
        name: str = "",
        cost_per_tuple: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        self.name = name or type(self).__name__.lower()
        self.cost_per_tuple = cost_per_tuple
        self.selectivity = selectivity

    @property
    def kind(self) -> str:
        """Operator kind label for metric exporters (lowercase class
        name; e.g. Prometheus ``kind="select"``)."""
        return type(self).__name__.lower()

    # -- data path -------------------------------------------------------

    def _validate_port(self, port: int) -> None:
        if port < 0 or port >= self.arity:
            raise PlanError(
                f"operator {self.name!r} has arity {self.arity}; got port {port}"
            )

    def process(self, element: Element, port: int = 0) -> list[Element]:
        """Consume one element on ``port``; return emitted elements."""
        self._validate_port(port)
        if isinstance(element, Punctuation):
            return self.on_punctuation(element, port)
        return self.on_record(element, port)

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        """Consume a micro-batch of elements on ``port``, in order.

        The contract is strict equivalence: ``process_batch(batch)`` must
        emit exactly the concatenation of ``process(el)`` over the batch.
        The default implementation does literally that, so every operator
        supports batching; hot operators override it with amortized loops
        that skip the per-element dispatch machinery.
        """
        self._validate_port(port)
        out: list[Element] = []
        extend = out.extend
        on_record = self.on_record
        on_punctuation = self.on_punctuation
        for el in elements:
            if isinstance(el, Punctuation):
                extend(on_punctuation(el, port))
            else:
                extend(on_record(el, port))
        return out

    def on_record(self, record: Record, port: int) -> list[Element]:
        """Handle one data tuple.  Subclasses override."""
        raise NotImplementedError

    # -- columnar path -----------------------------------------------------

    def supports_columns(self) -> bool:
        """Whether :meth:`process_columns` may be used on this instance.

        The engine's columnar tier calls this per operator to decide
        between handing it a :class:`~repro.columnar.batch.ColumnBatch`
        or converting back to records.  The answer may depend on the
        *configuration* (e.g. a ``Select`` is columnar-capable only when
        its predicate is a vectorizable expression), so this is a method
        on the instance, not a class flag.  Base default: ``False``.
        """
        return False

    def process_columns(self, batch, port: int = 0):
        """Consume a columnar micro-batch (records only, no punctuation).

        Only called when :meth:`supports_columns` is true.  Returns
        either a :class:`~repro.columnar.batch.ColumnBatch` (stateless
        transforms) or a list of elements (aggregations that emit on
        punctuation return ``[]`` here and keep emitting through
        :meth:`on_punctuation`/:meth:`flush`).  The contract is strict
        equivalence with ``process_batch(batch.to_rows(), port)``; the
        standard escape hatch for unvectorizable batches (null masks,
        odd types) is to catch
        :class:`~repro.errors.ColumnUnavailable` and call exactly that.
        """
        raise NotImplementedError(
            f"operator {self.name!r} does not support columnar execution"
        )

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        """Handle a punctuation.

        The default for stateless operators is to propagate it unchanged
        (the punctuation still describes the output stream).  Stateful
        operators override this to purge state and/or unblock results
        (TMSF03, slide 28).
        """
        return [punct]

    def flush(self) -> list[Element]:
        """Emit anything still buffered at end of stream."""
        return []

    def reset(self) -> None:
        """Discard all operator state, making the instance reusable."""

    # -- state snapshots ---------------------------------------------------

    def snapshot(self) -> object:
        """Capture the operator's mutable state for checkpointing.

        Returns a picklable value that, passed to :meth:`restore` on an
        operator configured identically (same constructor arguments),
        reproduces this operator's state exactly.  The returned value
        must be *detached*: later processing on this operator must not
        mutate an already-taken snapshot, and one snapshot must survive
        being restored multiple times.  Stateless operators return
        ``None`` (the base default); stateful operators override both
        methods.  Epoch-aligned fault tolerance
        (:mod:`repro.resilience`) is built on this protocol.
        """
        return None

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot`.

        The base implementation accepts only ``None`` (the stateless
        snapshot); a non-``None`` state on an operator that never
        overrode :meth:`snapshot` indicates a checkpoint/operator
        mismatch and raises.
        """
        if state is not None:
            raise PlanError(
                f"operator {self.name!r} ({type(self).__name__}) is "
                f"stateless but was handed a non-empty snapshot"
            )

    # -- backward control channel ------------------------------------------

    def bind_feedback(self, channel) -> None:
        """Attach the engine's :class:`~repro.feedback.channel.FeedbackChannel`.

        Called by the engine at start; until then :meth:`emit_feedback`
        is a no-op, so operators run unchanged outside an engine.
        """
        self._feedback_channel = channel

    def emit_feedback(self, fb: FeedbackPunctuation) -> None:
        """Send ``fb`` upstream through the bound channel (if any)."""
        channel = getattr(self, "_feedback_channel", None)
        if channel is not None:
            if not fb.origin:
                fb = FeedbackPunctuation(
                    fb.pattern, fb.advice, origin=self.name, seq=fb.seq
                )
            channel.emit(fb)

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        """Handle feedback flowing upstream *through* this operator.

        Returns the feedback to keep propagating to this operator's
        producers.  The base default *forwards* unchanged — correct for
        any operator that neither consumes the advice nor renames
        attributes.  Acting operators return ``[]`` (or a residual) after
        installing the advice; schema-mapping operators translate the
        pattern, forwarding the original when untranslatable (never
        silently dropping it).
        """
        return [fb]

    # -- resource model ----------------------------------------------------

    def memory(self) -> float:
        """Current state footprint in abstract size units."""
        return 0.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class UnaryOperator(Operator):
    """Convenience base for single-input operators."""

    arity = 1


class BinaryOperator(Operator):
    """Convenience base for two-input operators (joins, unions)."""

    arity = 2


class CompiledChain(UnaryOperator):
    """A fused linear pipeline of unary operators.

    Useful both as an execution convenience and as the unit the Chain
    scheduler reasons about.  Selectivity and cost compose multiplicatively
    and additively respectively.
    """

    def __init__(self, operators: Sequence[Operator], name: str = "chain") -> None:
        if not operators:
            raise PlanError("CompiledChain requires at least one operator")
        for op in operators:
            if op.arity != 1:
                raise PlanError(
                    f"CompiledChain only fuses unary operators; {op.name!r} "
                    f"has arity {op.arity}"
                )
        selectivity = 1.0
        cost = 0.0
        for op in operators:
            selectivity *= op.selectivity
            cost += op.cost_per_tuple
        super().__init__(name, cost_per_tuple=cost, selectivity=selectivity)
        self.operators = list(operators)

    def process(self, element: Element, port: int = 0) -> list[Element]:
        batch: list[Element] = [element]
        for op in self.operators:
            next_batch: list[Element] = []
            for el in batch:
                next_batch.extend(op.process(el, 0))
            batch = next_batch
            if not batch:
                return []
        return batch

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # Stage-at-a-time batching: each fused operator consumes the whole
        # intermediate batch before the next stage runs.  Per-element
        # output order is unchanged because every stage preserves it.
        self._validate_port(port)
        batch = list(elements)
        for op in self.operators:
            if not batch:
                return []
            batch = op.process_batch(batch, 0)
        return batch

    def on_record(self, record: Record, port: int) -> list[Element]:
        return self.process(record, port)

    def flush(self) -> list[Element]:
        batch: list[Element] = []
        for i, op in enumerate(self.operators):
            produced = op.flush()
            # Elements flushed by operator i must traverse i+1..end.
            for el in produced:
                chain_rest = self.operators[i + 1 :]
                current = [el]
                for nxt in chain_rest:
                    step: list[Element] = []
                    for c in current:
                        step.extend(nxt.process(c, 0))
                    current = step
                batch.extend(current)
        return batch

    def reset(self) -> None:
        for op in self.operators:
            op.reset()

    def snapshot(self) -> object:
        return [op.snapshot() for op in self.operators]

    def restore(self, state: object) -> None:
        states = list(state) if state is not None else []
        if len(states) != len(self.operators):
            raise PlanError(
                f"chain {self.name!r} has {len(self.operators)} operators "
                f"but the snapshot carries {len(states)} states"
            )
        for op, st in zip(self.operators, states):
            op.restore(st)

    def memory(self) -> float:
        return sum(op.memory() for op in self.operators)

    def bind_feedback(self, channel) -> None:
        super().bind_feedback(channel)
        for op in self.operators:
            op.bind_feedback(channel)

    def on_feedback(
        self, fb: FeedbackPunctuation
    ) -> list[FeedbackPunctuation]:
        # Feedback entering a fused chain from below traverses the
        # constituents in reverse dataflow order, each acting/translating
        # in turn, exactly as if the chain were unfused.
        current = [fb]
        for op in reversed(self.operators):
            passed: list[FeedbackPunctuation] = []
            for item in current:
                passed.extend(op.on_feedback(item))
            current = passed
            if not current:
                return []
        return current


def run_chain(
    operators: Sequence[Operator], elements: Iterable[Element]
) -> list[Element]:
    """Push ``elements`` through a linear chain and return all outputs.

    A small utility used widely in tests: processes every element, then
    flushes the chain.
    """
    chain = CompiledChain(list(operators)) if len(operators) != 1 else None
    out: list[Element] = []
    if chain is None:
        op = operators[0]
        for el in elements:
            out.extend(op.process(el))
        out.extend(op.flush())
        return out
    for el in elements:
        out.extend(chain.process(el))
    out.extend(chain.flush())
    return out
