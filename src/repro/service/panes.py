"""Shared tumbling-window aggregation via partial-aggregate panes.

Queries with compatible tumbling windows — same route, same grouping,
same aggregate list, window widths that share an exact common divisor —
can share the expensive part of aggregation: one :class:`PaneAggregate`
folds every record into per-(pane, group) partial states at the finest
compatible granularity (the gcd of the registered widths, the "pane" of
Arasu & Widom's shared sliding-window evaluation, realized here with
the LFTA/HFTA partial-state machinery of :mod:`repro.gigascope`), and
one cheap :class:`PaneMerge` per distinct query window merges closed
panes into that query's buckets.

The pair is certified element-identical to the direct
:class:`~repro.operators.aggregate.WindowedAggregate`, which requires
mirroring its trigger discipline exactly:

* the direct operator closes buckets *before* accumulating the record
  that advanced the watermark; the pane closes its panes first and
  emits an internal watermark signal, so the merge closes the same
  buckets inside the same element's output;
* whenever the watermark crosses a bucket end, the pane containing the
  previous watermark is still open (a pane only closes once the
  watermark passes its end), so closing panes always fires the signal
  the merge needs — empty trailing panes cannot delay a bucket;
* late records re-open their pane, the pane re-closes it on the next
  element, and the merge re-emits the resurrected bucket — matching
  the direct operator's late-data behavior position for position.

Partial rows carry the *pane start time* (not a pane index) in
``PANE_ATTR``, so a merge computes the target bucket from its own
window alone and the pane granularity can be renegotiated (a new
compatible query shrinks the gcd) before any data has flowed without
touching the merges.

Only order-insensitive aggregates may take this path: merging pane
states replays additions in pane order, not arrival order, so
``first``/``last``/rank-based aggregates are excluded
(:data:`PANE_SAFE_FUNCS`).
"""

from __future__ import annotations

import copy
from typing import Callable, Sequence

from repro.aggregates.spec import AggSpec
from repro.core.tuples import Punctuation, Record
from repro.errors import WindowError
from repro.operators.aggregate import _GroupState, _normalize_group_by
from repro.operators.base import Element, UnaryOperator
from repro.operators.partial_aggregate import STATES_ATTR
from repro.windows.spec import TumblingWindow

__all__ = [
    "PANE_ATTR",
    "PANE_MARK",
    "PANE_SAFE_FUNCS",
    "PaneAggregate",
    "PaneMerge",
    "pane_safe",
]

#: Reserved attribute carrying the pane's start time in partial rows.
PANE_ATTR = "_pane"
#: Pattern attribute marking internal watermark signals (consumed by
#: :class:`PaneMerge`, never forwarded to query outputs).
PANE_MARK = "_pane_wm"

#: Aggregate registry names whose merge is arrival-order insensitive,
#: making pane decomposition exact.  (``stdev`` is the registry's
#: spelling; ``first``/``last``/``median``/``quantile`` are excluded —
#: their merged result depends on the order contributions arrive.)
PANE_SAFE_FUNCS = frozenset(
    {"count", "sum", "min", "max", "avg", "stdev", "count_distinct"}
)


def pane_safe(aggregates: Sequence[AggSpec]) -> bool:
    """Whether every aggregate's function may be pane-decomposed."""
    for spec in aggregates:
        func = spec._func
        if not isinstance(func, str) or func not in PANE_SAFE_FUNCS:
            return False
    return True


class PaneAggregate(UnaryOperator):
    """Shared fine-grained partial aggregation over tumbling panes."""

    def __init__(
        self,
        pane: TumblingWindow,
        group_by: Sequence,
        aggregates: Sequence[AggSpec],
        name: str = "pane_aggregate",
        ts_attr: str = "ts",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        if not isinstance(pane, TumblingWindow):
            raise WindowError("pane aggregation requires a tumbling pane")
        if not pane_safe(aggregates):
            raise WindowError(
                "pane aggregation requires order-insensitive aggregates; "
                f"allowed functions: {sorted(PANE_SAFE_FUNCS)}"
            )
        self.pane = pane
        self.group_by = _normalize_group_by(group_by)
        self.aggregates = list(aggregates)
        self.ts_attr = ts_attr
        self._panes: dict[int, dict[tuple, _GroupState]] = {}
        self._watermark = float("-inf")

    def _signal(self, bound: float) -> Punctuation:
        return Punctuation.of(
            {self.ts_attr: (None, bound), PANE_MARK: (None, bound)},
            ts=bound,
        )

    def _close_panes(self, upto_ts: float) -> list[Element]:
        out: list[Element] = []
        closeable = sorted(
            p
            for p in self._panes
            if self.pane.bucket_start(p + 1) <= upto_ts
        )
        for pane_idx in closeable:
            groups = self._panes.pop(pane_idx)
            start = self.pane.bucket_start(pane_idx)
            end = self.pane.bucket_start(pane_idx + 1)
            for key in sorted(groups, key=repr):
                state = groups[key]
                values = dict(state.key_values)
                values[PANE_ATTR] = start
                values[STATES_ATTR] = list(state.states)
                out.append(Record(values, ts=end))
        return out

    def on_record(self, record: Record, port: int) -> list[Element]:
        if record.ts > self._watermark:
            self._watermark = record.ts
        out = self._close_panes(self._watermark)
        if out:
            out.append(self._signal(self._watermark))
        pane_idx = self.pane.bucket_of(record.ts)
        groups = self._panes.setdefault(pane_idx, {})
        key = tuple(fn(record) for _name, fn in self.group_by)
        state = groups.get(key)
        if state is None:
            values = {name: fn(record) for name, fn in self.group_by}
            state = _GroupState(values, self.aggregates)
            groups[key] = state
        for spec, fn_state in zip(self.aggregates, state.states):
            fn_state.add(spec.extract(record))
        state.count += 1
        return out

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        # Hot path mirroring WindowedAggregate.process_batch: only scan
        # the open-pane table when the watermark crosses the earliest
        # open pane end.
        self._validate_port(port)
        pane = self.pane
        panes = self._panes
        group_by = self.group_by
        specs = self.aggregates
        min_end = min(
            (pane.bucket_start(p + 1) for p in panes),
            default=float("inf"),
        )
        out: list[Element] = []
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
                min_end = min(
                    (pane.bucket_start(p + 1) for p in panes),
                    default=float("inf"),
                )
                continue
            ts = el.ts
            if ts > self._watermark:
                self._watermark = ts
            if self._watermark >= min_end:
                closed = self._close_panes(self._watermark)
                if closed:
                    out.extend(closed)
                    out.append(self._signal(self._watermark))
                min_end = min(
                    (pane.bucket_start(p + 1) for p in panes),
                    default=float("inf"),
                )
            pane_idx = pane.bucket_of(ts)
            groups = panes.get(pane_idx)
            if groups is None:
                groups = {}
                panes[pane_idx] = groups
                end = pane.bucket_start(pane_idx + 1)
                if end < min_end:
                    min_end = end
            key = tuple(fn(el) for _name, fn in group_by)
            state = groups.get(key)
            if state is None:
                values = {name: fn(el) for name, fn in group_by}
                state = _GroupState(values, specs)
                groups[key] = state
            for spec, fn_state in zip(specs, state.states):
                fn_state.add(spec.extract(el))
            state.count += 1
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        out: list[Element] = []
        bound = punct.bound_for(self.ts_attr)
        if bound is not None:
            if bound > self._watermark:
                self._watermark = bound
            out.extend(self._close_panes(self._watermark))
        # The real punctuation reaches every merge, which closes its own
        # buckets from the bound — no internal signal needed here.
        out.append(punct)
        return out

    def flush(self) -> list[Element]:
        out = self._close_panes(float("inf"))
        if out:
            out.append(self._signal(float("inf")))
        return out

    def reset(self) -> None:
        self._panes.clear()
        self._watermark = float("-inf")

    def snapshot(self) -> object:
        return {
            "panes": copy.deepcopy(self._panes),
            "watermark": self._watermark,
        }

    def restore(self, state: object) -> None:
        self._panes = copy.deepcopy(state["panes"])
        self._watermark = state["watermark"]

    def memory(self) -> float:
        return float(sum(len(g) for g in self._panes.values()))


class PaneMerge(UnaryOperator):
    """Per-query merge of shared panes into the query's buckets.

    Consumes pane partial rows and watermark signals; emits exactly the
    rows the query's direct :class:`WindowedAggregate` would: buckets
    ascending, groups sorted by key repr, row ``ts`` at bucket end, the
    bucket id in ``bucket_attr``, HAVING applied to the final row.
    """

    def __init__(
        self,
        window: TumblingWindow,
        group_names: Sequence[str],
        aggregates: Sequence[AggSpec],
        having: Callable[[Record], bool] | None = None,
        name: str = "pane_merge",
        bucket_attr: str = "tb",
        ts_attr: str = "ts",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(name, cost_per_tuple, selectivity=1.0)
        if not isinstance(window, TumblingWindow):
            raise WindowError("pane merge requires a tumbling window")
        self.window = window
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)
        self.having = having
        self.bucket_attr = bucket_attr
        self.ts_attr = ts_attr
        # bucket -> group key tuple -> (key_values, states)
        self._buckets: dict[int, dict[tuple, tuple[dict, list]]] = {}

    def _close_buckets(self, upto_ts: float) -> list[Element]:
        out: list[Element] = []
        closeable = sorted(
            b
            for b in self._buckets
            if self.window.bucket_start(b + 1) <= upto_ts
        )
        for bucket in closeable:
            groups = self._buckets.pop(bucket)
            end_ts = self.window.bucket_start(bucket + 1)
            for key in sorted(groups, key=repr):
                key_values, states = groups[key]
                values = dict(key_values)
                values[self.bucket_attr] = bucket
                for spec, st in zip(self.aggregates, states):
                    values[spec.name] = st.result()
                row = Record(values, ts=end_ts)
                if self.having is None or self.having(row):
                    out.append(row)
        return out

    def on_record(self, record: Record, port: int) -> list[Element]:
        bucket = self.window.bucket_of(record[PANE_ATTR])
        key = record.key(self.group_names)
        groups = self._buckets.setdefault(bucket, {})
        entry = groups.get(key)
        if entry is None:
            key_values = {a: record[a] for a in self.group_names}
            states = [spec.new_state() for spec in self.aggregates]
            entry = (key_values, states)
            groups[key] = entry
        for mine, theirs in zip(entry[1], record[STATES_ATTR]):
            mine.merge(theirs)
        return []

    def process_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> list[Element]:
        self._validate_port(port)
        out: list[Element] = []
        for el in elements:
            if isinstance(el, Punctuation):
                out.extend(self.on_punctuation(el, port))
            else:
                self.on_record(el, port)
        return out

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        bound = punct.bound_for(self.ts_attr)
        out: list[Element] = []
        if bound is not None:
            out.extend(self._close_buckets(bound))
        if punct.bound_for(PANE_MARK) is not None:
            # Internal watermark signal: never part of the query output.
            return out
        out.append(punct)
        return out

    def flush(self) -> list[Element]:
        return self._close_buckets(float("inf"))

    def reset(self) -> None:
        self._buckets.clear()

    def snapshot(self) -> object:
        return {"buckets": copy.deepcopy(self._buckets)}

    def restore(self, state: object) -> None:
        self._buckets = copy.deepcopy(state["buckets"])

    def memory(self) -> float:
        return float(sum(len(g) for g in self._buckets.values()))
