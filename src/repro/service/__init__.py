"""Standing-query service: thousands of CQL queries, one shared DAG.

The multi-query half of the paper's DSMS architecture: per-tenant
registration of continuous queries over shared source streams, executed
jointly via shared-subplan detection (:mod:`.canonical`), predicate
indexing (:mod:`.predindex`), shared pane-based window aggregation
(:mod:`.panes`), and QoS-tiered tenant shedding (:mod:`.qos`) —
orchestrated by :class:`StandingQueryService` (:mod:`.service`).
"""

from repro.service.canonical import (
    StageDescriptor,
    agg_signature,
    node_key,
    route_key,
    suffix_descriptors,
)
from repro.service.panes import (
    PANE_ATTR,
    PANE_SAFE_FUNCS,
    PaneAggregate,
    PaneMerge,
    pane_safe,
)
from repro.service.predindex import PredicateIndex, anchor_of
from repro.service.qos import TenantShedder, TenantSpec
from repro.service.service import (
    QueryHandle,
    QueryResult,
    ServiceConfig,
    ServiceResult,
    StandingQueryService,
)

__all__ = [
    "PANE_ATTR",
    "PANE_SAFE_FUNCS",
    "PaneAggregate",
    "PaneMerge",
    "PredicateIndex",
    "QueryHandle",
    "QueryResult",
    "ServiceConfig",
    "ServiceResult",
    "StageDescriptor",
    "StandingQueryService",
    "TenantShedder",
    "TenantSpec",
    "agg_signature",
    "anchor_of",
    "node_key",
    "pane_safe",
    "route_key",
    "suffix_descriptors",
]
