"""Per-tenant QoS for the standing-query service.

Tenants register under a named service tier; each tier maps to an
Aurora-style loss-QoS graph (:func:`repro.dsms.qos.tier_loss_qos`).
Under overload the service suspends whole tenants, worst-value-first:
:class:`TenantShedder` ranks sheddable tenants with
:func:`repro.dsms.qos.shedding_order` — the tenant whose utility graph
is flattest at its current loss (bronze, then silver, then gold) sheds
first — and restores in LIFO order once pressure clears, with
hysteresis between the two watermarks.
"""

from __future__ import annotations

from repro.dsms.qos import QoSGraph, shedding_order, tier_loss_qos
from repro.errors import ServiceError

__all__ = ["TenantSpec", "TenantShedder"]


class TenantSpec:
    """One tenant's identity and QoS contract."""

    def __init__(
        self, name: str, tier: str = "silver", graph: QoSGraph | None = None
    ) -> None:
        if not name:
            raise ServiceError("tenant name must be non-empty")
        self.name = name
        self.tier = tier
        self.graph = graph if graph is not None else tier_loss_qos(tier)

    def __repr__(self) -> str:
        return f"TenantSpec({self.name!r}, tier={self.tier!r})"


class TenantShedder:
    """Watermark-driven shed/restore policy over tenants.

    ``decide`` is called at every poll with the current pressure and
    each tenant's observed loss fraction; it returns at most one
    transition per poll — ``("shed", name)``, ``("restore", name)``, or
    ``None`` — so the service degrades and recovers one tenant at a
    time rather than oscillating.
    """

    def __init__(self, low: float, high: float) -> None:
        if high <= low:
            raise ServiceError(
                f"shed watermarks must satisfy low < high; "
                f"got low={low}, high={high}"
            )
        self.low = low
        self.high = high
        #: Tenants currently shed, in shed order (restored LIFO).
        self.shed: list[str] = []

    def decide(
        self,
        pressure: float,
        tenants: dict[str, TenantSpec],
        losses: dict[str, float],
    ) -> tuple[str, str] | None:
        if pressure >= self.high:
            candidates = [
                (name, spec.graph, losses.get(name, 0.0))
                for name, spec in tenants.items()
                if name not in self.shed
            ]
            if not candidates:
                return None
            victim = shedding_order(candidates)[0]
            self.shed.append(victim)
            return ("shed", victim)
        if pressure <= self.low and self.shed:
            return ("restore", self.shed.pop())
        return None
