"""The standing-query service: N continuous queries, one merged DAG.

:class:`StandingQueryService` is the long-running DSMS facade the paper
describes: tenants register CQL queries over shared source streams, and
the service executes all of them as **one** exact push-engine plan:

* registration compiles the query, canonicalizes it
  (:mod:`repro.service.canonical`), and merges it into a shared DAG —
  identical (source, WHERE-set, suffix-prefix) chains collapse into
  single operator chains with fan-out;
* arriving tuples probe a per-source predicate index
  (:mod:`repro.service.predindex`) and are fed only to the routes whose
  selection they satisfy — one probe instead of N filter evaluations;
* compatible tumbling aggregations share partial-aggregate panes
  (:mod:`repro.service.panes`);
* tenants get admission control, QoS-tiered load shedding
  (:mod:`repro.service.qos`), and per-query ``RunResult``-style
  outputs and metrics.

Registration and deregistration while the stream is live reuse the
engine's migration protocol (``migrate_plan(allow_io_changes=True)``):
surviving queries keep operator state and accumulated output, which the
differential suite certifies element-identical to isolated engines.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.core.engine import Engine, RunResult
from repro.core.graph import Plan
from repro.core.metrics import MetricsRegistry, OperatorMetrics
from repro.core.stream import Source, merge_sources
from repro.core.tuples import Punctuation, Record
from repro.cql.ast import SelectStmt, split_conjuncts
from repro.cql.parser import parse
from repro.cql.planner import _Passthrough, plan_stmt, shareable_chain
from repro.cql.registry import Catalog
from repro.cql.semantic import (
    compile_expr,
    detect_tumbling_group,
    resolve_stmt,
)
from repro.errors import AdmissionError, ServiceError, StreamError
from repro.gigascope.decompose import shared_pane_width
from repro.operators.aggregate import Aggregate, WindowedAggregate
from repro.operators.base import Element, Operator, UnaryOperator
from repro.operators.project import DistinctProject, Project
from repro.operators.sort import Limit, Sort
from repro.operators.streamify import DStream, IStream, RStream
from repro.service.canonical import (
    StageDescriptor,
    agg_signature,
    digest,
    node_key,
    route_key,
    suffix_descriptors,
)
from repro.service.panes import PaneAggregate, PaneMerge, pane_safe
from repro.service.predindex import PredicateIndex
from repro.service.qos import TenantShedder, TenantSpec
from repro.windows.spec import TumblingWindow

__all__ = [
    "QueryHandle",
    "QueryResult",
    "ServiceConfig",
    "ServiceResult",
    "StandingQueryService",
]

_KIND_CLASSES: dict[str, tuple[type, ...]] = {
    "aggregate": (Aggregate, WindowedAggregate),
    "project": (Project,),
    "distinct": (DistinctProject,),
    "scan": (_Passthrough,),
    "sort": (Sort,),
    "limit": (Limit,),
    "istream": (IStream,),
    "dstream": (DStream,),
    "rstream": (RStream,),
}


class _Drain(UnaryOperator):
    """Keeps the merged plan valid when zero queries are active."""

    def on_record(self, record: Record, port: int) -> list[Element]:
        return []

    def on_punctuation(self, punct: Punctuation, port: int) -> list[Element]:
        return []


class ServiceConfig:
    """Tuning knobs for a :class:`StandingQueryService`.

    Parameters
    ----------
    batch_size:
        Engine micro-batch size (``None`` / int / ``"auto"``); also the
        service's route-buffer chunk size.
    guard:
        Optional :class:`~repro.resilience.OverloadGuard` attached to
        the merged engine.
    observe:
        Engine observation config (see :mod:`repro.observe`).
    max_queries / max_queries_per_tenant:
        Admission-control caps; exceeding either raises
        :class:`~repro.errors.AdmissionError`.
    shed_low / shed_high:
        Pressure watermarks for tenant-level shedding; both ``None``
        disables it.
    shed_poll:
        Records between shedding-policy polls.
    pressure:
        Pressure probe ``fn(service) -> float``.  Defaults to the sum
        of the guard's ingress backlog sizes (0 with no guard) —
        tests inject a deterministic function here.
    """

    def __init__(
        self,
        batch_size: int | str | None = None,
        guard=None,
        observe=None,
        max_queries: int | None = None,
        max_queries_per_tenant: int | None = None,
        shed_low: float | None = None,
        shed_high: float | None = None,
        shed_poll: int = 64,
        pressure: Callable[["StandingQueryService"], float] | None = None,
    ) -> None:
        if (shed_low is None) != (shed_high is None):
            raise ServiceError(
                "shed_low and shed_high must be set together"
            )
        if shed_poll < 1:
            raise ServiceError(f"shed_poll must be >= 1; got {shed_poll}")
        self.batch_size = batch_size
        self.guard = guard
        self.observe = observe
        self.max_queries = max_queries
        self.max_queries_per_tenant = max_queries_per_tenant
        self.shed_low = shed_low
        self.shed_high = shed_high
        self.shed_poll = shed_poll
        self.pressure = pressure


class QueryHandle:
    """Public identity of one registered standing query."""

    def __init__(
        self, qid: int, query: str, tenant: str, shared: bool
    ) -> None:
        self.qid = qid
        self.query = query
        self.tenant = tenant
        #: whether the query joined the shared DAG (vs a private plan)
        self.shared = shared
        self.output = f"q:{qid}"

    def __repr__(self) -> str:
        return f"QueryHandle(qid={self.qid}, tenant={self.tenant!r})"


class QueryResult:
    """Per-query slice of a finished service run (``RunResult`` style)."""

    def __init__(
        self,
        qid: int,
        query: str,
        tenant: str,
        outputs: list[Element],
        delivered: int,
        shed: int,
        operator_names: list[str],
        metrics: MetricsRegistry,
    ) -> None:
        self.qid = qid
        self.query = query
        self.tenant = tenant
        self.outputs = outputs
        #: records routed into this query's chain while it was active
        self.delivered = delivered
        #: records this query would have received while suspended
        self.shed = shed
        self.operator_names = operator_names
        self._metrics = metrics

    def records(self) -> list[Record]:
        return [el for el in self.outputs if isinstance(el, Record)]

    def values(self) -> list[dict]:
        return [r.values for r in self.records()]

    def punctuations(self) -> list[Punctuation]:
        return [el for el in self.outputs if isinstance(el, Punctuation)]

    def operator_metrics(self) -> dict[str, OperatorMetrics]:
        """This query's per-operator counters (shared ops included)."""
        return {
            name: self._metrics.operators[name]
            for name in self.operator_names
            if name in self._metrics.operators
        }

    @property
    def loss_fraction(self) -> float:
        total = self.delivered + self.shed
        return self.shed / total if total else 0.0


class ServiceResult:
    """Everything a finished service run produced."""

    def __init__(
        self,
        queries: dict[int, QueryResult],
        metrics: MetricsRegistry,
        dropped: int,
        shed_log: list[tuple[str, str, float]],
        stats: dict,
    ) -> None:
        self.queries = queries
        self.metrics = metrics
        self.dropped = dropped
        self.shed_log = shed_log
        self.stats = stats

    def query(self, handle: QueryHandle | int) -> QueryResult:
        qid = handle.qid if isinstance(handle, QueryHandle) else handle
        if qid not in self.queries:
            raise ServiceError(f"unknown query id {qid}")
        return self.queries[qid]

    def by_tenant(self, tenant: str) -> list[QueryResult]:
        return [q for q in self.queries.values() if q.tenant == tenant]


class _Route:
    """One distinct (source, WHERE-conjunct set): a shared plan input."""

    __slots__ = ("key", "source", "conjuncts", "predicate", "input_name", "queries")

    def __init__(self, key, source, conjuncts, predicate) -> None:
        self.key = key
        self.source = source
        self.conjuncts = conjuncts
        self.predicate = predicate
        self.input_name = f"r:{key}"
        self.queries: set[int] = set()


class _Query:
    """Internal registration record."""

    def __init__(self, qid: int, text: str, tenant: str, gen: int) -> None:
        self.qid = qid
        self.text = text
        self.tenant = tenant
        self.gen = gen
        self.private = False
        self.plan: Plan | None = None  # private full plan
        self.chain: list[Operator] | None = None
        self.descs: list[StageDescriptor] | None = None
        self.route_key: str | None = None
        self.sources: list[str] = []
        self.pane_ck: str | None = None
        self.width: float | None = None
        self.suspended = False
        self.frozen: list[Element] = []
        self.delivered = 0
        self.shed = 0
        self.op_names: list[str] = []
        self.isolated_ops = 0

    @property
    def output(self) -> str:
        return f"q:{self.qid}"


class StandingQueryService:
    """A multi-tenant DSMS executing standing queries as one DAG."""

    def __init__(
        self, catalog: Catalog, config: ServiceConfig | None = None
    ) -> None:
        self.catalog = catalog
        self.config = config or ServiceConfig()
        self._queries: dict[int, _Query] = {}
        self._retired: dict[int, _Query] = {}
        self._next_qid = 1
        self._routes: dict[str, _Route] = {}
        self._indexes: dict[str, PredicateIndex] = {}
        self._private_by_source: dict[str, set[int]] = {}
        self._nodes: dict[str, Operator] = {}
        self._pane_widths_seen: dict[str, set[float]] = {}
        self._tenants: dict[str, TenantSpec] = {}
        self._shedder: TenantShedder | None = None
        if self.config.shed_high is not None:
            self._shedder = TenantShedder(
                self.config.shed_low, self.config.shed_high
            )
        self.shed_log: list[tuple[str, str, float]] = []
        self._engine: Engine | None = None
        self._started = False
        self._era = 0
        self._era_sealed = False
        self._since_poll = 0
        self._chunk = 1
        self._buffers: dict[str, list[Element]] = {}
        self._bcast: list[tuple[str, Element]] = []

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, spec: TenantSpec) -> TenantSpec:
        if spec.name in self._tenants:
            raise ServiceError(f"tenant {spec.name!r} already registered")
        self._tenants[spec.name] = spec
        return spec

    def tenant_loss(self, name: str) -> float:
        delivered = shed = 0
        for q in self._queries.values():
            if q.tenant == name:
                delivered += q.delivered
                shed += q.shed
        total = delivered + shed
        return shed / total if total else 0.0

    # -- registration ------------------------------------------------------

    def _next_gen(self) -> int:
        if self._era_sealed:
            self._era += 1
            self._era_sealed = False
        return self._era

    def register(
        self,
        query: str | SelectStmt,
        tenant: str = "default",
        tier: str = "silver",
    ) -> QueryHandle:
        """Register one standing query for ``tenant``.

        Admission control applies the configured caps; the query text is
        compiled, canonicalized, and merged into the shared DAG (private
        plans for shapes the shared builder cannot model, e.g. joins).
        Registering against a live stream migrates the running engine at
        the current element boundary.
        """
        cfg = self.config
        if cfg.max_queries is not None and len(self._queries) >= cfg.max_queries:
            raise AdmissionError(
                f"service is at its query cap ({cfg.max_queries})"
            )
        if tenant not in self._tenants:
            self.register_tenant(TenantSpec(tenant, tier=tier))
        if cfg.max_queries_per_tenant is not None:
            mine = sum(
                1 for q in self._queries.values() if q.tenant == tenant
            )
            if mine >= cfg.max_queries_per_tenant:
                raise AdmissionError(
                    f"tenant {tenant!r} is at its query cap "
                    f"({cfg.max_queries_per_tenant})"
                )
        stmt = parse(query) if isinstance(query, str) else query
        text = query if isinstance(query, str) else repr(stmt)
        resolved = resolve_stmt(stmt, self.catalog)
        qid = self._next_qid
        self._next_qid += 1
        q = _Query(qid, text, tenant, gen=self._next_gen())
        q.sources = [rel.name for rel in stmt.relations]

        chain = descs = None
        if not resolved.is_join:
            chain = shareable_chain(stmt, self.catalog)
            descs = suffix_descriptors(stmt)
        shared = (
            chain is not None
            and descs is not None
            and len(chain) == len(descs)
            and all(
                isinstance(op, _KIND_CLASSES[d.kind])
                for op, d in zip(chain, descs)
            )
        )
        if shared:
            q.chain = chain
            q.descs = descs
            q.isolated_ops = len(chain) + (1 if stmt.where is not None else 0)
            self._register_route(q, stmt, resolved)
            self._register_pane(q, stmt, resolved)
        else:
            q.private = True
            full = plan_stmt(stmt, self.catalog)
            for op in full.operators:
                op.name = f"q{qid}:{op.name}"
            q.plan = full
            q.isolated_ops = len(full.operators)
            for source in q.sources:
                self._private_by_source.setdefault(source, set()).add(qid)
        self._queries[qid] = q
        if self._started:
            self._migrate()
        return QueryHandle(qid, text, tenant, shared)

    def _register_route(self, q: _Query, stmt: SelectStmt, resolved) -> None:
        source = stmt.relations[0].name
        key = route_key(source, stmt)
        route = self._routes.get(key)
        if route is None:
            conjuncts = split_conjuncts(stmt.where)
            predicate = None
            if stmt.where is not None:
                predicate = compile_expr(
                    stmt.where, resolved.resolver, self.catalog
                )
            route = _Route(key, source, conjuncts, predicate)
            self._routes[key] = route
            index = self._indexes.setdefault(source, PredicateIndex())
            index.add(key, route.conjuncts, route.predicate)
        q.route_key = key
        route.queries.add(q.qid)

    def _register_pane(self, q: _Query, stmt: SelectStmt, resolved) -> None:
        assert q.chain is not None
        head = q.chain[0]
        if not (
            isinstance(head, WindowedAggregate)
            and isinstance(head.window, TumblingWindow)
            and pane_safe(head.aggregates)
        ):
            return
        plain_groups = tuple(
            (item.alias, repr(item.expr))
            for item in stmt.group_by
            if detect_tumbling_group(item, resolved.ordering_attrs) is None
        )
        q.pane_ck = digest(
            "panegrp",
            q.route_key or "",
            repr(plain_groups),
            repr(agg_signature(stmt)),
            head.ts_attr,
            repr(head.window.origin),
            str(q.gen),
        )
        q.width = head.window.width
        self._pane_widths_seen.setdefault(q.pane_ck, set()).add(q.width)

    def deregister(self, handle: QueryHandle | int) -> None:
        """Remove a standing query; other queries' outputs are unaffected.

        When the stream is live, the query's accumulated output is
        frozen first, so a later :meth:`finish` still reports it.
        """
        qid = handle.qid if isinstance(handle, QueryHandle) else handle
        q = self._queries.get(qid)
        if q is None:
            raise ServiceError(f"unknown query id {qid}")
        if self._started and not q.suspended:
            self._flush_all_buffers()
            assert self._engine is not None
            if q.output in self._engine.plan.outputs:
                q.frozen.extend(self._engine.peek_output(q.output))
        del self._queries[qid]
        self._retired[qid] = q
        if q.route_key is not None:
            route = self._routes[q.route_key]
            route.queries.discard(qid)
            if not route.queries:
                self._indexes[route.source].remove(route.key)
                del self._routes[route.key]
        if q.private:
            for source in q.sources:
                members = self._private_by_source.get(source)
                if members:
                    members.discard(qid)
                    if not members:
                        del self._private_by_source[source]
        if self._started:
            self._migrate()

    # -- plan construction -------------------------------------------------

    def _shared_name(self, kind: str, key: str) -> str:
        return f"s:{kind}:{key[:12]}"

    def _pane_width_for(self, ck: str) -> float | None:
        """Pane granularity for a compat group, or ``None`` for direct
        per-width aggregation.  Sticky: once a group has seen more than
        one width, it stays in pane mode (and the gcd over *all* widths
        ever seen is pinned) so deregistrations never restructure
        stateful sealed operators."""
        seen = self._pane_widths_seen.get(ck, set())
        if len(seen) < 2:
            return None
        return shared_pane_width(sorted(seen))

    def _build_plan(self) -> Plan:
        plan = Plan("service")
        active = [
            self._queries[qid]
            for qid in sorted(self._queries)
            if not self._queries[qid].suspended
        ]
        if not active:
            plan.add_input("_idle")
            drain = _Drain("svc:drain")
            plan.add(drain, upstream=["_idle"])
            plan.mark_output(drain, "_idle")
            return plan
        used: set[str] = set()
        added: dict[str, Operator] = {}
        declared_inputs: set[str] = set()

        def ensure_input(name: str) -> None:
            if name not in declared_inputs:
                plan.add_input(name)
                declared_inputs.add(name)

        def place(key: str, kind: str, make, parent) -> Operator:
            used.add(key)
            op = self._nodes.get(key)
            if op is None:
                op = make()
                self._nodes[key] = op
            if key not in added:
                op.name = self._shared_name(kind, key)
                plan.add(op, upstream=[parent])
                added[key] = op
            return added[key]

        for q in active:
            if q.private:
                self._graft_private(plan, q, ensure_input)
                continue
            assert q.chain is not None and q.descs is not None
            route = self._routes[q.route_key]
            ensure_input(route.input_name)
            parent: object = route.input_name
            parent_key = f"in:{route.key}"
            names: list[str] = []
            stages = list(zip(q.descs, q.chain))
            start = 0
            pane_g = (
                self._pane_width_for(q.pane_ck)
                if q.pane_ck is not None
                else None
            )
            if pane_g is not None:
                head = q.chain[0]
                assert isinstance(head, WindowedAggregate)
                pane_key = digest("panenode", q.pane_ck, repr(pane_g))
                pane_op = place(
                    pane_key,
                    "pane",
                    lambda: PaneAggregate(
                        TumblingWindow(pane_g, head.window.origin),
                        head.group_by,
                        head.aggregates,
                        ts_attr=head.ts_attr,
                    ),
                    parent,
                )
                merge_key = digest(
                    "mergenode", q.pane_ck, q.descs[0].canon
                )
                merge_op = place(
                    merge_key,
                    "merge",
                    lambda: PaneMerge(
                        head.window,
                        [name for name, _fn in head.group_by],
                        head.aggregates,
                        having=head.having,
                        bucket_attr=head.bucket_attr,
                        ts_attr=head.ts_attr,
                    ),
                    pane_op,
                )
                names.extend([pane_op.name, merge_op.name])
                parent, parent_key = merge_op, merge_key
                start = 1
            for desc, chain_op in stages[start:]:
                key = node_key(parent_key, desc, q.gen)
                op = place(key, desc.kind, lambda: chain_op, parent)
                names.append(op.name)
                parent, parent_key = op, key
            assert isinstance(parent, Operator)
            plan.mark_output(parent, q.output)
            q.op_names = names
        # Prune nodes no active query references; resumed/re-added
        # chains start fresh (shed data is lost by definition).
        self._nodes = {k: op for k, op in self._nodes.items() if k in used}
        plan.ensure_unique_names()
        return plan

    def _graft_private(self, plan: Plan, q: _Query, ensure_input) -> None:
        sub = q.plan
        assert sub is not None
        for source in q.sources:
            ensure_input(f"src:{source}")
        for op in sub.topological_order():
            plan.add(op)
        for iname, consumers in sub.inputs.items():
            for consumer, port in consumers:
                plan.connect(f"src:{iname}", consumer, port)
        for op in sub.operators:
            for consumer, port in sub.successors(op):
                plan.connect(op, consumer, port)
        out_op = next(iter(sub.outputs.values()))
        plan.mark_output(out_op, q.output)
        q.op_names = [op.name for op in sub.operators]

    def _migrate(self) -> None:
        self._flush_all_buffers()
        assert self._engine is not None
        self._engine.migrate_plan(self._build_plan(), allow_io_changes=True)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Build the merged plan and begin accepting :meth:`feed` calls."""
        if self._started:
            raise ServiceError("service already started")
        if not self._queries:
            raise ServiceError("no standing queries registered")
        plan = self._build_plan()
        self._engine = Engine(
            plan,
            batch_size=self.config.batch_size,
            guard=self.config.guard,
            observe=self.config.observe,
        )
        self._engine.start()
        self._chunk = self._engine.batch_size or 1
        self._started = True
        self._buffers = {}
        self._bcast = []
        self._since_poll = 0

    def feed(self, source: str, element: Element) -> None:
        """Push one element of ``source`` into every matching query."""
        if not self._started:
            raise ServiceError("StandingQueryService.feed() before start()")
        self._era_sealed = True
        if isinstance(element, Punctuation):
            self._flush_all_buffers()
            self._feed_punct(source, element)
        else:
            self._route_record(source, element)

    def feed_batch(self, source: str, elements: Sequence[Element]) -> None:
        for el in elements:
            self.feed(source, el)

    def _route_record(self, source: str, record: Record) -> None:
        engine = self._engine
        assert engine is not None
        index = self._indexes.get(source)
        if index is not None:
            for rid in index.probe(record):
                route = self._routes[rid]
                live = False
                for qid in route.queries:
                    q = self._queries[qid]
                    if q.suspended:
                        q.shed += 1
                    else:
                        q.delivered += 1
                        live = True
                if live:
                    buf = self._buffers.setdefault(route.input_name, [])
                    buf.append(record)
                    if len(buf) >= self._chunk:
                        engine.feed_batch(route.input_name, buf)
                        buf.clear()
        privates = self._private_by_source.get(source)
        if privates:
            live = False
            for qid in privates:
                q = self._queries[qid]
                if q.suspended:
                    q.shed += 1
                else:
                    q.delivered += 1
                    live = True
            if live:
                self._bcast.append((f"src:{source}", record))
                if len(self._bcast) >= self._chunk:
                    self._flush_broadcast()
        if self._shedder is not None:
            self._since_poll += 1
            if self._since_poll >= self.config.shed_poll:
                self._since_poll = 0
                self._poll_shedding()

    def _feed_punct(self, source: str, punct: Punctuation) -> None:
        engine = self._engine
        assert engine is not None
        inputs = engine.plan.inputs
        for key in sorted(self._routes):
            route = self._routes[key]
            if route.source == source and route.input_name in inputs:
                engine.feed(route.input_name, punct)
        bname = f"src:{source}"
        if bname in inputs:
            engine.feed(bname, punct)

    def _flush_broadcast(self) -> None:
        engine = self._engine
        assert engine is not None
        run_input: str | None = None
        run: list[Element] = []
        for name, el in self._bcast:
            if run and name != run_input:
                engine.feed_batch(run_input, run)
                run = []
            run_input = name
            run.append(el)
        if run:
            assert run_input is not None
            engine.feed_batch(run_input, run)
        self._bcast.clear()

    def _flush_all_buffers(self) -> None:
        engine = self._engine
        if engine is None:
            return
        for name in sorted(self._buffers):
            buf = self._buffers[name]
            if buf and name in engine.plan.inputs:
                engine.feed_batch(name, buf)
            buf.clear()
        self._flush_broadcast()

    # -- shedding ----------------------------------------------------------

    def _default_pressure(self) -> float:
        guard = self._engine.guard if self._engine is not None else None
        if guard is None:
            return 0.0
        queues = getattr(guard, "ingress_queues", None)
        if queues is None:
            return 0.0
        return float(sum(q.size for q in queues()))

    def _poll_shedding(self) -> None:
        assert self._shedder is not None
        if self.config.pressure is not None:
            pressure = float(self.config.pressure(self))
        else:
            pressure = self._default_pressure()
        populated = {
            name: spec
            for name, spec in self._tenants.items()
            if any(q.tenant == name for q in self._queries.values())
        }
        losses = {name: self.tenant_loss(name) for name in populated}
        action = self._shedder.decide(pressure, populated, losses)
        if action is None:
            return
        kind, tenant = action
        self.shed_log.append((kind, tenant, pressure))
        self._set_tenant_suspended(tenant, kind == "shed")

    def _set_tenant_suspended(self, tenant: str, flag: bool) -> None:
        changed = False
        self._flush_all_buffers()
        for q in self._queries.values():
            if q.tenant != tenant or q.suspended == flag:
                continue
            if flag and self._started:
                assert self._engine is not None
                if q.output in self._engine.plan.outputs:
                    q.frozen.extend(self._engine.peek_output(q.output))
            q.suspended = flag
            changed = True
        if changed and self._started:
            self._migrate()

    @property
    def shed_tenants(self) -> list[str]:
        """Tenants currently shed, in shed order."""
        return list(self._shedder.shed) if self._shedder else []

    # -- results -----------------------------------------------------------

    def finish(self) -> ServiceResult:
        """Flush everything and return per-query results and metrics."""
        if not self._started:
            raise ServiceError("StandingQueryService.finish() before start()")
        self._flush_all_buffers()
        assert self._engine is not None
        run: RunResult = self._engine.finish()
        self._started = False
        queries: dict[int, QueryResult] = {}
        reportable = dict(self._retired)
        reportable.update(self._queries)
        for qid in sorted(reportable):
            q = reportable[qid]
            live = run.outputs.get(q.output, [])
            queries[qid] = QueryResult(
                qid=qid,
                query=q.text,
                tenant=q.tenant,
                outputs=list(q.frozen) + list(live),
                delivered=q.delivered,
                shed=q.shed,
                operator_names=list(q.op_names),
                metrics=run.metrics,
            )
        return ServiceResult(
            queries=queries,
            metrics=run.metrics,
            dropped=run.dropped,
            shed_log=list(self.shed_log),
            stats=self.stats(),
        )

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> ServiceResult:
        """One-shot convenience: start, stream every source, finish.

        Sources are named by *stream* (catalog) name and interleaved in
        global ``(ts, seq)`` order, exactly as :meth:`Engine.run` does.
        """
        if isinstance(sources, Mapping):
            by_name = dict(sources)
        else:
            by_name = {src.name: src for src in sources}
        self.start()
        if len(by_name) == 1:
            only = next(iter(by_name.values()))
            merged: Iterable = ((only.name, el) for el in only.events())
        else:
            merged = merge_sources(*by_name.values())
        for name, element in merged:
            self.feed(name, element)
        return self.finish()

    def stats(self) -> dict:
        """Sharing effectiveness of the current merged DAG."""
        plan_ops = (
            len(self._engine.plan.operators)
            if self._engine is not None
            else 0
        )
        return {
            "queries": len(self._queries),
            "routes": len(self._routes),
            "plan_operators": plan_ops,
            "isolated_operators": sum(
                q.isolated_ops for q in self._queries.values()
            ),
            "index": {
                source: index.stats()
                for source, index in sorted(self._indexes.items())
            },
        }
