"""Attribute index over thousands of registered selection predicates.

A DSMS with N standing queries cannot afford N predicate evaluations
per arriving tuple.  The classical answer (VLDB tutorial slide 45:
"indexing the queries, not the data") is to index the *predicates*: for
each route (a distinct WHERE-conjunct set over one source) pick one
indexable conjunct as its **anchor** — an equality or one-sided
comparison against a literal — and bucket routes by anchor attribute.
A probe then touches only the routes whose anchor accepts the tuple:

* equality anchors: one hash lookup per (attribute, value);
* comparison anchors: a binary search over the sorted thresholds per
  (attribute, direction) — all lower bounds below the value (resp.
  upper bounds above it) match at once;
* routes with no indexable conjunct fall into a small scan bucket, and
  unfiltered routes into an always-match list.

The anchor is a *necessary* condition only; every candidate's full
compiled predicate is verified before the route is reported, so probe
results are exactly the brute-force scan's (a property the test suite
checks with hypothesis).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Callable, Iterable

from repro.core.tuples import Record
from repro.cql.ast import BinOp, Column, Expr, Literal
from repro.errors import ServiceError

__all__ = ["PredicateIndex", "anchor_of"]

#: comparison flips when the literal is on the left: ``5 < x`` ≡ ``x > 5``.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def anchor_of(conjuncts: Iterable[Expr]) -> tuple[str, str, object] | None:
    """Pick an indexable ``(attr, op, literal)`` anchor, or ``None``.

    Prefers equality anchors (most selective bucket shape); otherwise
    the first one-sided numeric comparison.  Only unqualified plain
    columns against numeric/string literals qualify — anything fancier
    stays un-anchored and lands in the scan bucket.
    """
    comparison: tuple[str, str, object] | None = None
    for conj in conjuncts:
        if not isinstance(conj, BinOp):
            continue
        op = conj.op
        left, right = conj.left, conj.right
        if isinstance(left, Literal) and isinstance(right, Column):
            left, right = right, left
            op = _FLIP.get(op, op)
        if not (isinstance(left, Column) and isinstance(right, Literal)):
            continue
        if left.qualifier is not None:
            continue
        value = right.value
        if op == "=" and not isinstance(value, bool):
            return (left.name, "=", value)
        if op in ("<", "<=", ">", ">=") and isinstance(
            value, (int, float)
        ) and not isinstance(value, bool):
            if comparison is None:
                comparison = (left.name, op, value)
    return comparison


class PredicateIndex:
    """Route lookup structure: record -> matching route ids."""

    def __init__(self) -> None:
        # attr -> value -> [route ids]
        self._eq: dict[str, dict[object, list[str]]] = {}
        # attr -> sorted [( (threshold, strictness), route id )] for
        # lower bounds (> / >=) and upper bounds (< / <=) respectively.
        self._lower: dict[str, list[tuple[tuple[float, int], str]]] = {}
        self._upper: dict[str, list[tuple[tuple[float, int], str]]] = {}
        self._scan: list[str] = []
        self._always: list[str] = []
        # route id -> full verification predicate
        self._verify: dict[str, Callable[[Record], bool] | None] = {}
        self._anchors: dict[str, tuple[str, str, object] | None] = {}

    def __len__(self) -> int:
        return len(self._verify)

    def add(
        self,
        route_id: str,
        conjuncts: list[Expr],
        predicate: Callable[[Record], bool] | None,
    ) -> None:
        """Register ``route_id`` with its conjuncts and compiled WHERE."""
        if route_id in self._verify:
            raise ServiceError(f"route {route_id!r} already indexed")
        self._verify[route_id] = predicate
        if predicate is None or not conjuncts:
            self._anchors[route_id] = None
            self._always.append(route_id)
            return
        anchor = anchor_of(conjuncts)
        self._anchors[route_id] = anchor
        if anchor is None:
            self._scan.append(route_id)
            return
        attr, op, value = anchor
        if op == "=":
            self._eq.setdefault(attr, {}).setdefault(value, []).append(
                route_id
            )
        elif op in (">", ">="):
            # matches x iff value < x (strict=1) or value <= x (strict=0)
            strict = 1 if op == ">" else 0
            insort(
                self._lower.setdefault(attr, []),
                ((float(value), strict), route_id),
            )
        else:
            # < / <=: matches x iff value > x, or value >= x for <=
            strict = 1 if op == "<=" else 0
            insort(
                self._upper.setdefault(attr, []),
                ((float(value), strict), route_id),
            )

    def remove(self, route_id: str) -> None:
        if route_id not in self._verify:
            raise ServiceError(f"route {route_id!r} not indexed")
        anchor = self._anchors.pop(route_id)
        self._verify.pop(route_id)
        if route_id in self._always:
            self._always.remove(route_id)
            return
        if anchor is None:
            self._scan.remove(route_id)
            return
        attr, op, value = anchor
        if op == "=":
            bucket = self._eq[attr][value]
            bucket.remove(route_id)
            if not bucket:
                del self._eq[attr][value]
        elif op in (">", ">="):
            entries = self._lower[attr]
            strict = 1 if op == ">" else 0
            entries.remove(((float(value), strict), route_id))
        else:
            entries = self._upper[attr]
            strict = 1 if op == "<=" else 0
            entries.remove(((float(value), strict), route_id))

    # -- probing -----------------------------------------------------------

    def _candidates(self, record: Record) -> list[str]:
        out = list(self._always)
        values = record.values
        for attr, by_value in self._eq.items():
            if attr in values:
                out.extend(by_value.get(values[attr], ()))
        for attr, entries in self._lower.items():
            x = values.get(attr)
            if not isinstance(x, (int, float)) or isinstance(x, bool):
                continue
            # thresholds strictly below x, plus (x, non-strict)
            idx = bisect_left(entries, ((float(x), 1), ""))
            out.extend(rid for _key, rid in entries[:idx])
        for attr, entries in self._upper.items():
            x = values.get(attr)
            if not isinstance(x, (int, float)) or isinstance(x, bool):
                continue
            # thresholds strictly above x, plus (x, inclusive)
            idx = bisect_right(entries, ((float(x), 0), "￿"))
            out.extend(rid for _key, rid in entries[idx:])
        out.extend(self._scan)
        return out

    def probe(self, record: Record) -> list[str]:
        """Route ids whose full predicate accepts ``record``."""
        matched: list[str] = []
        for rid in self._candidates(record):
            pred = self._verify[rid]
            if pred is None or pred(record):
                matched.append(rid)
        return matched

    def brute_force(self, record: Record) -> list[str]:
        """Reference implementation: evaluate every route's predicate."""
        matched: list[str] = []
        for rid, pred in self._verify.items():
            if pred is None or pred(record):
                matched.append(rid)
        return matched

    def stats(self) -> dict[str, int]:
        return {
            "routes": len(self._verify),
            "eq_buckets": sum(len(v) for v in self._eq.values()),
            "lower_entries": sum(len(v) for v in self._lower.values()),
            "upper_entries": sum(len(v) for v in self._upper.values()),
            "scan": len(self._scan),
            "always": len(self._always),
        }
