"""Canonical fingerprints for shared-subplan detection.

Two standing queries can share an operator chain exactly when the
chains are *provably identical*: same source, same selection (as a set
of WHERE conjuncts — the compiled AND is eager, so conjunct order
cannot change results), and the same post-selection suffix stage by
stage.  The planner (:func:`repro.cql.planner.plan_stmt`) is a pure,
deterministic function of the resolved statement, and every AST node is
a frozen dataclass with a deterministic ``repr``, so the repr of the
relevant statement fragments is a sound canonical form: equal canon
implies equal compiled behavior.

Three layers of keys:

* :func:`route_key` — (source, sorted WHERE-conjunct set).  Queries on
  the same route see the same post-selection record stream, which is
  the precondition for sharing *anything* stateful.
* :func:`suffix_descriptors` — one ``(kind, canon, stateful)``
  descriptor per operator of the WHERE-stripped compiled chain,
  mirroring the planner's deterministic shapes.  A prefix of equal
  descriptors under the same route is a shareable prefix.
* :func:`node_key` — hash-chained over (parent key, descriptor,
  generation), so a node's key commits to its entire upstream lineage
  and nodes are only ever shared under identical ancestry.
"""

from __future__ import annotations

import hashlib

from repro.cql.ast import Column, FuncCall, SelectStmt, Star, split_conjuncts
from repro.cql.semantic import contains_aggregate, extract_aggregates

__all__ = [
    "StageDescriptor",
    "agg_signature",
    "digest",
    "node_key",
    "route_key",
    "suffix_descriptors",
]


def digest(*parts: str) -> str:
    """Short stable hash over canonical strings."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


def route_key(source: str, stmt: SelectStmt) -> str:
    """Fingerprint of (source stream, WHERE-conjunct set).

    Conjuncts are sorted by repr: compiled AND evaluates both operands
    eagerly (no short-circuit), so permuted conjunct orders are
    result-identical and must land on the same route.
    """
    conjuncts = sorted(repr(c) for c in split_conjuncts(stmt.where))
    return digest("route", source, *conjuncts)


class StageDescriptor:
    """Canonical identity of one suffix-chain stage.

    ``kind`` names the planner shape (``aggregate``, ``project``, ...),
    ``canon`` is the repr-based canonical string of everything that
    parameterizes the stage, and ``stateful`` records whether the
    operator accumulates state (stateful stages are only shareable by
    queries registered in the same generation — a query joining
    mid-stream must not inherit state built from records it never saw).
    """

    __slots__ = ("kind", "canon", "stateful")

    def __init__(self, kind: str, canon: str, stateful: bool) -> None:
        self.kind = kind
        self.canon = canon
        self.stateful = stateful

    def __repr__(self) -> str:
        return f"StageDescriptor({self.kind}, stateful={self.stateful})"


def _default_agg_name(call: FuncCall) -> str:
    # Mirror _PlanBuilder._agg_default_name exactly.
    if not call.args or isinstance(call.args[0], Star):
        return call.name
    arg = call.args[0]
    if isinstance(arg, Column):
        return f"{call.name}_{arg.name}"
    return call.name


def agg_signature(stmt: SelectStmt) -> tuple[tuple[str, str], ...]:
    """Ordered (aggregate-call repr, output name) pairs for ``stmt``.

    Reproduces the planner's naming walk over SELECT then HAVING —
    including hidden ``_having_N`` aggregates — so the signature pins
    both which aggregate states exist and what the output row calls
    them.
    """
    pairs: list[tuple[str, str]] = []
    seen: set[FuncCall] = set()
    for proj in stmt.projections:
        for call in extract_aggregates(proj.expr):
            if call in seen:
                continue
            seen.add(call)
            name = (
                proj.alias
                if proj.alias and proj.expr == call
                else _default_agg_name(call)
            )
            pairs.append((repr(call), name))
    hidden = 0
    for call in extract_aggregates(stmt.having):
        if call in seen:
            continue
        seen.add(call)
        hidden += 1
        pairs.append((repr(call), f"_having_{hidden}"))
    return tuple(pairs)


def suffix_descriptors(stmt: SelectStmt) -> list[StageDescriptor] | None:
    """Descriptors for the WHERE-stripped chain the planner would build.

    Mirrors ``_PlanBuilder.build_single`` + ``_finish`` shape by shape.
    Returns ``None`` for statements the shared builder does not model
    (joins); callers must cross-check the descriptor count against the
    actually compiled chain and fall back to a private plan on any
    mismatch.
    """
    if len(stmt.relations) != 1:
        return None
    rel = stmt.relations[0]
    descs: list[StageDescriptor] = []
    proj_canon = repr(
        tuple((p.alias, repr(p.expr)) for p in stmt.projections)
    )
    group_canon = repr(
        tuple((g.alias, repr(g.expr)) for g in stmt.group_by)
    )
    window_canon = repr(rel.window)
    has_aggs = any(
        contains_aggregate(p.expr) for p in stmt.projections
    ) or contains_aggregate(stmt.having)
    if stmt.group_by or has_aggs:
        descs.append(
            StageDescriptor(
                "aggregate",
                "|".join(
                    (
                        group_canon,
                        repr(agg_signature(stmt)),
                        window_canon,
                        repr(stmt.having),
                    )
                ),
                stateful=True,
            )
        )
        descs.append(
            StageDescriptor(
                "project",
                "|".join((proj_canon, group_canon, repr(agg_signature(stmt)))),
                stateful=False,
            )
        )
    elif stmt.distinct:
        descs.append(
            StageDescriptor(
                "distinct",
                "|".join((proj_canon, window_canon)),
                stateful=True,
            )
        )
    elif stmt.select_star:
        descs.append(StageDescriptor("scan", "*", stateful=False))
    else:
        descs.append(StageDescriptor("project", proj_canon, stateful=False))
    if stmt.order_by:
        order_canon = repr(
            tuple((repr(o.expr), o.descending) for o in stmt.order_by)
        )
        descs.append(
            StageDescriptor(
                "sort", f"{order_canon}|{stmt.limit}", stateful=True
            )
        )
    elif stmt.limit is not None:
        descs.append(
            StageDescriptor("limit", repr(stmt.limit), stateful=True)
        )
    if stmt.streamify:
        descs.append(
            StageDescriptor(stmt.streamify, stmt.streamify, stateful=True)
        )
    return descs


def node_key(parent_key: str, desc: StageDescriptor, gen: int) -> str:
    """Hash-chained identity of one shared-DAG node.

    Stateless stages ignore ``gen``: an operator with no state is safe
    to share across registration generations (a late registrant's
    output starts empty at migration, and the operator's behavior does
    not depend on records it processed before).
    """
    effective_gen = gen if desc.stateful else 0
    return digest("node", parent_key, desc.kind, desc.canon, str(effective_gen))
