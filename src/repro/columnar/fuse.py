"""Operator fusion: compile stateless runs into one batch sweep.

Adjacent stateless, columnar-capable operators (``Select`` /
``Project`` / ``MapOp`` / ``Rename`` / ``Extend``) in a linear chain
are replaced by a single :class:`FusedOperator`.  On the columnar path
it executes the whole run as **one mask + transform sweep**: selection
masks from consecutive ``Select`` stages are AND-combined and applied
lazily, so a ``select → select → project`` run touches the batch once
instead of three times.  On the tuple/row path it degrades to
stage-at-a-time execution with identical semantics, so fused plans stay
bit-identical to unfused ones on every execution tier.

Metrics attribution
-------------------

The engine sees the fused node, but observability (``repro.observe``
exporters, the VN02 ``rate_operator_from_metrics`` model, and the
``AdaptiveController`` selectivity windows) must keep seeing the
*constituents*.  The fused operator therefore tallies per-stage
``records_in``/``records_out``/``punctuations``/``invocations``/
``batches_in`` as it executes, and the engine settles those tallies
into each constituent's ``OperatorMetrics`` after every dispatch via
:meth:`FusedOperator.drain_attribution` — including a pro-rata share of
the sampled ``wall_time``.

Vectorized-predicate totality
-----------------------------

AND-combining masks means a later ``Select``'s vectorized predicate is
evaluated over rows an earlier one already rejected.  Expressions built
from :class:`~repro.columnar.expr.Col` must therefore be *total* over
the batch (any missing-field access raises
:class:`~repro.errors.ColumnUnavailable`, which safely reroutes the
whole batch down the row path, where strict stage-at-a-time order is
restored).
"""

from __future__ import annotations

from repro.columnar.batch import ColumnBatch
from repro.columnar.expr import mask_and, mask_count
from repro.core.tuples import Record
from repro.errors import ColumnUnavailable, PlanError
from repro.operators.base import Operator, UnaryOperator
from repro.operators.map import Extend, MapOp, Rename
from repro.operators.project import Project
from repro.operators.select import Select

__all__ = ["FusedOperator", "fuse_chain", "unfuse_chain", "fusable"]

#: Stateless operator types eligible for fusion.  ``DistinctProject``
#: (stateful) is excluded by the exact-type check.
_FUSABLE_TYPES = (Select, Project, MapOp, Rename, Extend)


def fusable(op: Operator) -> bool:
    """True when ``op`` may join a fused run (stateless + columnar)."""
    return type(op) in _FUSABLE_TYPES and op.supports_columns()


class FusedOperator(UnaryOperator):
    """A compiled run of stateless operators executed as one sweep.

    ``constituents`` (never ``operators`` — that attribute belongs to
    :class:`~repro.operators.base.CompiledChain`) holds the original
    operators in order; they remain the unit of metrics attribution
    and of un-fusion.
    """

    def __init__(self, constituents: list[Operator]) -> None:
        if len(constituents) < 2:
            raise PlanError("a fused operator needs at least 2 constituents")
        for op in constituents:
            if not fusable(op):
                raise PlanError(
                    f"operator {op.name!r} ({type(op).__name__}) "
                    "is not fusable"
                )
        name = "fused[" + "+".join(op.name for op in constituents) + "]"
        super().__init__(
            name,
            cost_per_tuple=sum(op.cost_per_tuple for op in constituents),
        )
        self.constituents = list(constituents)
        # {name: [records_in, records_out, puncts_in, puncts_out,
        #         invocations, batches_in]}
        self._tallies: dict[str, list[int]] = {}

    @property
    def kind(self) -> str:
        return "fused"

    def supports_columns(self) -> bool:
        return True

    # -- attribution -----------------------------------------------------

    def _tally(self, name, rin, rout, pin, pout, inv, batches) -> None:
        t = self._tallies.get(name)
        if t is None:
            self._tallies[name] = [rin, rout, pin, pout, inv, batches]
        else:
            t[0] += rin
            t[1] += rout
            t[2] += pin
            t[3] += pout
            t[4] += inv
            t[5] += batches

    def drain_attribution(self) -> dict[str, list[int]]:
        """Per-constituent tallies since the last drain (then reset).

        The engine calls this after each dispatch and folds the counts
        into the constituents' :class:`OperatorMetrics`.
        """
        out = self._tallies
        self._tallies = {}
        return out

    # -- columnar path ---------------------------------------------------

    def process_columns(self, batch: ColumnBatch, port: int = 0):
        cur = batch
        mask = None
        alive = batch.length
        stages: list[tuple[Operator, int, int]] = []
        try:
            for op in self.constituents:
                rin = alive
                if type(op) is Select:
                    m = op.predicate.mask(cur)
                    mask = m if mask is None else mask_and(mask, m, cur)
                    alive = mask_count(mask)
                else:
                    if mask is not None:
                        cur = cur.compress(mask)
                        mask = None
                    cur = op._transform_columns(cur)
                    alive = cur.length
                stages.append((op, rin, alive))
            if mask is not None:
                cur = cur.compress(mask)
        except ColumnUnavailable:
            # Whole-batch fallback: strict stage-at-a-time row semantics
            # (which also re-raises any schema error the tuple path would).
            return self.process_batch(batch.to_rows(), port)
        for op, rin, rout in stages:
            self._tally(op.name, rin, rout, 0, 0, 1, 1)
        return cur

    # -- row path --------------------------------------------------------

    def process_batch(self, elements, port: int = 0):
        cur = list(elements)
        for op in self.constituents:
            pin = sum(1 for el in cur if not isinstance(el, Record))
            rin = len(cur) - pin
            cur = op.process_batch(cur, 0)
            pout = sum(1 for el in cur if not isinstance(el, Record))
            self._tally(op.name, rin, len(cur) - pout, pin, pout, 1, 1)
            if not cur:
                break
        return cur

    def process(self, element, port: int = 0):
        return self.process_batch([element], port)

    # -- lifecycle (constituents are stateless, but stay faithful) -------

    def flush(self):
        batch = []
        for i, op in enumerate(self.constituents):
            produced = op.flush()
            for later in self.constituents[i + 1:]:
                if not produced:
                    break
                produced = later.process_batch(produced, 0)
            batch.extend(produced)
        return batch

    def reset(self) -> None:
        self._tallies = {}
        for op in self.constituents:
            op.reset()

    def snapshot(self):
        return [op.snapshot() for op in self.constituents]

    def restore(self, state) -> None:
        states = list(state) if state is not None else [
            None for _ in self.constituents
        ]
        if len(states) != len(self.constituents):
            raise PlanError(
                f"fused operator {self.name!r} has "
                f"{len(self.constituents)} constituents but the snapshot "
                f"has {len(states)} entries"
            )
        for op, st in zip(self.constituents, states):
            op.restore(st)

    def __repr__(self) -> str:
        return f"FusedOperator({[op.name for op in self.constituents]})"


def fuse_chain(ops, min_run: int = 2) -> list[Operator]:
    """Replace maximal fusable runs in a linear chain with fused nodes.

    Runs shorter than ``min_run`` are left untouched.  Already-fused
    operators pass through unchanged (fusion is idempotent).
    """
    out: list[Operator] = []
    run: list[Operator] = []

    def close_run() -> None:
        if len(run) >= min_run:
            out.append(FusedOperator(list(run)))
        else:
            out.extend(run)
        run.clear()

    for op in ops:
        if fusable(op):
            run.append(op)
        else:
            close_run()
            out.append(op)
    close_run()
    return out


def unfuse_chain(ops) -> list[Operator]:
    """Expand fused nodes back into their constituent operators."""
    out: list[Operator] = []
    for op in ops:
        if isinstance(op, FusedOperator):
            out.extend(op.constituents)
        else:
            out.append(op)
    return out
