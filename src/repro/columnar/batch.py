"""Struct-of-arrays micro-batches (the columnar execution tier).

A :class:`ColumnBatch` is the unit the vectorized ``process_columns``
kernels exchange.  Its design is *lazy*: a batch built from records
(:meth:`ColumnBatch.from_rows`) keeps the row list and extracts a
per-field column only when a kernel first asks for it — a selection
that touches two of seven CDR fields never pays for the other five.
Batches produced by transforms (:meth:`ColumnBatch.with_columns`) hold
materialized columns but always retain a *stamp row* per element, so
``ts``/``seq``/``size`` survive any number of columnar hops and
:meth:`to_rows` rebuilds records bit-identical to the tuple path.

Backends
--------

``"python"``
    Columns are plain lists.  This is the fallback that must always
    work — and the backend the M8 speedup gate is measured against.
``"array"``
    Homogeneous ``int``/``float`` columns are packed into
    ``array.array('q'/'d')``; anything else stays a list.
``"numpy"``
    Homogeneous numeric/bool columns become ``numpy.ndarray``; masks
    select with boolean indexing.  Optional: guarded by
    :data:`HAVE_NUMPY` (install with ``repro[numpy]``).

Packing is type-strict: a column is only packed when every value has
the exact same native type (``bool`` is never packed as an integer).
Mixed ``int``/``float`` columns stay lists, because ``array``/NumPy
would silently coerce ``2`` to ``2.0`` and the differential oracle —
and the ``repr``-sorted group emission order of the aggregates — would
observe the difference.

Null masks
----------

Rows are heterogeneous dicts; a field missing from *some* rows extracts
into a column with ``None`` holes plus a validity mask.  The strict
kernel accessor :meth:`ColumnBatch.column` refuses such columns
(raising :class:`~repro.errors.ColumnUnavailable`, which sends the
kernel down its row-path fallback so schema errors surface exactly as
in tuple mode), while :meth:`to_rows`/:meth:`compress` preserve the
mask so round trips keep missing fields missing.
"""

from __future__ import annotations

from array import array
from itertools import compress as _itcompress
from typing import Iterable, Sequence

from repro.core.tuples import Record
from repro.errors import ColumnError, ColumnUnavailable

try:  # pragma: no cover - import guard exercised via both CI legs
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

__all__ = ["ColumnBatch", "HAVE_NUMPY", "BACKENDS", "as_pylist"]

#: Recognized column storage backends.
BACKENDS = ("python", "array", "numpy")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ColumnError(
            f"unknown column backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "numpy" and not HAVE_NUMPY:
        raise ColumnError(
            "column backend 'numpy' requires numpy (pip install repro[numpy])"
        )
    return backend


def as_pylist(column) -> list:
    """``column`` as a list of *native* Python values.

    ``ndarray``/``array.array`` convert via ``tolist()`` (exact for
    int64/float64); lists pass through unchanged.  Kernels feeding
    values into group keys or ``repr``-sorted emission must use this —
    a ``numpy.float64`` reprs differently from the ``float`` the tuple
    path would have carried.
    """
    if type(column) is list:
        return column
    return column.tolist()


def _all_of_type(values: list, t: type) -> bool:
    for v in values:
        if type(v) is not t:
            return False
    return True


def _pack(values: list, backend: str):
    """Pack a hole-free extracted column per the backend (or keep list)."""
    if backend == "python" or not values:
        return values
    t = type(values[0])
    if backend == "numpy":
        if t in (int, float, bool) and _all_of_type(values, t):
            return _np.asarray(values)
        return values
    # backend == "array"
    if t is int and _all_of_type(values, t):
        try:
            return array("q", values)
        except OverflowError:
            return values
    if t is float and _all_of_type(values, t):
        return array("d", values)
    return values


class ColumnBatch:
    """A micro-batch of records in struct-of-arrays form.

    Two internal modes share one interface:

    * **row-backed** — ``_rows`` holds the original records; columns are
      extracted (and cached) on demand; :meth:`to_rows` is free.
    * **columnar** — ``_rows`` is ``None``; ``_columns`` holds the
      transformed values and ``_stamp_rows`` still references one
      record per element for the ``ts``/``seq``/``size`` stamps.

    Batches are *logically* immutable: kernels derive new batches via
    :meth:`compress`/:meth:`with_columns` and must treat the lists
    returned by accessors (and by :meth:`to_rows` in row-backed mode)
    as read-only.
    """

    __slots__ = ("_rows", "_stamp_rows", "_columns", "_masks", "_ts",
                 "length", "backend")

    def __init__(self) -> None:  # use the named constructors
        raise ColumnError(
            "construct via ColumnBatch.from_rows / with_columns"
        )

    @classmethod
    def _new(cls, rows, stamp_rows, columns, masks, backend) -> "ColumnBatch":
        self = object.__new__(cls)
        self._rows = rows
        self._stamp_rows = stamp_rows
        self._columns = columns
        self._masks = masks
        self._ts = None
        self.length = len(stamp_rows)
        self.backend = backend
        return self

    @classmethod
    def from_rows(
        cls, rows: Sequence[Record], backend: str = "python"
    ) -> "ColumnBatch":
        """Wrap ``rows`` (records only, no punctuations) lazily."""
        rows = rows if type(rows) is list else list(rows)
        return cls._new(rows, rows, {}, {}, _check_backend(backend))

    @property
    def row_backed(self) -> bool:
        """True while the original records are still attached."""
        return self._rows is not None

    def fields(self) -> list[str]:
        """Known field names (extraction-cached for row-backed batches;
        use :meth:`materialize` first for the full union)."""
        return list(self._columns)

    # -- column access ---------------------------------------------------

    def _extract(self, name: str) -> None:
        rows = self._rows
        if rows is None:
            raise ColumnUnavailable(
                f"column {name!r} is not in this batch "
                f"(it has {list(self._columns)})"
            )
        try:
            values = [r.values[name] for r in rows]
            mask = None
        except KeyError:
            values = [r.values.get(name) for r in rows]
            mask = [name in r.values for r in rows]
        self._columns[name] = values if mask is not None else _pack(
            values, self.backend
        )
        self._masks[name] = mask

    def column(self, name: str):
        """The full column ``name`` — strict kernel accessor.

        Raises :class:`~repro.errors.ColumnUnavailable` when the field
        is missing from any row (kernels must then fall back to the row
        path, which reproduces tuple-mode error behaviour exactly).
        """
        if name not in self._columns:
            self._extract(name)
        if self._masks.get(name) is not None:
            raise ColumnUnavailable(
                f"column {name!r} has missing values (null mask)"
            )
        return self._columns[name]

    def pylist(self, name: str) -> list:
        """:meth:`column` as native Python values (see :func:`as_pylist`)."""
        return as_pylist(self.column(name))

    def raw_column(self, name: str) -> tuple[list, list | None]:
        """``(values, validity_mask)`` — tolerates null masks.

        ``values`` carries ``None`` holes where the mask is ``False``;
        ``mask`` is ``None`` for a hole-free column.
        """
        if name not in self._columns:
            self._extract(name)
        return self._columns[name], self._masks.get(name)

    def mask_for(self, name: str) -> list | None:
        """The validity mask of ``name`` (``None`` when hole-free)."""
        if name not in self._columns:
            self._extract(name)
        return self._masks.get(name)

    def ts_list(self) -> list[float]:
        """Per-element ordering-attribute values (cached)."""
        if self._ts is None:
            self._ts = [r.ts for r in self._stamp_rows]
        return self._ts

    # -- derivation ------------------------------------------------------

    def with_columns(
        self, columns: dict, masks: dict | None = None
    ) -> "ColumnBatch":
        """A columnar batch with ``columns``, sharing this batch's stamps.

        Used by transforms (project/map/rename/extend): the element
        count, order, and ``ts``/``seq``/``size`` stamps are unchanged;
        only the value columns are replaced.
        """
        for name, col in columns.items():
            if len(col) != self.length:
                raise ColumnError(
                    f"column {name!r} has {len(col)} values for a batch "
                    f"of {self.length}"
                )
        return ColumnBatch._new(
            None, self._stamp_rows, dict(columns),
            dict(masks) if masks else {}, self.backend,
        )

    def compress(self, mask) -> "ColumnBatch":
        """Keep exactly the elements whose ``mask`` entry is truthy.

        ``mask`` may be any per-element sequence — a list of bools, raw
        predicate results (truthiness decides, as in the tuple path), or
        a NumPy boolean array.
        """
        if _np is not None and isinstance(mask, _np.ndarray):
            np_mask = mask if mask.dtype == bool else mask.astype(bool)
        else:
            np_mask = None
        it_mask = np_mask if np_mask is not None else mask
        if self._rows is not None:
            rows = list(_itcompress(self._rows, it_mask))
            return ColumnBatch._new(rows, rows, {}, {}, self.backend)
        stamp = list(_itcompress(self._stamp_rows, it_mask))
        columns: dict = {}
        masks: dict = {}
        for name, col in self._columns.items():
            if _np is not None and isinstance(col, _np.ndarray):
                if np_mask is None:
                    np_mask = _np.fromiter(
                        (bool(v) for v in mask), dtype=bool, count=self.length
                    )
                columns[name] = col[np_mask]
            else:
                columns[name] = list(_itcompress(col, it_mask))
            valid = self._masks.get(name)
            if valid is not None:
                valid = list(_itcompress(valid, it_mask))
                if all(valid):
                    valid = None
            masks[name] = valid
        return ColumnBatch._new(None, stamp, columns, masks, self.backend)

    def materialize(self) -> "ColumnBatch":
        """Force full columnar form (every field extracted, masks kept).

        For a row-backed batch the field set is the first-seen-ordered
        union over all rows; already-columnar batches return themselves.
        """
        rows = self._rows
        if rows is None:
            return self
        names: dict[str, None] = {}
        for r in rows:
            for k in r.values:
                if k not in names:
                    names[k] = None
        for name in names:
            if name not in self._columns:
                self._extract(name)
        return ColumnBatch._new(
            None, self._stamp_rows,
            {n: self._columns[n] for n in names},
            {n: self._masks[n] for n in names if self._masks[n] is not None},
            self.backend,
        )

    # -- conversion ------------------------------------------------------

    def to_rows(self) -> list[Record]:
        """The batch as records, bit-identical to the tuple path.

        Row-backed batches return the original record list (treat it as
        read-only); columnar batches rebuild records from the columns
        (native values) and the retained stamps, omitting fields whose
        validity mask is ``False``.
        """
        rows = self._rows
        if rows is not None:
            return rows
        names = list(self._columns)
        native = [as_pylist(self._columns[n]) for n in names]
        holed = [
            (j, self._masks[names[j]])
            for j in range(len(names))
            if self._masks.get(names[j]) is not None
        ]
        out: list[Record] = []
        rng = range(len(names))
        for i, stamp in enumerate(self._stamp_rows):
            values = {names[j]: native[j][i] for j in rng}
            for j, valid in holed:
                if not valid[i]:
                    del values[names[j]]
            out.append(
                Record(values, ts=stamp.ts, seq=stamp.seq, size=stamp.size)
            )
        return out

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        mode = "rows" if self._rows is not None else "columns"
        return (
            f"ColumnBatch({mode}, n={self.length}, "
            f"fields={list(self._columns)}, backend={self.backend!r})"
        )
