"""Columnar vectorized execution (the third execution tier).

The engine runs plans on three tiers, selectable per engine (and, via
:class:`repro.adaptive.SetRepresentation`, per chain at runtime):

1. **tuple** — record-at-a-time dispatch (the differential oracle);
2. **row batch** — micro-batched ``process_batch`` (PR 1);
3. **columnar** — struct-of-arrays :class:`ColumnBatch` batches flowing
   through vectorized ``process_columns`` kernels, optionally with
   adjacent stateless operators fused (:func:`fuse_chain`) into a
   single mask+transform sweep.

All three produce bit-identical output streams; the columnar tier
auto-converts at the boundary between columnar-capable and tuple-only
operators, so mixed plans run unmodified.
"""

from repro.columnar.batch import BACKENDS, ColumnBatch, HAVE_NUMPY, as_pylist
from repro.columnar.expr import (
    Col,
    ColumnMapFn,
    Expr,
    Lit,
    column_of,
    mask_count,
)
from repro.columnar.fuse import FusedOperator, fusable, fuse_chain, unfuse_chain
from repro.errors import ColumnError, ColumnUnavailable

__all__ = [
    "BACKENDS",
    "Col",
    "ColumnBatch",
    "ColumnError",
    "ColumnMapFn",
    "ColumnUnavailable",
    "Expr",
    "FusedOperator",
    "HAVE_NUMPY",
    "Lit",
    "as_pylist",
    "column_of",
    "fusable",
    "fuse_chain",
    "mask_count",
    "unfuse_chain",
]
