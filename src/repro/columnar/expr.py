"""Vectorizable expressions over records *and* column batches.

The tuple-path operators take plain callables (``lambda r: r["x"] > 5``),
which a columnar kernel cannot introspect.  This module provides an
expression AST whose nodes are **both**:

* record predicates/extractors — ``expr(record)`` evaluates row-at-a-time
  with exactly the semantics the lambda would have had (including the
  ``KeyError``/``SchemaError`` surface of ``record[attr]``), so an
  expression-built plan run on the tuple path is bit-identical to the
  lambda-built plan; and
* column programs — ``expr.values(batch)`` / ``expr.mask(batch)``
  evaluate one whole :class:`~repro.columnar.batch.ColumnBatch` per
  call, vectorizing over NumPy arrays when the backend provides them
  and falling back to list comprehensions otherwise.

Build them from :class:`Col` and :class:`Lit`::

    from repro.columnar import Col
    intl = Col("is_intl")                       # Select(intl)
    toll = (Col("duration") > 10.0) & ~Col("is_toll_free")
    minutes = Col("duration") / Lit(60.0)       # Project/Extend spec

``values`` may return a scalar for constant expressions; kernels
normalize with :func:`column_of`.  Any column access on a field with
missing values raises :class:`~repro.errors.ColumnUnavailable`, which
kernels translate into their row-path fallback.
"""

from __future__ import annotations

import operator as _op

from repro.columnar.batch import ColumnBatch, as_pylist

try:  # pragma: no cover - mirrored guard from batch.py
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "Expr", "Col", "Lit", "ColumnMapFn", "column_of", "mask_count",
]


def column_of(value, batch: ColumnBatch) -> list:
    """Normalize a ``values()`` result to a full-length column."""
    if isinstance(value, (list, tuple)):
        return list(value)
    if _np is not None and isinstance(value, _np.ndarray):
        return value
    if hasattr(value, "tolist") and hasattr(value, "__len__"):  # array.array
        return value
    return [value] * batch.length


def mask_count(mask) -> int:
    """Number of truthy entries in a mask (any backend)."""
    if _np is not None and isinstance(mask, _np.ndarray):
        return int(_np.count_nonzero(mask))
    n = 0
    for v in mask:
        if v:
            n += 1
    return n


def _is_ndarray(x) -> bool:
    return _np is not None and isinstance(x, _np.ndarray)


def _is_column(x) -> bool:
    """True for column containers (never for scalar str/bytes/etc.)."""
    return (
        type(x) is list
        or _is_ndarray(x)
        or (hasattr(x, "tolist") and hasattr(x, "__len__"))
    )


def _zip_apply(fn, left, right, batch: ColumnBatch) -> list:
    """Elementwise ``fn`` over scalar-or-column operands, as a list."""
    lseq = _is_column(left)
    rseq = _is_column(right)
    if lseq and rseq:
        return [fn(a, b) for a, b in zip(left, right)]
    if lseq:
        return [fn(a, right) for a in left]
    if rseq:
        return [fn(left, b) for b in right]
    return [fn(left, right)] * batch.length


class Expr:
    """Base node: callable on a record, vectorizable over a batch."""

    def __call__(self, record):
        raise NotImplementedError

    def values(self, batch: ColumnBatch):
        """Evaluate over ``batch`` → column (or scalar for constants)."""
        raise NotImplementedError

    def mask(self, batch: ColumnBatch):
        """Evaluate as a selection mask (truthiness per element)."""
        return self.values(batch)

    # -- composition (arithmetic) --
    def __add__(self, other):
        return BinOp(_op.add, self, _wrap(other), "+")

    def __radd__(self, other):
        return BinOp(_op.add, _wrap(other), self, "+")

    def __sub__(self, other):
        return BinOp(_op.sub, self, _wrap(other), "-")

    def __rsub__(self, other):
        return BinOp(_op.sub, _wrap(other), self, "-")

    def __mul__(self, other):
        return BinOp(_op.mul, self, _wrap(other), "*")

    def __rmul__(self, other):
        return BinOp(_op.mul, _wrap(other), self, "*")

    def __truediv__(self, other):
        return BinOp(_op.truediv, self, _wrap(other), "/")

    def __rtruediv__(self, other):
        return BinOp(_op.truediv, _wrap(other), self, "/")

    def __mod__(self, other):
        return BinOp(_op.mod, self, _wrap(other), "%")

    # -- composition (comparisons → masks) --
    def __eq__(self, other):  # type: ignore[override]
        return BinOp(_op.eq, self, _wrap(other), "==")

    def __ne__(self, other):  # type: ignore[override]
        return BinOp(_op.ne, self, _wrap(other), "!=")

    def __lt__(self, other):
        return BinOp(_op.lt, self, _wrap(other), "<")

    def __le__(self, other):
        return BinOp(_op.le, self, _wrap(other), "<=")

    def __gt__(self, other):
        return BinOp(_op.gt, self, _wrap(other), ">")

    def __ge__(self, other):
        return BinOp(_op.ge, self, _wrap(other), ">=")

    # overloading == breaks default hashing; expressions hash by identity
    __hash__ = object.__hash__

    # -- composition (boolean) --
    def __and__(self, other):
        return And(self, _wrap(other))

    def __or__(self, other):
        return Or(self, _wrap(other))

    def __invert__(self):
        return Not(self)


def _wrap(value) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


class Col(Expr):
    """The value of field ``attr`` (row: ``record[attr]``)."""

    __slots__ = ("attr",)

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def __call__(self, record):
        return record[self.attr]

    def values(self, batch: ColumnBatch):
        return batch.column(self.attr)

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"Col({self.attr!r})"


class Lit(Expr):
    """A constant."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __call__(self, record):
        return self.value

    def values(self, batch: ColumnBatch):
        return self.value

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class BinOp(Expr):
    """Elementwise binary op; vectorizes when an operand is an ndarray."""

    __slots__ = ("fn", "left", "right", "symbol")

    def __init__(self, fn, left: Expr, right: Expr, symbol: str) -> None:
        self.fn = fn
        self.left = left
        self.right = right
        self.symbol = symbol

    def __call__(self, record):
        return self.fn(self.left(record), self.right(record))

    def values(self, batch: ColumnBatch):
        lv = self.left.values(batch)
        rv = self.right.values(batch)
        if _is_ndarray(lv) or _is_ndarray(rv):
            return self.fn(lv, rv)
        lseq = _is_column(lv)
        rseq = _is_column(rv)
        if not lseq and not rseq:
            return self.fn(lv, rv)  # constant folds to a scalar
        return _zip_apply(self.fn, lv, rv, batch)

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class And(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def __call__(self, record):
        return self.left(record) and self.right(record)

    def values(self, batch: ColumnBatch):
        return mask_and(self.left.mask(batch), self.right.mask(batch), batch)

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


class Or(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def __call__(self, record):
        return self.left(record) or self.right(record)

    def values(self, batch: ColumnBatch):
        lm = column_of(self.left.mask(batch), batch)
        rm = column_of(self.right.mask(batch), batch)
        if _is_ndarray(lm) or _is_ndarray(rm):
            return _np.logical_or(lm, rm)
        return [a or b for a, b in zip(lm, rm)]

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def __call__(self, record):
        return not self.operand(record)

    def values(self, batch: ColumnBatch):
        m = column_of(self.operand.mask(batch), batch)
        if _is_ndarray(m):
            return _np.logical_not(m)
        return [not v for v in m]

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


def mask_and(left, right, batch: ColumnBatch):
    """Conjunction of two masks (used by And and by fused Selects)."""
    lm = column_of(left, batch)
    rm = column_of(right, batch)
    if _is_ndarray(lm) or _is_ndarray(rm):
        return _np.logical_and(lm, rm)
    return [a and b for a, b in zip(lm, rm)]


class ColumnMapFn:
    """A ``MapOp`` function with a vectorized ``apply_columns``.

    ``columns`` maps output field names to :class:`Expr` nodes; the row
    form builds the same dict per record via ``record.with_values``, so
    tuple and columnar paths agree bit-for-bit.  The record's full value
    dict is *replaced* (like ``Project``), not extended — use
    ``Extend`` for additive maps.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: dict) -> None:
        self.columns = dict(columns)

    def __call__(self, record):
        return record.with_values(
            {name: expr(record) for name, expr in self.columns.items()}
        )

    def apply_columns(self, batch: ColumnBatch) -> ColumnBatch:
        out = {
            name: column_of(expr.values(batch), batch)
            for name, expr in self.columns.items()
        }
        return batch.with_columns(out)

    def __repr__(self) -> str:
        return f"ColumnMapFn({self.columns!r})"
