"""Measured-statistics feedback for runtime adaptation.

The adaptive controller (:mod:`repro.adaptive`) runs in the
coordinator, but the measurements it needs live inside engines that may
be running in worker threads or forked worker processes.  This module
defines the picklable carrier that crosses that boundary:
:class:`OperatorStats` is a frozen value snapshot of one operator's
cumulative counters, and :func:`collect_stats` captures every operator
of a running engine's registry at an epoch boundary.

Stats are *cumulative*; the controller differences consecutive
snapshots itself (see
:meth:`repro.adaptive.controller.AdaptiveController.observe`) because
drift detection needs per-window estimates — a selectivity shift in the
last thousand records is invisible in a lifetime average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import MetricsRegistry, OperatorMetrics

__all__ = ["OperatorStats", "collect_stats", "merge_stats"]


@dataclass(frozen=True)
class OperatorStats:
    """Picklable snapshot of one operator's cumulative counters.

    ``wall_time``/``timed_invocations`` are 0.0/0 for an operator the
    observer never sampled — consumers must treat that as *unmeasured*,
    not as infinitely fast (the ``timed_invocations == 0`` discipline
    audited by ``tests/optimizer/test_rate_based.py``).
    """

    records_in: int = 0
    records_out: int = 0
    punctuations_in: int = 0
    wall_time: float = 0.0
    timed_invocations: int = 0

    @staticmethod
    def of(m: OperatorMetrics) -> "OperatorStats":
        return OperatorStats(
            records_in=m.records_in,
            records_out=m.records_out,
            punctuations_in=m.punctuations_in,
            wall_time=m.wall_time,
            timed_invocations=m.timed_invocations,
        )

    def delta(self, earlier: "OperatorStats") -> "OperatorStats":
        """Counters accumulated since ``earlier`` (a windowed view)."""
        return OperatorStats(
            records_in=self.records_in - earlier.records_in,
            records_out=self.records_out - earlier.records_out,
            punctuations_in=self.punctuations_in - earlier.punctuations_in,
            wall_time=self.wall_time - earlier.wall_time,
            timed_invocations=self.timed_invocations
            - earlier.timed_invocations,
        )

    def __add__(self, other: "OperatorStats") -> "OperatorStats":
        return OperatorStats(
            records_in=self.records_in + other.records_in,
            records_out=self.records_out + other.records_out,
            punctuations_in=self.punctuations_in + other.punctuations_in,
            wall_time=self.wall_time + other.wall_time,
            timed_invocations=self.timed_invocations
            + other.timed_invocations,
        )

    # -- derived estimates (windowed when taken on a delta) ---------------

    @property
    def measured(self) -> bool:
        """Whether the observer actually timed this operator."""
        return self.timed_invocations > 0 and self.wall_time > 0.0

    @property
    def selectivity(self) -> float:
        """Output/input record ratio; ``nan`` with no input (absence of
        evidence, matching :attr:`OperatorMetrics.observed_selectivity`)."""
        if self.records_in == 0:
            return float("nan")
        return self.records_out / self.records_in

    @property
    def rate(self) -> float:
        """Records/sec serviced; ``nan`` when unmeasured."""
        if not self.measured or self.records_in == 0:
            return float("nan")
        return self.records_in / self.wall_time

    @property
    def record_cost(self) -> float:
        """Measured wall seconds per input record; 0.0 when unmeasured."""
        if not self.measured or self.records_in == 0:
            return 0.0
        return self.wall_time / self.records_in


def collect_stats(registry: MetricsRegistry) -> dict[str, OperatorStats]:
    """Snapshot every operator's counters from a run's registry."""
    return {
        name: OperatorStats.of(m) for name, m in registry.operators.items()
    }


def merge_stats(
    snapshots: list[dict[str, OperatorStats]],
) -> dict[str, OperatorStats]:
    """Sum per-operator stats across shards (same chain per shard)."""
    total: dict[str, OperatorStats] = {}
    for snap in snapshots:
        for name, stats in snap.items():
            if name in total:
                total[name] = total[name] + stats
            else:
                total[name] = stats
    return total
