"""Metric exporters: Prometheus text format and strict-JSON snapshots.

Both read a :class:`~repro.core.metrics.MetricsRegistry` — the merged
registry of a sharded or supervised run works identically to a single
engine's.

*Strictness* is the point of the JSON path: ``json.dumps`` happily
emits ``NaN``/``Infinity`` literals that are **not** JSON and break
most consumers.  :func:`dumps_strict` forbids them, and
:func:`json_snapshot` maps every no-data value to ``None`` first, so a
registry containing never-fed operators (whose ``observed_selectivity``
is deliberately ``nan`` in memory — the optimizer needs that) still
serializes cleanly.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.metrics import MetricsRegistry

__all__ = [
    "to_prometheus",
    "json_snapshot",
    "dumps_strict",
    "write_snapshot",
]


def _sanitize(name: str) -> str:
    """Make a metric/label name Prometheus-legal ([a-zA-Z0-9_:])."""
    return "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )


def _fmt(value: float) -> str:
    """Prometheus sample value: +Inf/-Inf/NaN spellings, repr floats."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


_OPERATOR_COUNTERS = (
    "records_in",
    "records_out",
    "punctuations_in",
    "punctuations_out",
    "invocations",
    "batches_in",
    "timed_invocations",
)
_OPERATOR_SECONDS = ("busy_time", "wall_time")


def to_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Per-operator counters become ``<ns>_operator_<counter>_total`` with
    ``operator`` (and, when known, ``kind``) labels; run counters become
    ``<ns>_<name>_total``; gauges ``<ns>_<name>``; histograms the
    standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple with
    cumulative bucket counts.
    """
    ns = _sanitize(namespace)
    lines: list[str] = []

    def op_labels(name: str) -> str:
        kind = registry.operator_kinds.get(name)
        if kind is None:
            return f'operator="{name}"'
        return f'operator="{name}",kind="{_sanitize(kind)}"'

    for counter in _OPERATOR_COUNTERS:
        metric = f"{ns}_operator_{counter}_total"
        lines.append(f"# TYPE {metric} counter")
        for name, m in registry.operators.items():
            lines.append(
                f"{metric}{{{op_labels(name)}}} {_fmt(getattr(m, counter))}"
            )
    for seconds in _OPERATOR_SECONDS:
        metric = f"{ns}_operator_{seconds}_seconds_total"
        lines.append(f"# TYPE {metric} counter")
        for name, m in registry.operators.items():
            lines.append(
                f"{metric}{{{op_labels(name)}}} {_fmt(getattr(m, seconds))}"
            )

    if registry.counters:
        for name in sorted(registry.counters):
            metric = f"{ns}_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_fmt(registry.counters[name])}")

    if registry.gauges:
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            if gauge.samples == 0:
                continue
            metric = f"{ns}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(gauge.last)}")

    if registry.histograms:
        for name in sorted(registry.histograms):
            hist = registry.histograms[name]
            metric = f"{ns}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            cumulative += hist.counts[-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_fmt(hist.total)}")
            lines.append(f"{metric}_count {hist.count}")

    return "\n".join(lines) + "\n"


def json_snapshot(
    registry: MetricsRegistry, include_spans: bool = True
) -> dict:
    """A strict-JSON-safe dict view of the whole registry.

    Guaranteed to survive ``json.dumps(..., allow_nan=False)``:
    operator no-data ``nan`` values arrive as ``None`` (the
    :meth:`~repro.core.metrics.MetricsRegistry.summary` boundary
    mapping), gauge/histogram snapshots do their own mapping, and any
    remaining non-finite float is mapped to ``None`` defensively.
    """
    snapshot = {
        "operators": registry.summary(),
        "operator_kinds": dict(registry.operator_kinds),
        "counters": dict(registry.counters),
        "gauges": {
            name: gauge.snapshot()
            for name, gauge in sorted(registry.gauges.items())
        },
        "histograms": {
            name: hist.snapshot()
            for name, hist in sorted(registry.histograms.items())
        },
        "series": {
            name: {"len": len(series), "last": series.last()}
            for name, series in sorted(registry.series.items())
        },
    }
    if include_spans:
        snapshot["spans"] = [span.to_dict() for span in registry.spans]
    return _jsonify(snapshot)


def _jsonify(value):
    """Deep-map non-finite floats to None; stringify non-JSON keys."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else repr(k)): _jsonify(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def dumps_strict(obj, **kwargs) -> str:
    """``json.dumps`` that refuses NaN/Infinity instead of emitting them."""
    kwargs.setdefault("allow_nan", False)
    return json.dumps(obj, **kwargs)


def write_snapshot(
    registry: MetricsRegistry, path: str | Path, include_spans: bool = True
) -> Path:
    """Write the strict-JSON snapshot to ``path`` and return it."""
    path = Path(path)
    path.write_text(
        dumps_strict(json_snapshot(registry, include_spans), indent=2) + "\n"
    )
    return path
