"""Wall-clock observability (milestone M5).

The adaptation layers — rate-based optimization (slide 41), QoS
scheduling (slides 42-43), load shedding (slide 44) — all presume the
DSMS can *measure* itself.  This package is that measurement plane:

* :class:`ObserveConfig` / :class:`Observer` — per-engine wall-clock
  timing of operator dispatches (``perf_counter`` spans, 1-in-N
  sampling knob), feeding per-operator ``wall_time`` estimates and
  fixed-bucket latency / batch-size histograms, plus queue-depth and
  watermark-lag gauges sampled at batch boundaries;
* :class:`Span` / :class:`Tracer` — hierarchical trace spans
  (run → epoch → shard → operator) that
  :class:`~repro.parallel.sharded.ShardedEngine` and the resilience
  :class:`~repro.resilience.supervisor.Supervisor` propagate across
  thread/process backends, so recovery replays are visible in traces;
* :func:`to_prometheus` / :func:`json_snapshot` — exporters off the
  run's :class:`~repro.core.metrics.MetricsRegistry` (Prometheus text
  exposition format, strict-JSON snapshot).

Enable with ``Engine(plan, observe=True)`` (or an ``int`` sampling
stride, or a full :class:`ObserveConfig`); the measurements land in the
run's metrics registry alongside the modeled counters.
"""

from repro.core.metrics import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    FixedHistogram,
    Gauge,
)
from repro.observe.export import (
    dumps_strict,
    json_snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.observe.feedback import OperatorStats, collect_stats, merge_stats
from repro.observe.observer import ObserveConfig, Observer
from repro.observe.trace import Span, Tracer

__all__ = [
    "ObserveConfig",
    "Observer",
    "OperatorStats",
    "collect_stats",
    "merge_stats",
    "Span",
    "Tracer",
    "FixedHistogram",
    "Gauge",
    "LATENCY_BUCKETS",
    "BATCH_BUCKETS",
    "to_prometheus",
    "json_snapshot",
    "dumps_strict",
    "write_snapshot",
]
