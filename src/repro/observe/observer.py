"""Per-engine wall-clock observation.

An :class:`Observer` is attached to one
:class:`~repro.core.engine.Engine` run and measures what the modeled
counters cannot: real ``perf_counter`` time per operator dispatch
(feeding ``wall_time`` estimates and fixed-bucket latency histograms),
batch-size distributions, and queue-depth / watermark-lag gauges
sampled at batch boundaries.

Overhead discipline
-------------------

The hot path must stay cheap enough that observation can be always-on:

* :class:`ObserveConfig.sampling` times one in N dispatches *per
  operator* (a shared countdown would alias with the dispatch pattern:
  in a two-operator chain an even stride lands on the same operator
  every time).  The engine keeps the untimed path to a single inlined
  counter decrement (no function call); only every N-th dispatch pays
  two ``perf_counter`` calls and one histogram insert.  Measured spans
  are charged with weight N, so ``wall_time`` and histogram counts
  remain estimates of the *total*.
* Gauges are sampled at chunk (micro-batch) boundaries, never per
  element.
* Span buffers are bounded (:class:`~repro.observe.trace.Tracer`).

M5 (``benchmarks/bench_m5_observer_overhead.py``) gates the overhead of
``sampling=64`` at <5% on the M2 CDR workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

from repro.core.metrics import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    OperatorMetrics,
)
from repro.core.tuples import Punctuation
from repro.errors import PlanError
from repro.observe.trace import Tracer

__all__ = ["ObserveConfig", "Observer"]


@dataclass(frozen=True)
class ObserveConfig:
    """Picklable observation settings (crosses the fork boundary).

    Parameters
    ----------
    sampling:
        Time 1 in ``sampling`` dispatches (1 = time everything).  The
        cheap knob: overhead falls roughly linearly in it while
        ``wall_time`` stays an unbiased estimate under steady load.
    trace:
        Record engine/epoch/shard spans.
    trace_operators:
        Also record a span per *sampled* operator dispatch.  Off by
        default: per-dispatch spans are the one observation whose
        volume grows with the stream, bounded buffer or not.
    max_spans:
        Span buffer bound per tracer.
    latency_buckets / batch_buckets:
        Fixed histogram bounds (seconds / elements).
    context:
        Enclosing span path — set by coordinators
        (:class:`~repro.parallel.sharded.ShardedEngine`,
        :class:`~repro.resilience.supervisor.Supervisor`) so worker
        spans nest under the run/shard that spawned them.
    """

    sampling: int = 1
    trace: bool = True
    trace_operators: bool = False
    max_spans: int = 4096
    latency_buckets: tuple[float, ...] = LATENCY_BUCKETS
    batch_buckets: tuple[float, ...] = BATCH_BUCKETS
    context: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.sampling < 1:
            raise PlanError(
                f"observe sampling must be >= 1; got {self.sampling}"
            )

    def with_context(self, *segments: str) -> "ObserveConfig":
        """A copy whose span context is extended by ``segments``."""
        return dataclasses.replace(
            self, context=self.context + tuple(segments)
        )

    @staticmethod
    def coerce(value) -> "ObserveConfig | None":
        """Normalize an ``observe=`` argument.

        ``None``/``False`` → no observation; ``True`` → defaults; an
        ``int`` → that sampling stride; an :class:`ObserveConfig` →
        itself.
        """
        if value is None or value is False:
            return None
        if value is True:
            return ObserveConfig()
        if isinstance(value, int):
            return ObserveConfig(sampling=value)
        if isinstance(value, ObserveConfig):
            return value
        raise PlanError(
            f"observe must be None, bool, int (sampling stride), or "
            f"ObserveConfig; got {value!r}"
        )


class Observer:
    """Measurement hooks for one engine run.

    The engine decrements each operator's
    :attr:`~repro.core.metrics.OperatorMetrics.sample_tick` inline per
    dispatch and calls :meth:`timed_process` /
    :meth:`timed_process_batch` only when it hits zero — everything
    else here is off the per-element path.
    """

    def __init__(self, config: ObserveConfig, registry: MetricsRegistry) -> None:
        self.config = config
        self.registry = registry
        self.sampling = config.sampling
        self.tracer = Tracer(config.context, max_spans=config.max_spans)
        self._run_start: float | None = None
        self._max_ts = float("-inf")
        self._watermark = float("-inf")
        # Totals for the measured-pressure estimator (overload control).
        self._timed_records = 0
        self._timed_seconds = 0.0
        registry.counters["observe.sampling"] = float(self.sampling)

    # -- run lifecycle -----------------------------------------------------

    def start_run(self) -> None:
        self._run_start = perf_counter()

    def finish_run(self) -> None:
        """Close the engine span and publish buffered spans/counters."""
        if self._run_start is None:
            return
        end = perf_counter()
        if self.config.trace:
            self.tracer.record("engine", self._run_start, end)
        self.tracer.publish(self.registry)
        self.registry.incr("observe.elapsed_seconds", end - self._run_start)
        self._run_start = None

    @property
    def elapsed(self) -> float:
        """Wall seconds since :meth:`start_run` (0.0 before it)."""
        if self._run_start is None:
            return 0.0
        return perf_counter() - self._run_start

    # -- sampled dispatch timing ------------------------------------------

    def timed_process(
        self, operator, element, port: int, m: OperatorMetrics
    ) -> list:
        """Time one tuple dispatch (the engine hit the sampling tick)."""
        m.sample_tick = self.sampling
        t0 = perf_counter()
        produced = operator.process(element, port)
        dt = perf_counter() - t0
        self._charge(operator, m, dt, 1)
        return produced

    def timed_process_batch(
        self, operator, elements: Sequence, port: int, m: OperatorMetrics
    ) -> list:
        """Time one micro-batch dispatch."""
        m.sample_tick = self.sampling
        t0 = perf_counter()
        produced = operator.process_batch(elements, port)
        dt = perf_counter() - t0
        n = len(elements)
        self._charge(operator, m, dt, n)
        self.registry.histogram(
            f"op.{operator.name}.batch_size", self.config.batch_buckets
        ).observe(n, weight=self.sampling)
        return produced

    def timed_process_columns(
        self, operator, batch, port: int, m: OperatorMetrics
    ) -> object:
        """Time one columnar-batch dispatch.

        Same accounting as :meth:`timed_process_batch` — the batch-size
        histogram counts *records*, so tuple, row-batch, and columnar
        tiers stay comparable in the exporters.
        """
        m.sample_tick = self.sampling
        t0 = perf_counter()
        produced = operator.process_columns(batch, port)
        dt = perf_counter() - t0
        n = batch.length
        self._charge(operator, m, dt, n)
        self.registry.histogram(
            f"op.{operator.name}.batch_size", self.config.batch_buckets
        ).observe(n, weight=self.sampling)
        return produced

    def _charge(self, operator, m: OperatorMetrics, dt: float, n: int) -> None:
        stride = self.sampling
        m.wall_time += dt * stride
        m.timed_invocations += 1
        self._timed_records += n
        self._timed_seconds += dt
        self.registry.histogram(
            f"op.{operator.name}.latency", self.config.latency_buckets
        ).observe(dt, weight=stride)
        if self.config.trace_operators and self.config.trace:
            t1 = perf_counter()
            self.tracer.record(
                f"op:{operator.name}", t1 - dt, t1, elements=n
            )

    def rewind(self) -> None:
        """Forget stream progress after a state rewind.

        ``restore_checkpoint`` rolls the engine back to an epoch
        boundary, but the high-watermark markers here and the gauges
        they feed describe the *abandoned* future.  Without this reset
        :meth:`on_chunk` would keep re-publishing the stale watermark
        into every chunk of a replayed trace.
        """
        self._max_ts = float("-inf")
        self._watermark = float("-inf")
        self.registry.gauges.clear()

    # -- batch-boundary gauges --------------------------------------------

    def on_chunk(self, last_element) -> None:
        """Note stream progress at an ingress chunk boundary (O(1))."""
        if isinstance(last_element, Punctuation):
            if last_element.ts > self._watermark:
                self._watermark = last_element.ts
        elif last_element.ts > self._max_ts:
            self._max_ts = last_element.ts
        if self._max_ts > float("-inf"):
            self.registry.gauge("ingress.max_ts").set(self._max_ts)
        if self._watermark > float("-inf"):
            self.registry.gauge("ingress.watermark").set(self._watermark)
            if self._max_ts > float("-inf"):
                self.registry.gauge("ingress.watermark_lag").set(
                    max(0.0, self._max_ts - self._watermark)
                )

    def sample_queues(self, queues) -> None:
        """Sample depth/size gauges for a set of named OpQueues."""
        for queue in queues:
            queue.sample(self.registry)

    # -- measured-pressure estimator --------------------------------------

    def mean_record_cost(self) -> float:
        """Measured wall seconds of operator work per ingress record.

        Total sampled operator self-time over total sampled elements —
        the per-element service cost the overload guard multiplies by
        its backlog to express queue pressure in *seconds of measured
        work* (see :class:`~repro.resilience.overload.OverloadGuard`
        with ``pressure="measured"``).  0.0 until something was timed.
        """
        if self._timed_records == 0:
            return 0.0
        return self._timed_seconds / self._timed_records
