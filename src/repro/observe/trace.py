"""Hierarchical trace spans.

A :class:`Span` is one timed region of execution, addressed by a *path*
— the chain of enclosing span segments, e.g.::

    ("run:cdr", "epoch:3", "shard:1", "op:per_origin")

Paths make the hierarchy explicit without object links, so spans are
plain picklable data: worker processes record them locally (prefixed
with the context the coordinator handed them) and ship them back inside
their :class:`~repro.core.metrics.MetricsRegistry`; the coordinator's
merge is list concatenation.  ``perf_counter`` timestamps are
``CLOCK_MONOTONIC`` on Linux, which forked workers share, so parent and
child span times are directly comparable on the fork backend.

A :class:`Tracer` records finished spans into a bounded buffer — the
observe layer never buffers unboundedly (the same discipline as the
:class:`~repro.shedding.controller.LoadController` trace fix).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One finished timed region.

    ``path`` is the full span address including the span's own segment
    as the last element; ``attrs`` carries structured annotations
    (``{"replay": True, "attempt": 2}`` on a recovery replay, shard and
    epoch indices, element counts...).
    """

    path: tuple[str, ...]
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def within(self, segment: str) -> bool:
        """True when ``segment`` appears in this span's enclosing path."""
        return segment in self.path[:-1]

    def to_dict(self) -> dict:
        """JSON-safe representation (for snapshot exporters)."""
        return {
            "path": list(self.path),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Records spans under a fixed context path, into a bounded buffer.

    Parameters
    ----------
    context:
        Path segments of the enclosing spans (e.g. ``("run:x",
        "shard:2")`` inside a shard worker).  Every span this tracer
        records is prefixed with it.
    max_spans:
        Buffer bound.  Once full, further spans are counted in
        :attr:`dropped` instead of stored — tracing degrades, it never
        leaks.
    """

    def __init__(
        self, context: tuple[str, ...] = (), max_spans: int = 4096
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1; got {max_spans}")
        self.context = tuple(context)
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0

    def record(
        self, segment: str, start: float, end: float, **attrs
    ) -> Span | None:
        """Store one finished span; return it (``None`` if over bound)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        span = Span(self.context + (segment,), start, end, attrs)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, segment: str, **attrs):
        """Context manager timing one region::

            with tracer.span("epoch:3", shard=1):
                ...
        """
        start = perf_counter()
        try:
            yield
        finally:
            self.record(segment, start, perf_counter(), **attrs)

    def child_context(self, segment: str) -> tuple[str, ...]:
        """The context a nested tracer (e.g. a shard worker) should use."""
        return self.context + (segment,)

    def publish(self, registry) -> None:
        """Append recorded spans into a registry (and note drops)."""
        registry.spans.extend(self.spans)
        if self.dropped:
            registry.incr("observe.spans_dropped", self.dropped)

    def __len__(self) -> int:
        return len(self.spans)
