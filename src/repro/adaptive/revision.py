"""Plan revisions: picklable, name-based migration descriptors.

A revision describes one output-invariant change to a running linear
plan.  Revisions deliberately carry **no operator instances and no
callables** — only names and scalars — because in sharded execution
they are decided centrally by the
:class:`~repro.adaptive.controller.AdaptiveController` and shipped over
a pipe to forked shard workers, which hold the actual operator objects
(plans hold lambdas; lambdas cross a fork by inheritance, never by
pickle).  Each worker resolves names against its local chain and
rebuilds its plan through :meth:`~repro.core.engine.Engine.migrate_plan`,
so the PR 3 snapshot/restore machinery carries operator state across
the swap.

Every revision here preserves the output element sequence exactly:

* :class:`ReorderChain` permutes a run of consecutive ``Select``
  operators (or ``FixedFilterChain``/``Eddy`` filter operators).  A
  record survives the run iff it satisfies *all* predicates —
  conjunction is commutative — and each operator emits at most the
  record it was given, with its stamp untouched; punctuations pass
  through every filter unchanged.  Any permutation therefore emits the
  identical element sequence, spending different work.
* :class:`ReorderFilters` permutes predicates *inside* one
  ``FixedFilterChain`` — the same argument, one level down.
* :class:`SwapToEddy` / :class:`SwapToChain` exchange a
  ``FixedFilterChain`` for an :class:`~repro.operators.eddy.Eddy` over
  the same predicates (and back).  Both emit a record iff every filter
  passes; only the evaluation order — and hence the work — differs.
* :class:`SetBatchSize` changes the engine's micro-batch size, which
  PR 1's differential suite certifies output-invariant for every size.
* :class:`SetRepresentation` switches the engine between tuple and
  columnar execution (and optionally fuses/unfuses stateless runs).
  The columnar kernels are certified element-for-element identical to
  the tuple path (``tests/columnar``), fusion reuses the *same*
  operator instances so live state survives, and the flip lands at a
  boundary — never mid-chunk.
* :class:`RetuneShedding` moves the overload controller's watermarks —
  load shedding is outside the exact-answer contract by construction
  (it is only issued when a guard is attached).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import Plan, linear_plan
from repro.errors import PlanError
from repro.operators.eddy import Eddy, FixedFilterChain
from repro.operators.select import Select

__all__ = [
    "Revision",
    "ReorderChain",
    "ReorderFilters",
    "SwapToEddy",
    "SwapToChain",
    "SetBatchSize",
    "SetRepresentation",
    "RetuneShedding",
    "RetuneFeedback",
    "RePlace",
    "Migration",
    "apply_to_chain",
    "apply_revisions",
    "reorderable_runs",
]


@dataclass(frozen=True)
class Revision:
    """Base class for plan revisions (all picklable value objects)."""

    #: True when applying the revision rebuilds the plan (and therefore
    #: goes through ``Engine.migrate_plan``); False for engine/guard
    #: tuning knobs.
    structural = True


@dataclass(frozen=True)
class ReorderChain(Revision):
    """Reorder a run of consecutive commutative filter operators.

    ``order`` lists operator *names*; it must be a permutation of a run
    of adjacent ``Select``/``FixedFilterChain``/``Eddy`` operators in
    the current chain (checked at apply time).
    """

    order: tuple[str, ...]


@dataclass(frozen=True)
class ReorderFilters(Revision):
    """Reorder the predicates inside the ``FixedFilterChain`` ``name``."""

    name: str
    order: tuple[str, ...]


@dataclass(frozen=True)
class SwapToEddy(Revision):
    """Replace the ``FixedFilterChain`` ``name`` with an ``Eddy`` over
    the same filters (selectivity estimates are churning; let per-tuple
    routing re-learn the order continuously)."""

    name: str
    epsilon: float = 0.05
    decay: float = 0.99
    seed: int = 17


@dataclass(frozen=True)
class SwapToChain(Revision):
    """Replace the ``Eddy`` ``name`` with a ``FixedFilterChain``.

    ``order`` fixes the filter order by name; ``None`` freezes the
    eddy's currently learned order (each shard may have learned a
    different one — outputs are order-invariant, only work differs).
    """

    name: str
    order: tuple[str, ...] | None = None


@dataclass(frozen=True)
class SetBatchSize(Revision):
    """Retune the engine's micro-batch size."""

    structural = False
    batch_size: int

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise PlanError(
                f"batch_size must be >= 1; got {self.batch_size}"
            )


@dataclass(frozen=True)
class SetRepresentation(Revision):
    """Switch the engine's execution representation for the chain.

    ``representation`` is ``"tuple"`` or ``"columnar"``;
    ``column_backend`` optionally pins the column storage backend
    (``None`` keeps the engine's current/auto choice).  ``fuse``
    additionally compiles stateless runs into
    :class:`~repro.columnar.fuse.FusedOperator` nodes; ``fuse=False``
    expands any fused nodes back.  Fusion re-uses the constituent
    operator *instances*, so learned filter statistics and (for the
    tuple path) any operator state survive the flip, and
    :meth:`~repro.core.engine.Engine.migrate_plan` carries every other
    operator's state by name as usual.

    The revision is structural (the chain may be rebuilt), but
    :func:`apply_revisions` only migrates when the fuse flip actually
    changed the chain.
    """

    representation: str
    column_backend: str | None = None
    fuse: bool = False

    def __post_init__(self) -> None:
        if self.representation not in ("tuple", "columnar"):
            raise PlanError(
                f"representation must be 'tuple' or 'columnar'; "
                f"got {self.representation!r}"
            )


@dataclass(frozen=True)
class RetuneShedding(Revision):
    """Retune the overload guard's shedding watermarks."""

    structural = False
    low: float
    high: float


@dataclass(frozen=True)
class RetuneFeedback(Revision):
    """Install (or retract) targeted feedback advice at the guard.

    The adaptive controller emits this when the guard reports sustained
    pressure with a measured key skew: ``attr``/``keys``/``rate`` ask
    the guard to downsample the named hot keys to keep-rate ``rate``;
    ``resume=True`` retracts all feedback advice (pressure cleared).
    """

    structural = False
    attr: str = ""
    keys: tuple = ()
    rate: float = 1.0
    resume: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        if not self.resume:
            if not self.attr or not self.keys:
                raise PlanError(
                    "RetuneFeedback needs attr and keys unless resume=True"
                )
            if not (0.0 <= self.rate <= 1.0):
                raise PlanError(
                    f"RetuneFeedback rate must be in [0, 1]: {self.rate}"
                )


@dataclass(frozen=True)
class RePlace(Revision):
    """Migrate chain operators between cluster nodes (M10).

    ``assignment`` maps operator names to node names — the complete
    new placement, not a delta.  Like every revision it carries only
    names and scalars; the cluster driver
    (:class:`~repro.cluster.adaptive.AdaptiveClusterEngine`) resolves
    names against its chain and carries operator state across the move
    with the PR 3 snapshot/restore machinery.  ``structural = False``
    because no single engine's plan is rebuilt — whole engines are
    re-staged around unchanged chains.
    """

    structural = False
    assignment: tuple[tuple[str, str], ...]
    makespan: float = 0.0
    reason: str = ""

    def __post_init__(self) -> None:
        pairs = tuple(
            (str(op), str(node)) for op, node in self.assignment
        )
        object.__setattr__(self, "assignment", pairs)
        if not pairs:
            raise PlanError("RePlace needs a non-empty assignment")
        names = [op for op, _node in pairs]
        if len(set(names)) != len(names):
            raise PlanError(
                f"RePlace assignment names an operator twice: {names}"
            )


@dataclass(frozen=True)
class Migration:
    """One applied revision, for the controller's migration log."""

    boundary: int  # punctuation/epoch index at which it was applied
    revision: Revision
    reason: str


def _is_filter(op) -> bool:
    """Operators whose reordering is output-invariant (see module doc).

    ``type(op) is Select`` on purpose: a ``Select`` subclass could
    override ``on_record`` into something order-sensitive.
    """
    return type(op) is Select or isinstance(op, (FixedFilterChain, Eddy))


def reorderable_runs(ops: list) -> list[list]:
    """Maximal runs of >= 2 adjacent commutative filter operators."""
    runs: list[list] = []
    current: list = []
    for op in ops:
        if _is_filter(op):
            current.append(op)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = []
    if len(current) >= 2:
        runs.append(current)
    return runs


def apply_to_chain(ops: list, revision: Revision) -> list:
    """A new operator list with ``revision`` applied (inputs untouched).

    Operator instances are carried over wherever possible so live state
    (and learned filter statistics) survives; swapped operators reuse
    the *same* :class:`~repro.operators.eddy.EddyFilter` instances and
    keep the replaced operator's name, so metrics keyed by name continue
    across the migration.
    """
    if isinstance(revision, ReorderChain):
        names = [op.name for op in ops]
        wanted = list(revision.order)
        if len(wanted) < 2:
            raise PlanError(f"reorder needs >= 2 operators; got {wanted}")
        # Locate the contiguous run holding exactly these operators.
        members = set(wanted)
        if len(members) != len(wanted):
            raise PlanError(f"reorder lists a duplicate name: {wanted}")
        positions = [i for i, n in enumerate(names) if n in members]
        if len(positions) != len(wanted):
            missing = members - set(names)
            raise PlanError(
                f"reorder names {sorted(missing)} not in chain {names}"
            )
        lo, hi = positions[0], positions[-1]
        if hi - lo + 1 != len(wanted):
            raise PlanError(
                f"reorder set {wanted} is not contiguous in {names}"
            )
        segment = {op.name: op for op in ops[lo : hi + 1]}
        for op in segment.values():
            if not _is_filter(op):
                raise PlanError(
                    f"operator {op.name!r} ({type(op).__name__}) is not "
                    f"a commutative filter; refusing to reorder"
                )
        return ops[:lo] + [segment[n] for n in wanted] + ops[hi + 1 :]

    if isinstance(revision, ReorderFilters):
        out = []
        found = False
        for op in ops:
            if op.name == revision.name:
                if not isinstance(op, FixedFilterChain):
                    raise PlanError(
                        f"operator {revision.name!r} is "
                        f"{type(op).__name__}, not a FixedFilterChain"
                    )
                out.append(op.reordered(revision.order))
                found = True
            else:
                out.append(op)
        if not found:
            raise PlanError(f"no operator named {revision.name!r} in chain")
        return out

    if isinstance(revision, SwapToEddy):
        out = []
        found = False
        for op in ops:
            if op.name == revision.name:
                if not isinstance(op, FixedFilterChain):
                    raise PlanError(
                        f"operator {revision.name!r} is "
                        f"{type(op).__name__}, not a FixedFilterChain"
                    )
                out.append(
                    Eddy(
                        op.filters,
                        name=op.name,
                        epsilon=revision.epsilon,
                        decay=revision.decay,
                        seed=revision.seed,
                        cost_per_tuple=op.cost_per_tuple,
                    )
                )
                found = True
            else:
                out.append(op)
        if not found:
            raise PlanError(f"no operator named {revision.name!r} in chain")
        return out

    if isinstance(revision, SwapToChain):
        out = []
        found = False
        for op in ops:
            if op.name == revision.name:
                if not isinstance(op, Eddy):
                    raise PlanError(
                        f"operator {revision.name!r} is "
                        f"{type(op).__name__}, not an Eddy"
                    )
                order = (
                    list(revision.order)
                    if revision.order is not None
                    else op.current_order()
                )
                by_name = {f.name: f for f in op.filters}
                if sorted(by_name) != sorted(order):
                    raise PlanError(
                        f"eddy {op.name!r} holds filters "
                        f"{sorted(by_name)}; cannot freeze order {order}"
                    )
                out.append(
                    FixedFilterChain(
                        [by_name[n] for n in order],
                        name=op.name,
                        cost_per_tuple=op.cost_per_tuple,
                    )
                )
                found = True
            else:
                out.append(op)
        if not found:
            raise PlanError(f"no operator named {revision.name!r} in chain")
        return out

    if isinstance(revision, SetRepresentation):
        # Lazy import mirrors chain_of(): keep repro.adaptive importable
        # from worker modules without dragging the columnar package in.
        from repro.columnar import fuse_chain, unfuse_chain

        return fuse_chain(ops) if revision.fuse else unfuse_chain(ops)

    raise PlanError(
        f"apply_to_chain cannot apply {type(revision).__name__} "
        f"(not a structural chain revision)"
    )


def apply_revisions(
    engine,
    revisions: list[Revision],
    input_name: str,
    output_name: str,
    chain: list,
) -> list:
    """Apply ``revisions`` to a *started* engine at a safe boundary.

    Structural revisions rebuild the linear plan over the revised chain
    and migrate the engine onto it
    (:meth:`~repro.core.engine.Engine.migrate_plan`, i.e. PR 3
    snapshot/restore per operator); :class:`SetBatchSize` tunes the
    engine directly; :class:`RetuneShedding` forwards to the attached
    guard.  Returns the revised chain (the caller's structural shadow).
    """
    new_chain = chain
    migrated = False
    for revision in revisions:
        if isinstance(revision, SetBatchSize):
            engine.batch_size = revision.batch_size
        elif isinstance(revision, RetuneShedding):
            if engine.guard is not None:
                engine.guard.retune(revision.low, revision.high)
        elif isinstance(revision, RetuneFeedback):
            if engine.guard is not None:
                engine.guard.apply_retune(revision)
        elif isinstance(revision, SetRepresentation):
            if revision.column_backend is not None:
                engine.column_backend = revision.column_backend
            engine.representation = revision.representation
            if new_chain is not None:
                revised = apply_to_chain(new_chain, revision)
                if [id(op) for op in revised] != [
                    id(op) for op in new_chain
                ]:
                    migrated = True
                new_chain = revised
        else:
            new_chain = apply_to_chain(new_chain, revision)
            migrated = True
    if migrated:
        engine.migrate_plan(linear_plan(input_name, new_chain, output_name))
    return new_chain


def chain_of(plan: Plan) -> list | None:
    """The linear unary chain of ``plan``, or ``None`` (lazy import to
    keep :mod:`repro.adaptive` importable from worker modules)."""
    from repro.gigascope.decompose import linearize_plan

    return linearize_plan(plan)
