"""The adaptive controller: measured rates in, plan revisions out.

This is the feedback loop the tutorial's adaptivity story calls for
(rate-based reoptimization, eddies, load shedding as *runtime*
responses to drifting stream statistics).  The controller consumes the
measurement plane built in PR 4 — per-operator wall-clock rates and
observed selectivities — and emits the revision descriptors of
:mod:`repro.adaptive.revision`; a runner applies them to live engines
at punctuation/epoch boundaries only.

Design points:

* **Windowed statistics.**  The controller differences cumulative
  counters between decision boundaries and reasons about the *last
  window* only.  Lifetime averages would dilute a skew shift — after
  10k records of phase 1, a phase-2 selectivity flip takes another 10k
  records to move the cumulative estimate past any threshold, while the
  windowed estimate sees it at the first boundary.
* **Hysteresis everywhere.**  Re-ordering requires a predicted rate
  gain of at least ``min_gain``; a chain→eddy swap requires observed
  selectivity *churn* above ``churn_threshold``; an eddy→chain freeze
  requires ``stable_windows`` consecutive calm windows.  Measured rates
  are noisy, and a migration per boundary would be thrash, not
  adaptivity.
* **Never-sampled operators stay orderable.**  Windowed metrics are fed
  through :func:`~repro.optimizer.rate_based.rate_operator_from_metrics`
  with a modeled ``fallback_capacity`` (∝ 1/``cost_per_tuple``), so an
  operator the sampling stride skipped — ``timed_invocations == 0`` —
  neither crashes the decision nor ranks as infinitely fast.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.adaptive.revision import (
    Migration,
    ReorderChain,
    RetuneFeedback,
    RetuneShedding,
    Revision,
    SetBatchSize,
    SetRepresentation,
    SwapToChain,
    SwapToEddy,
    reorderable_runs,
)
from repro.core.metrics import OperatorMetrics
from repro.errors import PlanError
from repro.observe.feedback import OperatorStats
from repro.operators.eddy import Eddy, FixedFilterChain
from repro.optimizer.rate_based import (
    best_rate_order,
    chain_output_rate,
    rate_operator_from_metrics,
)

__all__ = ["AdaptiveConfig", "AdaptiveController"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs for the adaptive controller (picklable).

    Attributes
    ----------
    decide_every:
        Punctuation/epoch boundaries between decision points.
    min_window_records:
        Minimum ingress records in a window before deciding on it —
        below this the window keeps accumulating (estimates from a
        handful of records would be noise).
    min_gain:
        Predicted output-rate improvement factor a re-ordering must
        reach before it is applied (the migration hysteresis).
    input_rate:
        Offered load (tuples/sec) assumed by the rate model when
        ranking permutations.  The default ``inf`` ranks orders by
        *sustainable throughput* (the bottleneck analysis of VN02): a
        standing query drains arbitrarily fast producers, so "which
        order keeps up with the most load" is the right question.  A
        finite value models a fixed arrival rate — under it, orders
        whose every operator keeps up are (correctly) tied, and no
        reorder fires.
    prior_selectivity:
        Selectivity assumed for an operator whose window saw no input.
    fallback_cost_scale:
        Modeled capacity of a never-sampled operator is
        ``fallback_cost_scale / cost_per_tuple`` — only its *relative*
        magnitude across operators matters.
    churn_threshold:
        Max-minus-min windowed selectivity over ``churn_history``
        recent windows above which a ``FixedFilterChain`` is swapped
        for an ``Eddy``.
    churn_history:
        Windows of selectivity history kept per filter operator.
    stable_windows:
        Consecutive calm windows after which an ``Eddy`` is frozen back
        into a ``FixedFilterChain`` (in its learned order).
    eddy_epsilon / eddy_decay / eddy_seed:
        Parameters for eddies created by swaps.
    retune_batch:
        Enable measured-cost batch-size retuning.
    target_chunk_seconds:
        Desired wall-clock work per micro-batch; the batch size is set
        to approximately this over the measured per-record cost.
    min_batch / max_batch:
        Clamp for retuned batch sizes.
    shed_target_seconds:
        ``(low, high)`` latency watermarks, in estimated seconds of
        queued work, converted to the overload controller's pressure
        units using the measured per-record cost.  ``None`` disables
        shedding retune.
    select_representation:
        Enable per-chain representation selection: switch a tuple-mode
        engine to columnar execution when enough of the chain
        vectorizes, and revert (once, then stop trying) if the measured
        per-record cost got *worse* after the switch.
    representation_threshold:
        Minimum fraction of chain operators reporting
        ``supports_columns()`` before a columnar switch is proposed.
    representation_fuse:
        Also fuse stateless runs when switching to columnar.
    representation_revert_ratio:
        Revert to tuple mode when the measured columnar cost per record
        exceeds this multiple of the pre-switch cost (the measured-rate
        guard against pathological chains).
    column_backend:
        Backend pinned by emitted :class:`SetRepresentation` revisions
        (``None`` keeps the engine's auto choice).
    max_migrations:
        Cap on *structural* migrations per run (``None`` = unlimited).
    feedback_shedding:
        Enable :class:`RetuneFeedback` decisions: when the attached
        guard reports sustained *untargeted* drops (random coin flips or
        queue overflow) and a measured key skew, install targeted
        downsampling advice on the hottest keys instead — and retract it
        (RESUME) once the untargeted pressure clears.  Requires the
        runner to pass ``overload=guard.feedback_stats()``.
    feedback_trigger_windows / feedback_resume_windows:
        Hysteresis: consecutive pressured decision windows before
        advising, and consecutive calm windows before resuming.
    feedback_keep_rate:
        Keep-rate for the advised hot keys.
    feedback_hot_keys:
        How many of the guard's measured hot keys to target.
    """

    decide_every: int = 1
    min_window_records: int = 64
    min_gain: float = 1.10
    input_rate: float = float("inf")
    prior_selectivity: float = 1.0
    fallback_cost_scale: float = 1e6
    churn_threshold: float = 0.20
    churn_history: int = 4
    stable_windows: int = 3
    eddy_epsilon: float = 0.05
    eddy_decay: float = 0.99
    eddy_seed: int = 17
    retune_batch: bool = False
    target_chunk_seconds: float = 1e-3
    min_batch: int = 16
    max_batch: int = 4096
    shed_target_seconds: tuple[float, float] | None = None
    select_representation: bool = False
    representation_threshold: float = 0.5
    representation_fuse: bool = True
    representation_revert_ratio: float = 1.25
    column_backend: str | None = None
    max_migrations: int | None = None
    feedback_shedding: bool = False
    feedback_trigger_windows: int = 2
    feedback_resume_windows: int = 3
    feedback_keep_rate: float = 0.25
    feedback_hot_keys: int = 2

    def __post_init__(self) -> None:
        if self.decide_every < 1:
            raise PlanError(
                f"decide_every must be >= 1; got {self.decide_every}"
            )
        if self.min_gain < 1.0:
            raise PlanError(f"min_gain must be >= 1.0; got {self.min_gain}")
        if self.stable_windows < 1:
            raise PlanError(
                f"stable_windows must be >= 1; got {self.stable_windows}"
            )
        if self.shed_target_seconds is not None:
            low, high = self.shed_target_seconds
            if high <= low or low < 0:
                raise PlanError(
                    f"shed_target_seconds needs 0 <= low < high; "
                    f"got {self.shed_target_seconds}"
                )
        if not 0.0 < self.representation_threshold <= 1.0:
            raise PlanError(
                f"representation_threshold must be in (0, 1]; "
                f"got {self.representation_threshold}"
            )
        if self.representation_revert_ratio < 1.0:
            raise PlanError(
                f"representation_revert_ratio must be >= 1.0; "
                f"got {self.representation_revert_ratio}"
            )
        if self.feedback_trigger_windows < 1 or self.feedback_resume_windows < 1:
            raise PlanError(
                f"feedback trigger/resume windows must be >= 1; got "
                f"({self.feedback_trigger_windows}, "
                f"{self.feedback_resume_windows})"
            )
        if not 0.0 <= self.feedback_keep_rate <= 1.0:
            raise PlanError(
                f"feedback_keep_rate must be in [0, 1]; "
                f"got {self.feedback_keep_rate}"
            )
        if self.feedback_hot_keys < 1:
            raise PlanError(
                f"feedback_hot_keys must be >= 1; "
                f"got {self.feedback_hot_keys}"
            )


_ZERO = OperatorStats()


class AdaptiveController:
    """Decides plan revisions from windowed measured statistics.

    The controller is execution-agnostic: it never touches an engine.
    A runner (:class:`~repro.adaptive.runner.AdaptiveEngine` or
    :class:`~repro.adaptive.runner.AdaptiveShardedEngine`) feeds it
    cumulative per-operator stats at each punctuation/epoch boundary
    plus the current chain structure, and applies whatever revisions
    come back — at that boundary, never mid-stream.
    """

    def __init__(self, config: AdaptiveConfig | None = None) -> None:
        self.config = config or AdaptiveConfig()
        self.migrations: list[Migration] = []
        self._prev: dict[str, OperatorStats] = {}
        self._boundaries = 0
        self._sel_history: dict[str, deque[float]] = {}
        self._eddy_stable: dict[str, int] = {}
        self._last_batch: int | None = None
        self._last_shed: tuple[float, float] | None = None
        # Representation selection: measured cost before the columnar
        # switch, and a one-way block after a revert (no flip-flopping).
        self._repr_cost_before: float | None = None
        self._repr_blocked = False
        # Feedback shedding hysteresis: consecutive pressured / calm
        # decision windows, whether advice is currently installed, and
        # the previous cumulative untargeted-drop counters to difference
        # against.
        self._fb_pressured = 0
        self._fb_calm = 0
        self._fb_active = False
        self._fb_prev_drops: dict | None = None

    # -- bookkeeping -------------------------------------------------------

    @property
    def structural_migrations(self) -> int:
        return sum(1 for m in self.migrations if m.revision.structural)

    def _log(self, boundary: int, revision: Revision, reason: str) -> None:
        self.migrations.append(Migration(boundary, revision, reason))

    def _may_migrate(self) -> bool:
        cap = self.config.max_migrations
        return cap is None or self.structural_migrations < cap

    # -- the decision point ------------------------------------------------

    def observe(
        self,
        totals: dict[str, OperatorStats],
        chain: list | None,
        batch_size: int | None = None,
        has_guard: bool = False,
        representation: str | None = None,
        overload: dict | None = None,
    ) -> list[Revision]:
        """One boundary's worth of feedback; returns revisions to apply.

        ``totals`` are *cumulative* per-operator stats (summed across
        shards when sharded); the controller differences them against
        the previous decision point internally.  ``chain`` is the
        current linear operator chain, or ``None`` for a non-linear
        plan (no structural revisions are possible, tuning knobs still
        work).
        """
        self._boundaries += 1
        if self._boundaries % self.config.decide_every != 0:
            return []
        window = {
            name: stats.delta(self._prev.get(name, _ZERO))
            for name, stats in totals.items()
        }
        ingress = self._ingress_records(window, chain)
        if ingress < self.config.min_window_records:
            # Too little evidence: leave _prev alone so the window keeps
            # accumulating until it is worth deciding on.
            return []
        self._prev = dict(totals)

        revisions: list[Revision] = []
        if chain is not None:
            revisions.extend(self._decide_reorder(window, chain))
            revisions.extend(self._decide_swaps(window, chain))
        if self.config.retune_batch and batch_size is not None:
            revisions.extend(self._decide_batch(window, chain, batch_size))
        if self.config.shed_target_seconds is not None and has_guard:
            revisions.extend(self._decide_shedding(window, chain))
        if self.config.feedback_shedding and overload is not None:
            revisions.extend(self._decide_feedback(overload))
        if (
            self.config.select_representation
            and chain is not None
            and batch_size is not None
            and representation is not None
        ):
            revisions.extend(
                self._decide_representation(window, chain, representation)
            )
        return revisions

    def _ingress_records(self, window, chain) -> int:
        if chain:
            head = window.get(chain[0].name)
            if head is not None:
                return head.records_in
        return max(
            (stats.records_in for stats in window.values()), default=0
        )

    # -- re-ordering via the rate model -----------------------------------

    def _rate_operator(self, op, stats: OperatorStats):
        cost = max(getattr(op, "cost_per_tuple", 1.0), 1e-12)
        metrics = OperatorMetrics(
            records_in=stats.records_in,
            records_out=stats.records_out,
            wall_time=stats.wall_time,
            timed_invocations=stats.timed_invocations,
        )
        return rate_operator_from_metrics(
            op.name,
            metrics,
            prior_selectivity=self.config.prior_selectivity,
            cost=cost,
            fallback_capacity=self.config.fallback_cost_scale / cost,
        )

    def _decide_reorder(self, window, chain) -> list[Revision]:
        revisions: list[Revision] = []
        for run in reorderable_runs(chain):
            if not self._may_migrate():
                break
            rated = [
                self._rate_operator(op, window.get(op.name, _ZERO))
                for op in run
            ]
            current_rate = chain_output_rate(rated, self.config.input_rate)
            best, best_rate = best_rate_order(rated, self.config.input_rate)
            order = tuple(op.name for op in best)
            if order == tuple(op.name for op in run):
                continue
            if (
                math.isfinite(current_rate)
                and current_rate > 0
                and best_rate < self.config.min_gain * current_rate
            ):
                continue
            revision = ReorderChain(order)
            self._log(
                self._boundaries,
                revision,
                f"rate-based reorder: {best_rate:.1f} t/s vs "
                f"{current_rate:.1f} t/s in current order",
            )
            revisions.append(revision)
        return revisions

    # -- chain <-> eddy swaps on selectivity churn -------------------------

    def _decide_swaps(self, window, chain) -> list[Revision]:
        cfg = self.config
        revisions: list[Revision] = []
        for op in chain:
            if not isinstance(op, (FixedFilterChain, Eddy)):
                continue
            stats = window.get(op.name, _ZERO)
            sel = stats.selectivity
            history = self._sel_history.setdefault(
                op.name, deque(maxlen=cfg.churn_history)
            )
            if not math.isnan(sel):
                history.append(sel)
            if len(history) < 2:
                continue
            churn = max(history) - min(history)
            if isinstance(op, FixedFilterChain):
                if churn > cfg.churn_threshold and self._may_migrate():
                    revision = SwapToEddy(
                        op.name,
                        epsilon=cfg.eddy_epsilon,
                        decay=cfg.eddy_decay,
                        seed=cfg.eddy_seed,
                    )
                    self._log(
                        self._boundaries,
                        revision,
                        f"selectivity churn {churn:.3f} > "
                        f"{cfg.churn_threshold}: adaptive routing",
                    )
                    revisions.append(revision)
                    history.clear()
                    self._eddy_stable.pop(op.name, None)
            else:  # Eddy
                if churn <= cfg.churn_threshold:
                    calm = self._eddy_stable.get(op.name, 0) + 1
                    self._eddy_stable[op.name] = calm
                    if calm >= cfg.stable_windows and self._may_migrate():
                        revision = SwapToChain(op.name, order=None)
                        self._log(
                            self._boundaries,
                            revision,
                            f"selectivity stable for {calm} windows: "
                            f"freezing learned order",
                        )
                        revisions.append(revision)
                        history.clear()
                        self._eddy_stable.pop(op.name, None)
                else:
                    self._eddy_stable[op.name] = 0
        return revisions

    # -- tuning knobs ------------------------------------------------------

    def _record_cost(self, window, chain) -> float:
        """Measured operator seconds per ingress record this window."""
        ingress = self._ingress_records(window, chain)
        if ingress == 0:
            return 0.0
        spent = sum(
            stats.wall_time
            for stats in window.values()
            if stats.timed_invocations > 0
        )
        return spent / ingress

    def _decide_batch(self, window, chain, batch_size) -> list[Revision]:
        cfg = self.config
        cost = self._record_cost(window, chain)
        if cost <= 0.0:
            return []
        want = cfg.target_chunk_seconds / cost
        size = cfg.min_batch
        while size * 2 <= min(want, cfg.max_batch):
            size *= 2
        if size == batch_size:
            return []
        revision = SetBatchSize(size)
        self._log(
            self._boundaries,
            revision,
            f"measured {cost * 1e6:.2f}us/record: batch {batch_size} "
            f"-> {size} for ~{cfg.target_chunk_seconds * 1e3:.1f}ms chunks",
        )
        return [revision]

    # -- representation selection ------------------------------------------

    def _decide_representation(
        self, window, chain, representation: str
    ) -> list[Revision]:
        """Pick tuple vs columnar for the chain from measured rates.

        Switch to columnar when enough of the chain vectorizes
        (capability is what bounds the win: incapable operators fall
        back to the row path and only add conversion overhead), then
        watch the measured per-record cost — if the columnar windows
        come out *more* expensive than the tuple window before the
        switch, revert and stop proposing (one-way hysteresis; the
        evidence says this chain does not vectorize profitably).
        """
        cfg = self.config
        if self._repr_blocked:
            return []
        cost = self._record_cost(window, chain)
        if representation == "columnar":
            before = self._repr_cost_before
            if (
                before is not None
                and before > 0.0
                and cost > cfg.representation_revert_ratio * before
            ):
                self._repr_blocked = True
                revision = SetRepresentation("tuple", fuse=False)
                self._log(
                    self._boundaries,
                    revision,
                    f"columnar window cost {cost * 1e6:.2f}us/record > "
                    f"{cfg.representation_revert_ratio:.2f}x tuple cost "
                    f"{before * 1e6:.2f}us/record: reverting to tuple",
                )
                return [revision]
            return []
        capable = sum(1 for op in chain if op.supports_columns())
        fraction = capable / len(chain)
        if fraction < cfg.representation_threshold:
            return []
        if not self._may_migrate():
            return []
        self._repr_cost_before = cost if cost > 0.0 else None
        revision = SetRepresentation(
            "columnar",
            column_backend=cfg.column_backend,
            fuse=cfg.representation_fuse,
        )
        self._log(
            self._boundaries,
            revision,
            f"{capable}/{len(chain)} chain operators vectorize "
            f"(>= {cfg.representation_threshold:.0%}): columnar execution"
            + (" with fusion" if cfg.representation_fuse else ""),
        )
        return [revision]

    def _decide_shedding(self, window, chain) -> list[Revision]:
        cfg = self.config
        cost = self._record_cost(window, chain)
        if cost <= 0.0:
            return []
        low_s, high_s = cfg.shed_target_seconds
        marks = (low_s / cost, high_s / cost)
        if self._last_shed is not None:
            prev_low, prev_high = self._last_shed
            if abs(marks[1] - prev_high) <= 0.2 * prev_high:
                return []
        self._last_shed = marks
        revision = RetuneShedding(marks[0], marks[1])
        self._log(
            self._boundaries,
            revision,
            f"measured {cost * 1e6:.2f}us/record: latency targets "
            f"({low_s}s, {high_s}s) = backlog watermarks "
            f"({marks[0]:.0f}, {marks[1]:.0f}) records",
        )
        return [revision]

    # -- targeted feedback shedding ----------------------------------------

    def _decide_feedback(self, overload: dict) -> list[Revision]:
        """Hysteresis over the guard's *untargeted* drop counters.

        ``overload`` is ``guard.feedback_stats()``.  Pressure is defined
        as new random/queue drops this window — drops the guard was
        forced to make blindly.  Sustained pressure plus a measured key
        skew yields a :class:`RetuneFeedback` installing targeted
        downsampling on the hottest keys; once the untargeted drops stop
        (the advice absorbed the load, or the burst passed), sustained
        calm retracts everything with ``resume=True``.  Feedback-advised
        drops deliberately do NOT count as pressure, otherwise active
        advice would keep itself alive forever.
        """
        cfg = self.config
        drops = overload.get("drops", {})
        untargeted = drops.get("random", 0) + drops.get("queue", 0)
        prev = self._fb_prev_drops or {}
        delta = untargeted - (prev.get("random", 0) + prev.get("queue", 0))
        self._fb_prev_drops = dict(drops)
        key_attr = overload.get("key_attr")
        hot = overload.get("hot") or []
        if delta > 0:
            self._fb_pressured += 1
            self._fb_calm = 0
            if (
                self._fb_pressured >= cfg.feedback_trigger_windows
                and not self._fb_active
                and key_attr
                and hot
            ):
                keys = tuple(k for k, _ in hot[: cfg.feedback_hot_keys])
                revision = RetuneFeedback(
                    attr=key_attr,
                    keys=keys,
                    rate=cfg.feedback_keep_rate,
                )
                self._fb_active = True
                self._log(
                    self._boundaries,
                    revision,
                    f"{delta} untargeted drops this window after "
                    f"{self._fb_pressured} pressured windows: downsample "
                    f"{key_attr}∈{keys!r} to keep-rate "
                    f"{cfg.feedback_keep_rate}",
                )
                return [revision]
        else:
            self._fb_pressured = 0
            if self._fb_active:
                self._fb_calm += 1
                if self._fb_calm >= cfg.feedback_resume_windows:
                    self._fb_active = False
                    self._fb_calm = 0
                    revision = RetuneFeedback(resume=True)
                    self._log(
                        self._boundaries,
                        revision,
                        "no untargeted drops for "
                        f"{cfg.feedback_resume_windows} windows: "
                        "retracting feedback advice",
                    )
                    return [revision]
        return []
