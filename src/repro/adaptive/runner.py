"""Adaptive execution drivers: engines that re-plan while running.

Two drivers pair a controller with the existing execution machinery:

* :class:`AdaptiveEngine` wraps one push
  :class:`~repro.core.engine.Engine`.  It feeds the merged input stream
  exactly as ``Engine.run`` would — same chunking, same
  punctuation-closes-chunk discipline — but counts punctuations and, at
  every ``decide_every``-th boundary, hands the controller a cumulative
  stats snapshot and applies whatever revisions come back through
  :func:`~repro.adaptive.revision.apply_revisions` (structural ones via
  :meth:`~repro.core.engine.Engine.migrate_plan`).  Works for *every*
  plan: non-linear plans simply get no structural revisions, only
  tuning knobs.
* :class:`AdaptiveShardedEngine` wraps a
  :class:`~repro.parallel.sharded.ShardedEngine`.  It reuses the
  supervisor's epoch-lockstep workers (inline/thread/process) and their
  new ``stats``/``revise`` commands: after each epoch the coordinator
  sums per-shard stats (:func:`~repro.observe.feedback.merge_stats`),
  decides *centrally*, and broadcasts the identical revision list to
  every worker — so all shards migrate at the same epoch boundary and
  the combine discipline (which never involves the revised filter
  prefix) is untouched.

Both drivers produce outputs bit-identical to their static
counterparts: every revision is output-invariant by construction (see
:mod:`repro.adaptive.revision`), and none is ever applied mid-chunk.
The differential suite in ``tests/adaptive`` certifies this across the
example plan grid and all three backends.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.adaptive.controller import AdaptiveConfig, AdaptiveController
from repro.adaptive.revision import apply_revisions, chain_of
from repro.core.engine import Engine, RunResult, resolve_sources
from repro.core.graph import Plan
from repro.core.metrics import MetricsRegistry
from repro.core.stream import Source, merge_sources
from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError
from repro.observe.feedback import collect_stats, merge_stats
from repro.parallel.combine import merge_metrics
from repro.parallel.partition import PartitionSpec, split_epochs
from repro.parallel.sharded import ShardedEngine, _ShardRun
from repro.resilience.supervisor import (
    _fresh_ops,
    _InlineWorker,
    _ProcessWorker,
    _ShardCore,
    _ThreadWorker,
)

__all__ = ["AdaptiveEngine", "AdaptiveShardedEngine", "run_adaptive"]

Element = Record | Punctuation


class AdaptiveEngine:
    """One push engine plus a controller re-planning it at punctuations.

    Parameters
    ----------
    plan:
        Any plan.  Structural revisions (filter re-ordering,
        chain/eddy swaps) require a single-input linear chain; other
        plans still get batch-size and shedding retunes.
    controller:
        An :class:`~repro.adaptive.controller.AdaptiveController`;
        built from ``config`` (or defaults) when omitted.
    batch_size, guard:
        Forwarded to the wrapped :class:`~repro.core.engine.Engine`.
    observe:
        Defaults to ``True`` — the controller is blind without measured
        rates.  Pass an int stride or
        :class:`~repro.observe.ObserveConfig` to tune overhead, or
        ``None`` to run blind (no revisions will ever fire).
    """

    def __init__(
        self,
        plan: Plan,
        controller: AdaptiveController | None = None,
        config: AdaptiveConfig | None = None,
        batch_size: int | str | None = "auto",
        guard=None,
        observe=True,
        representation: str = "tuple",
        column_backend: str | None = None,
        recorder=None,
    ) -> None:
        if controller is not None and config is not None:
            raise PlanError(
                "pass either a controller or a config, not both"
            )
        self.engine = Engine(
            plan,
            batch_size=batch_size,
            guard=guard,
            observe=observe,
            representation=representation,
            column_backend=column_backend,
            recorder=recorder,
        )
        self._recorder = recorder
        self.controller = controller or AdaptiveController(config)
        self._chain = chain_of(plan)
        if self._chain is not None:
            self._input_name = next(iter(plan.inputs))
            self._output_name = next(iter(plan.outputs))
        else:
            self._input_name = None
            self._output_name = None

    @property
    def migrations(self):
        """The controller's migration log (applied revisions, in order)."""
        return self.controller.migrations

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> RunResult:
        """Execute over ``sources``, adapting at punctuation boundaries."""
        engine = self.engine
        by_name = resolve_sources(engine.plan, sources)
        engine.start()
        if len(by_name) == 1:
            only = next(iter(by_name.values()))
            merged = ((only.name, el) for el in only.events())
        else:
            merged = merge_sources(*by_name.values())
        pending: list[Element] = []
        pending_input: str | None = None
        for input_name, element in merged:
            size = engine.batch_size
            if size is None:
                engine.feed(input_name, element)
                if isinstance(element, Punctuation):
                    self._boundary()
                continue
            if pending and (
                input_name != pending_input or len(pending) >= size
            ):
                engine.feed_batch(pending_input, pending)
                pending = []
            pending_input = input_name
            pending.append(element)
            if isinstance(element, Punctuation):
                # Close the chunk at the punctuation — flushes keep
                # their tuple-at-a-time positions — then adapt: the
                # boundary falls *between* chunks, never inside one.
                engine.feed_batch(pending_input, pending)
                pending = []
                self._boundary()
        if pending:
            engine.feed_batch(pending_input, pending)
        return engine.finish()

    def _boundary(self) -> None:
        engine = self.engine
        guard = engine.guard
        overload = (
            guard.feedback_stats()
            if guard is not None and hasattr(guard, "feedback_stats")
            else None
        )
        revisions = self.controller.observe(
            collect_stats(engine.metrics),
            self._chain,
            batch_size=engine.batch_size,
            has_guard=guard is not None,
            representation=engine.representation,
            overload=overload,
        )
        if revisions:
            self._chain = apply_revisions(
                engine,
                revisions,
                self._input_name,
                self._output_name,
                self._chain,
            )
            if self._recorder is not None:
                # The journal's epoch for this boundary was already
                # closed (inside feed/feed_batch); attaching here marks
                # the revisions as applied *at* that boundary, and the
                # deferred checkpoint that follows captures the migrated
                # plan — exactly what a replay must reconstruct.
                self._recorder.on_revisions(revisions)


class AdaptiveShardedEngine:
    """Epoch-lockstep sharded execution with central re-planning.

    The wrapped :class:`~repro.parallel.sharded.ShardedEngine` supplies
    the strategy analysis, partitioning, and combine discipline; this
    driver replaces its one-shot shard execution with the supervisor's
    per-epoch worker protocol so there *is* a coordinator moment at
    every epoch boundary to gather stats and broadcast revisions.

    Plans whose strategy resolves to ``single`` delegate to an
    :class:`AdaptiveEngine` (same controller), so the adaptive layer
    never silently drops to static execution.
    """

    def __init__(
        self,
        plan: Plan,
        partition: PartitionSpec,
        controller: AdaptiveController | None = None,
        config: AdaptiveConfig | None = None,
        batch_size: int | str | None = "auto",
        backend: str = "thread",
        observe=True,
        representation: str = "tuple",
        column_backend: str | None = None,
    ) -> None:
        if controller is not None and config is not None:
            raise PlanError(
                "pass either a controller or a config, not both"
            )
        self.engine = ShardedEngine(
            plan,
            partition,
            batch_size=batch_size,
            backend=backend,
            observe=observe,
            representation=representation,
            column_backend=column_backend,
        )
        self.controller = controller or AdaptiveController(config)
        self._observe = observe

    @property
    def strategy(self) -> str:
        return self.engine.strategy

    @property
    def migrations(self):
        return self.controller.migrations

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> RunResult:
        engine = self.engine
        st = engine._strategy
        if st.name == "single":
            return AdaptiveEngine(
                engine.plan,
                controller=self.controller,
                batch_size=engine.batch_size,
                observe=self._observe,
                representation=engine.representation,
                column_backend=engine.column_backend,
            ).run(sources)
        by_name = resolve_sources(engine.plan, sources)
        elements = list(by_name[st.input_name].events())
        epochs = split_epochs(elements, st.routing)
        n = st.routing.n_shards
        workers = [self._make_worker(st, shard) for shard in range(n)]
        # Structural shadow: one more copy of the shard chain, revised in
        # lockstep with the workers so the controller always sees the
        # current chain shape.  Decisions are name-based, so the shadow
        # standing in for N distinct worker instances is sound.
        shadow = _fresh_ops(st)
        batch_size = engine.batch_size
        if batch_size == "auto":
            batch_size = Engine.DEFAULT_BATCH_SIZE
        representation = engine.representation
        accepted: list[list[list[Element]]] = [[] for _ in range(n)]
        progress: list[list[float]] = [[] for _ in range(n)]
        try:
            for epoch in epochs:
                for shard, worker in enumerate(workers):
                    worker.start_epoch(
                        epoch.batches[shard], epoch.punct, None
                    )
                for shard in range(n):
                    produced, prog = workers[shard].join_epoch(None)
                    accepted[shard].append(produced)
                    progress[shard].append(prog)
                # Cross-shard feedback: advice any shard's operators
                # pushed to their local ingress this epoch is broadcast
                # so every shard sheds the same slice (a hot key is hot
                # wherever the partitioner routed it; installation is
                # idempotent on the originating shard).
                exchanged: list = []
                for worker in workers:
                    exchanged.extend(worker.take_feedback())
                if exchanged:
                    for worker in workers:
                        worker.apply_feedback(exchanged)
                # Epoch boundary: every worker is quiescent.  Decide
                # centrally on the summed stats, broadcast identically.
                totals = merge_stats([w.stats() for w in workers])
                revisions = self.controller.observe(
                    totals,
                    shadow,
                    batch_size=batch_size,
                    has_guard=False,
                    representation=representation,
                )
                if revisions:
                    for worker in workers:
                        worker.revise(revisions)
                    shadow = self._apply_to_shadow(shadow, revisions)
                    for revision in revisions:
                        if hasattr(revision, "representation"):
                            representation = revision.representation
                        elif not revision.structural and hasattr(
                            revision, "batch_size"
                        ):
                            batch_size = revision.batch_size
            runs: list[_ShardRun] = []
            for shard, worker in enumerate(workers):
                flush, _final_prog, metrics = worker.finish()
                runs.append(
                    _ShardRun(
                        accepted[shard], flush, progress[shard], metrics
                    )
                )
        finally:
            for worker in workers:
                worker.close(abandon=True)
        combined = engine._combine(epochs, runs)
        metrics = merge_metrics(run.metrics for run in runs)
        self._publish(metrics)
        return RunResult(
            outputs={st.output_name: combined}, metrics=metrics
        )

    def _apply_to_shadow(self, shadow: list, revisions) -> list:
        from repro.adaptive.revision import apply_to_chain

        for revision in revisions:
            if revision.structural:
                shadow = apply_to_chain(shadow, revision)
        return shadow

    def _make_worker(self, st, shard: int):
        engine = self.engine
        ops = _fresh_ops(st)
        observe = engine._shard_observe(shard)
        if engine.backend == "process":
            return _ProcessWorker(
                ops,
                st.input_name,
                st.output_name,
                engine.batch_size,
                observe,
                engine.representation,
                engine.column_backend,
            )
        core = _ShardCore(
            ops,
            st.input_name,
            st.output_name,
            engine.batch_size,
            observe,
            engine.representation,
            engine.column_backend,
        )
        if engine.backend == "thread":
            return _ThreadWorker(core)
        return _InlineWorker(core)

    def _publish(self, metrics: MetricsRegistry) -> None:
        controller = self.controller
        metrics.incr("adaptive.migrations", len(controller.migrations))
        metrics.incr(
            "adaptive.structural_migrations",
            controller.structural_migrations,
        )


def run_adaptive(
    plan: Plan,
    sources: Sequence[Source] | Mapping[str, Source],
    config: AdaptiveConfig | None = None,
    partition: PartitionSpec | None = None,
    batch_size: int | str | None = "auto",
    backend: str = "thread",
    observe=True,
    guard=None,
    representation: str = "tuple",
    column_backend: str | None = None,
) -> tuple[RunResult, list]:
    """One-shot convenience: run ``plan`` adaptively, return
    ``(result, migration log)``.

    With a ``partition`` the sharded driver is used (``guard`` is a
    single-engine feature and must be ``None`` then).
    """
    if partition is not None:
        if guard is not None:
            raise PlanError(
                "overload guards attach to single engines; sharded "
                "adaptive execution does not accept one"
            )
        sharded = AdaptiveShardedEngine(
            plan,
            partition,
            config=config,
            batch_size=batch_size,
            backend=backend,
            observe=observe,
            representation=representation,
            column_backend=column_backend,
        )
        return sharded.run(sources), sharded.migrations
    adaptive = AdaptiveEngine(
        plan,
        config=config,
        batch_size=batch_size,
        guard=guard,
        observe=observe,
        representation=representation,
        column_backend=column_backend,
    )
    return adaptive.run(sources), adaptive.migrations
