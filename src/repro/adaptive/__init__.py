"""Adaptive runtime re-optimization (M6).

The tutorial's adaptivity arc — rate-based plan selection (VN02),
eddies (AH00), feedback load shedding — treated each technique as a
design-time choice.  This package closes the loop at *runtime*: an
:class:`AdaptiveController` watches the measured rates, selectivities,
and costs the observe layer collects, and migrates the running plan at
punctuation/epoch boundaries — re-ordering commutative filters,
swapping a fixed filter chain for an eddy (and freezing it back),
retuning the micro-batch size and overload watermarks — without losing
or duplicating a single tuple (the PR 3 snapshot/restore machinery
carries operator state across each migration).

Entry points: :func:`run_adaptive` for one-shot runs,
:class:`AdaptiveEngine` / :class:`AdaptiveShardedEngine` for driver
objects, :class:`AdaptiveConfig` for the decision knobs.
"""

from repro.adaptive.controller import AdaptiveConfig, AdaptiveController
from repro.adaptive.revision import (
    Migration,
    RePlace,
    ReorderChain,
    ReorderFilters,
    RetuneShedding,
    Revision,
    SetBatchSize,
    SwapToChain,
    SwapToEddy,
    apply_revisions,
    apply_to_chain,
    reorderable_runs,
)
from repro.adaptive.runner import (
    AdaptiveEngine,
    AdaptiveShardedEngine,
    run_adaptive,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveEngine",
    "AdaptiveShardedEngine",
    "Migration",
    "RePlace",
    "ReorderChain",
    "ReorderFilters",
    "RetuneShedding",
    "Revision",
    "SetBatchSize",
    "SwapToChain",
    "SwapToEddy",
    "apply_revisions",
    "apply_to_chain",
    "reorderable_runs",
    "run_adaptive",
]
