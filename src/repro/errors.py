"""Exception hierarchy for the repro data-stream management system.

Every error raised by the library derives from :class:`StreamError`, so
applications can catch a single base class.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class StreamError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(StreamError):
    """A tuple, expression, or query referenced the schema incorrectly."""


class OrderingError(StreamError):
    """A stream element violated the declared ordering attribute."""


class WindowError(StreamError):
    """An invalid window specification or window-state transition."""


class PlanError(StreamError):
    """An operator graph is malformed (cycles, dangling ports, arity)."""


class QueryError(StreamError):
    """Base class for errors in the CQL/GSQL front end."""


class LexError(QueryError):
    """The query text contained a character sequence that is not a token."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The token stream did not match the CQL grammar."""

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" (at offset {position})" if position >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


class SemanticError(QueryError):
    """The query parsed but is not well-typed or not executable."""


class UnboundedMemoryError(SemanticError):
    """Static analysis proved the query cannot run in bounded memory.

    Raised by the ABB+02 analysis (slide 35 of the tutorial) when a query
    that was requested to run in bounded memory provably cannot.
    """


class ShardError(StreamError):
    """A shard worker of a partition-parallel run failed or timed out.

    Attributes
    ----------
    shard:
        Index of the failed shard (``-1`` when unknown).
    strategy:
        The sharded-execution strategy in effect (``local``,
        ``partial``, ``exchange``, or ``single``).
    worker_traceback:
        Formatted traceback from the worker, when one crossed the
        process/thread boundary (``None`` for timeouts).
    """

    def __init__(
        self,
        message: str,
        shard: int = -1,
        strategy: str = "",
        worker_traceback: str | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.strategy = strategy
        self.worker_traceback = worker_traceback


class SchedulingError(StreamError):
    """A scheduler was configured or invoked inconsistently."""


class ReplayError(StreamError):
    """A record log or time-machine replay was misused.

    Raised when a requested epoch lies outside the retained range of a
    :class:`~repro.replay.RecordLog`, when a log cannot seed the engine
    it is replayed on (plan/config mismatch), or when log segments are
    combined inconsistently."""


class SheddingError(StreamError):
    """A load-shedding policy was configured inconsistently."""


class SynopsisError(StreamError):
    """A synopsis (sketch/sample/histogram) was misused or misconfigured."""


class StorageError(StreamError):
    """The Hancock signature store or the mini-DBMS detected corruption."""


class ServiceError(StreamError):
    """The standing-query service was misused (unknown query, bad feed)."""


class AdmissionError(ServiceError):
    """A query registration was refused by service admission control."""


class ColumnError(StreamError):
    """A columnar batch or backend was misused or misconfigured."""


class ColumnUnavailable(ColumnError):
    """A vectorized kernel cannot derive the column it needs.

    Raised by :meth:`repro.columnar.ColumnBatch.column` when a field is
    missing from some rows (a null mask exists) or absent entirely.
    Columnar kernels catch it and fall back to their row-at-a-time
    ``process_batch`` over ``to_rows()``, which reproduces the exact
    tuple-path behaviour (including any :class:`SchemaError`)."""
