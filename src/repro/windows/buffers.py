"""Runtime window state.

A *buffer* materializes a window's current contents.  Join operators and
windowed aggregation keep one buffer per input (or per group/partition)
and rely on two operations: :meth:`WindowBuffer.insert` and
:meth:`WindowBuffer.expire`, the invalidation step of slide 32 ("expired
tuples are invalidated").
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.core.tuples import Record
from repro.errors import WindowError
from repro.windows.spec import (
    LandmarkWindow,
    NowWindow,
    PartitionedWindow,
    RowWindow,
    TimeWindow,
    UnboundedWindow,
    WindowSpec,
)

__all__ = [
    "WindowBuffer",
    "SlidingTimeBuffer",
    "RowBuffer",
    "PartitionedBuffer",
    "LandmarkBuffer",
    "NowBuffer",
    "UnboundedBuffer",
    "make_buffer",
]


class WindowBuffer:
    """Base class for window contents."""

    def insert(self, record: Record) -> None:
        raise NotImplementedError

    def expire(self, ref_ts: float) -> list[Record]:
        """Remove and return tuples that left the window as of ``ref_ts``."""
        return []

    def contents(self) -> Iterator[Record]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Record]:
        return self.contents()

    def memory(self) -> float:
        return float(len(self))

    def clear(self) -> None:
        raise NotImplementedError


class SlidingTimeBuffer(WindowBuffer):
    """Tuples with ``ts > ref_ts - range_`` (inclusive lower bound excluded).

    A record whose timestamp equals exactly ``ref_ts - range_`` is
    expired: the window is the half-open interval ``(ref-T, ref]``.
    """

    def __init__(self, range_: float) -> None:
        if range_ < 0:
            raise WindowError(f"range must be >= 0; got {range_}")
        self.range_ = range_
        self._items: deque[Record] = deque()

    def insert(self, record: Record) -> None:
        self._items.append(record)

    def expire(self, ref_ts: float) -> list[Record]:
        horizon = ref_ts - self.range_
        evicted: list[Record] = []
        while self._items and self._items[0].ts <= horizon:
            evicted.append(self._items.popleft())
        return evicted

    def contents(self) -> Iterator[Record]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()


class RowBuffer(WindowBuffer):
    """The most recent ``rows`` tuples."""

    def __init__(self, rows: int) -> None:
        if rows < 1:
            raise WindowError(f"rows must be >= 1; got {rows}")
        self.rows = rows
        self._items: deque[Record] = deque()

    def insert(self, record: Record) -> None:
        self._items.append(record)

    def expire(self, ref_ts: float) -> list[Record]:
        evicted: list[Record] = []
        while len(self._items) > self.rows:
            evicted.append(self._items.popleft())
        return evicted

    def contents(self) -> Iterator[Record]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()


class PartitionedBuffer(WindowBuffer):
    """Last ``rows`` tuples *per key* (CQL PARTITION BY)."""

    def __init__(self, keys: Iterable[str], rows: int) -> None:
        if rows < 1:
            raise WindowError(f"rows must be >= 1; got {rows}")
        self.keys = tuple(keys)
        self.rows = rows
        self._parts: dict[tuple, deque[Record]] = {}

    def insert(self, record: Record) -> None:
        key = record.key(self.keys)
        self._parts.setdefault(key, deque()).append(record)

    def expire(self, ref_ts: float) -> list[Record]:
        evicted: list[Record] = []
        for part in self._parts.values():
            while len(part) > self.rows:
                evicted.append(part.popleft())
        return evicted

    def contents(self) -> Iterator[Record]:
        for part in self._parts.values():
            yield from part

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts.values())

    def partition(self, key: tuple) -> list[Record]:
        return list(self._parts.get(key, ()))

    def clear(self) -> None:
        self._parts.clear()


class LandmarkBuffer(WindowBuffer):
    """Agglomerative window: everything since ``start`` (slide 27)."""

    def __init__(self, start: float = 0.0) -> None:
        self.start = start
        self._items: list[Record] = []

    def insert(self, record: Record) -> None:
        if record.ts >= self.start:
            self._items.append(record)

    def contents(self) -> Iterator[Record]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()


class NowBuffer(WindowBuffer):
    """Only tuples carrying the latest timestamp."""

    def __init__(self) -> None:
        self._items: list[Record] = []
        self._ts = float("-inf")

    def insert(self, record: Record) -> None:
        if record.ts > self._ts:
            self._items = []
            self._ts = record.ts
        self._items.append(record)

    def expire(self, ref_ts: float) -> list[Record]:
        if ref_ts > self._ts:
            evicted = self._items
            self._items = []
            self._ts = ref_ts
            return evicted
        return []

    def contents(self) -> Iterator[Record]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()
        self._ts = float("-inf")


class UnboundedBuffer(WindowBuffer):
    """The whole stream prefix (CQL [UNBOUNDED])."""

    def __init__(self) -> None:
        self._items: list[Record] = []

    def insert(self, record: Record) -> None:
        self._items.append(record)

    def contents(self) -> Iterator[Record]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()


def make_buffer(spec: WindowSpec) -> WindowBuffer:
    """Instantiate the runtime buffer implementing ``spec``.

    Tumbling and punctuation windows are not buffer-shaped — they are
    handled natively by the aggregation/join operators — so asking for a
    buffer for them raises :class:`WindowError`.
    """
    if isinstance(spec, TimeWindow):
        return SlidingTimeBuffer(spec.range_)
    if isinstance(spec, RowWindow):
        return RowBuffer(spec.rows)
    if isinstance(spec, PartitionedWindow):
        return PartitionedBuffer(spec.keys, spec.rows)
    if isinstance(spec, LandmarkWindow):
        return LandmarkBuffer(spec.start)
    if isinstance(spec, NowWindow):
        return NowBuffer()
    if isinstance(spec, UnboundedWindow):
        return UnboundedBuffer()
    raise WindowError(f"no buffer form for window spec {spec.describe()}")
