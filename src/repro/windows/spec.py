"""Window specifications (slides 26-28).

Windows extract finite relations from unbounded streams.  The tutorial
catalogues:

* **ordering-attribute windows** (slide 27) — based on an attribute such
  as time: *sliding* (:class:`TimeWindow` with ``slide=None``),
  *shifting/tumbling* (:class:`TumblingWindow`, the GSQL ``time/60``
  idiom), and *agglomerative/landmark* (:class:`LandmarkWindow`);
* **tuple-count windows** (:class:`RowWindow`, CQL ``[ROWS n]``), with a
  per-key variant (:class:`PartitionedWindow`, ``[PARTITION BY ...]``);
* **punctuation-based windows** (:class:`PunctuationWindow`, slide 28) —
  variable extent delimited by application-inserted markers;
* degenerate CQL windows :class:`NowWindow` and :class:`UnboundedWindow`.

Specs are pure descriptions; runtime state lives in
:mod:`repro.windows.buffers`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WindowError

__all__ = [
    "WindowSpec",
    "TimeWindow",
    "TumblingWindow",
    "LandmarkWindow",
    "RowWindow",
    "PartitionedWindow",
    "PunctuationWindow",
    "NowWindow",
    "UnboundedWindow",
]


@dataclass(frozen=True)
class WindowSpec:
    """Base class for window descriptions."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class TimeWindow(WindowSpec):
    """Sliding window over the ordering attribute: tuples with
    ``ts in (ref - range_, ref]`` where ``ref`` is the latest timestamp.

    CQL ``[RANGE range_]``.
    """

    range_: float

    def __post_init__(self) -> None:
        if self.range_ < 0:
            raise WindowError(f"window range must be >= 0; got {self.range_}")

    def describe(self) -> str:
        return f"RANGE {self.range_}"


@dataclass(frozen=True)
class TumblingWindow(WindowSpec):
    """Shifting window (slide 27): fixed consecutive buckets of ``width``.

    The GSQL grouping expression ``time/60 as tb`` (slide 37) denotes a
    tumbling window of width 60 over ``time``.
    """

    width: float
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise WindowError(f"bucket width must be > 0; got {self.width}")

    def bucket_of(self, ts: float) -> int:
        return int((ts - self.origin) // self.width)

    def bucket_start(self, bucket: int) -> float:
        return self.origin + bucket * self.width

    def describe(self) -> str:
        return f"TUMBLE {self.width}"


@dataclass(frozen=True)
class LandmarkWindow(WindowSpec):
    """Agglomerative window (slide 27): from ``start`` to current time."""

    start: float = 0.0

    def describe(self) -> str:
        return f"LANDMARK from {self.start}"


@dataclass(frozen=True)
class RowWindow(WindowSpec):
    """The last ``rows`` tuples.  CQL ``[ROWS rows]``."""

    rows: int

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise WindowError(f"row window needs rows >= 1; got {self.rows}")

    def describe(self) -> str:
        return f"ROWS {self.rows}"


@dataclass(frozen=True)
class PartitionedWindow(WindowSpec):
    """Per-key row window.  CQL ``[PARTITION BY keys ROWS rows]``."""

    keys: tuple[str, ...]
    rows: int

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise WindowError(f"row window needs rows >= 1; got {self.rows}")
        if not self.keys:
            raise WindowError("partitioned window needs at least one key")

    def describe(self) -> str:
        return f"PARTITION BY {', '.join(self.keys)} ROWS {self.rows}"


@dataclass(frozen=True)
class PunctuationWindow(WindowSpec):
    """Window delimited by punctuations (slide 28, TMSF03).

    The window over attribute set ``attrs`` closes for all records a
    punctuation covers; extent is data-dependent (e.g. one auction's
    bids close when its end-of-auction punctuation arrives).
    """

    attrs: tuple[str, ...]

    def describe(self) -> str:
        return f"PUNCTUATED ON {', '.join(self.attrs)}"


@dataclass(frozen=True)
class NowWindow(WindowSpec):
    """Only tuples with the current timestamp.  CQL ``[NOW]``."""

    def describe(self) -> str:
        return "NOW"


@dataclass(frozen=True)
class UnboundedWindow(WindowSpec):
    """The entire stream prefix.  CQL ``[UNBOUNDED]``."""

    def describe(self) -> str:
        return "UNBOUNDED"
