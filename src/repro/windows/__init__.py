"""Window specifications and runtime buffers (slides 26-28)."""

from repro.windows.buffers import (
    LandmarkBuffer,
    NowBuffer,
    PartitionedBuffer,
    RowBuffer,
    SlidingTimeBuffer,
    UnboundedBuffer,
    WindowBuffer,
    make_buffer,
)
from repro.windows.spec import (
    LandmarkWindow,
    NowWindow,
    PartitionedWindow,
    PunctuationWindow,
    RowWindow,
    TimeWindow,
    TumblingWindow,
    UnboundedWindow,
    WindowSpec,
)

__all__ = [
    "LandmarkBuffer",
    "NowBuffer",
    "PartitionedBuffer",
    "RowBuffer",
    "SlidingTimeBuffer",
    "UnboundedBuffer",
    "WindowBuffer",
    "make_buffer",
    "LandmarkWindow",
    "NowWindow",
    "PartitionedWindow",
    "PunctuationWindow",
    "RowWindow",
    "TimeWindow",
    "TumblingWindow",
    "UnboundedWindow",
    "WindowSpec",
]
