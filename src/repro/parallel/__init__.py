"""Shared-nothing partition-parallel execution (PR 3 / milestone M3).

Public surface:

* :class:`~repro.parallel.partition.PartitionSpec` and its concrete
  policies :class:`~repro.parallel.partition.HashPartition` and
  :class:`~repro.parallel.partition.RoundRobinPartition`;
* :class:`~repro.parallel.sharded.ShardedEngine` — one micro-batched
  engine per shard plus a deterministic coordinator merge, with
  Gigascope-style partial-aggregate push-down;
* :func:`~repro.parallel.sharded.run_sharded` — one-shot convenience.
"""

from repro.parallel.partition import (
    Epoch,
    HashPartition,
    PartitionSpec,
    RoundRobinPartition,
    split_epochs,
    stable_hash,
)
from repro.parallel.sharded import ShardedEngine, run_sharded

__all__ = [
    "PartitionSpec",
    "HashPartition",
    "RoundRobinPartition",
    "Epoch",
    "split_epochs",
    "stable_hash",
    "ShardedEngine",
    "run_sharded",
]
