"""Shared-nothing partition-parallel execution.

:class:`ShardedEngine` splits one input stream across N shards, runs an
independent micro-batched :class:`~repro.core.engine.Engine` per shard,
and merges shard outputs into the *exact* element sequence — records and
punctuation positions — a single engine would have produced.

The planner picks one of four strategies (stored in
:attr:`ShardedEngine.strategy`):

``local``
    Every stateful operator's key is colocated under the partition
    (e.g. hash-partitioning by ``origin`` with ``GROUP BY origin``, the
    Gigascope condition "group key ⊇ partition key"), or the chain has
    no cross-record state at all.  Each shard runs the *full* plan and
    the coordinator only re-interleaves outputs deterministically.

``partial``
    The terminal aggregate is decomposable: each shard runs the
    stateless prefix plus a shard-local partial aggregate
    (:class:`~repro.operators.partial_aggregate.GroupPartial` — the
    LFTA role), shipping serialized aggregate states; the coordinator
    merges them with :class:`~repro.parallel.combine.GroupMerger` /
    :class:`~repro.parallel.combine.BucketMerger` (the HFTA role).
    This is the slide-37 two-level split applied across CPU cores
    instead of across the NIC/host boundary.

``exchange``
    The terminal aggregate is *not* decomposable (order-sensitive
    ``first``/``last`` states cannot be merged across shards), but the
    coordinator can re-partition the input by the aggregate's group key
    so each group's records land on one shard in arrival order — then
    runs the full plan per shard as in ``local``.

``single``
    Fallback for plans the planner cannot prove exact under sharding
    (joins, unions, multi-output plans, sliding-window aggregation,
    mid-chain aggregates): one ordinary engine runs the plan.

Epochs and exactness
--------------------

Punctuations are broadcast to every shard and delimit *epochs*: the
coordinator emits, per epoch, the merged shard records followed by
exactly one copy of the punctuation.  Exactness of the merge relies on
sources honouring punctuation semantics (a punctuation's bound covers
everything before it — the watermark discipline the test suites use);
a source that emits records *behind* an already-announced bound is
outside the contract for single engines too.

Workers report per-epoch progress (the terminal operator's watermark or
max timestamp) because some emission decisions depend on *global*
progress no shard observes locally: a tumbling bucket closes when the
global watermark passes its end, and blocking-aggregate flush rows are
stamped with the global max timestamp.

Backends
--------

``backend="thread"`` (default) runs shard workers on a thread pool —
in-process, zero setup cost, but GIL-serialized for pure-Python
operator work.  ``backend="process"`` forks one worker per shard
(``fork`` start method: plans hold lambdas, which survive inheritance
but not pickling) and ships only shard *outputs* back through a pipe —
with the ``partial`` strategy those are a handful of aggregate-state
rows, which is what makes process sharding profitable.
``backend="inline"`` runs shards sequentially for debugging.
"""

from __future__ import annotations

import copy
import multiprocessing
import traceback
import warnings
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping, Sequence

from repro.aggregates.functions import First, Last
from repro.core.engine import Engine, RunResult, resolve_sources
from repro.core.graph import Plan, linear_plan
from repro.core.metrics import MetricsRegistry
from repro.core.stream import Source
from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError, ShardError
from repro.feedback.probe import BackpressureProbe
from repro.gigascope.decompose import (
    AggregateSplit,
    linearize_plan,
    split_chain_aggregate,
)
from repro.observe.observer import ObserveConfig
from repro.observe.trace import Tracer
from repro.operators.aggregate import Aggregate, AttrGetter, WindowedAggregate
from repro.operators.eddy import Eddy, FixedFilterChain
from repro.operators.map import Extend, MapOp, Rename
from repro.operators.partial_aggregate import GroupPartial
from repro.operators.project import DistinctProject, Project
from repro.operators.select import Select
from repro.parallel.combine import (
    BucketMerger,
    DistinctCombiner,
    GroupMerger,
    bucket_sort_key,
    group_sort_key,
    merge_arrival,
    merge_metrics,
)
from repro.parallel.partition import (
    Epoch,
    HashPartition,
    PartitionSpec,
    _ExtractorPartition,
    split_epochs,
)
from repro.windows.spec import PunctuationWindow, TumblingWindow

__all__ = ["ShardedEngine", "run_sharded"]

Element = Record | Punctuation

#: Stateless per-record operators: one record in, at most one out, with
#: the output carrying the input's (ts, seq) stamp.  A shard's slice of
#: the chain output through these equals the chain output of its slice.
#: ``FixedFilterChain``/``Eddy`` qualify — their routing statistics are
#: internal work bookkeeping, not cross-record *output* state: whether a
#: record passes depends only on the record itself.
#: ``BackpressureProbe`` is pass-through on the data path (identity on
#: records, stamps untouched); its synopsis is monitoring state, not
#: output state, so it shards like a filter.
_STATELESS_OPS = (
    Select, Project, MapOp, Rename, Extend, FixedFilterChain, Eddy,
    BackpressureProbe,
)

_BACKENDS = ("inline", "thread", "process")


# ---------------------------------------------------------------------------
# Strategy analysis
# ---------------------------------------------------------------------------


@dataclass
class _Strategy:
    """Resolved execution strategy for one (plan, partition) pair."""

    name: str  # "single" | "local" | "partial" | "exchange"
    kind: str = "arrival"  # merge discipline, see _combine()
    reason: str = ""
    chain: list = field(default_factory=list)
    input_name: str | None = None
    output_name: str | None = None
    routing: PartitionSpec | None = None
    split: AggregateSplit | None = None
    group_names: list = field(default_factory=list)
    having: object = None
    window: TumblingWindow | None = None
    bucket_attr: str = "tb"
    ts_attr: str = "ts"
    dedupe_columns: list | None = None


def _order_sensitive(aggregates) -> bool:
    """True when any aggregate state merge depends on arrival order."""
    return any(
        isinstance(spec.new_state(), (First, Last)) for spec in aggregates
    )


def _preserved_after(op, preserved: set) -> set:
    """Attributes of ``preserved`` still carrying the source value under
    the source name after passing through ``op``."""
    if isinstance(op, (Select, FixedFilterChain, Eddy, BackpressureProbe)):
        # Pure filters / pass-throughs: surviving records pass through
        # byte-identical.
        return preserved
    if isinstance(op, Project):
        identity = {
            out
            for out, spec in op.columns.items()
            if isinstance(spec, str) and spec == out
        }
        return preserved & identity
    if isinstance(op, Rename):
        return preserved - set(op.mapping) - set(op.mapping.values())
    if isinstance(op, Extend):
        return preserved - set(op.additions)
    if isinstance(op, DistinctProject):
        return preserved & set(op.columns)
    return set()


def _plain_group_attrs(op) -> set:
    """Grouping columns that are raw attribute lookups (AttrGetter)."""
    return {
        fn.attr for _name, fn in op.group_by if isinstance(fn, AttrGetter)
    }


def _hash_colocated(chain, key_attrs) -> bool:
    """True when hash-partitioning by ``key_attrs`` colocates every
    stateful operator's key: all records agreeing on the operator's key
    necessarily agree on the partition key, so they share a shard."""
    required = set(key_attrs)
    preserved = set(key_attrs)
    for op in chain:
        if isinstance(op, DistinctProject):
            if not required <= (preserved & set(op.columns)):
                return False
        elif isinstance(op, (Aggregate, WindowedAggregate)):
            if not required <= (preserved & _plain_group_attrs(op)):
                return False
        preserved = _preserved_after(op, preserved)
    return True


def _analyze(plan: Plan, partition: PartitionSpec) -> _Strategy:
    chain = linearize_plan(plan)
    if chain is None:
        return _Strategy(
            "single",
            reason="plan is not a single-input linear chain "
            "(join/union/multi-output plans run on one engine)",
        )
    input_name = next(iter(plan.inputs))
    output_name = next(iter(plan.outputs))
    terminal = chain[-1]

    for op in chain:
        if isinstance(op, _STATELESS_OPS) or isinstance(op, DistinctProject):
            continue
        if isinstance(op, (Aggregate, WindowedAggregate)) and op is terminal:
            continue
        return _Strategy(
            "single",
            reason=f"operator {op.name!r} has no exact sharded execution",
        )

    t_kind = None
    if isinstance(terminal, Aggregate):
        t_kind = "blocking"
    elif isinstance(terminal, WindowedAggregate):
        if isinstance(terminal.window, TumblingWindow):
            t_kind = "tumbling"
        elif isinstance(terminal.window, PunctuationWindow):
            # Punctuation-scoped groups close on broadcast punctuations,
            # which reach every shard — blocking-aggregate discipline.
            t_kind = "punctuated"
        else:
            t_kind = "buffered"

    base = dict(chain=chain, input_name=input_name, output_name=output_name)
    if t_kind in ("blocking", "tumbling", "punctuated"):
        base.update(
            group_names=[name for name, _fn in terminal.group_by],
            having=terminal.having,
        )
    if t_kind == "tumbling":
        base.update(
            window=terminal.window,
            bucket_attr=terminal.bucket_attr,
            ts_attr=terminal.ts_attr,
        )

    # 1. local: all cross-record state colocated under the partition.
    if isinstance(partition, HashPartition) and _hash_colocated(
        chain, partition.key_attrs
    ):
        kind = {
            None: "arrival",
            "blocking": "blocking",
            "punctuated": "blocking",
            "tumbling": "tumbling",
        }.get(t_kind)
        if kind is not None:
            return _Strategy(
                "local",
                kind=kind,
                reason=f"state colocated under {partition.describe()}",
                routing=partition,
                **base,
            )

    # ... or no cross-record state at all (any partition works).
    if t_kind is None and not any(
        isinstance(op, DistinctProject) for op in chain
    ):
        return _Strategy(
            "local",
            kind="arrival",
            reason="stateless chain: outputs re-interleave by (ts, seq)",
            routing=partition,
            **base,
        )

    # 2. partial: decomposable terminal aggregate over a stateless prefix.
    if t_kind in ("blocking", "tumbling") and all(
        isinstance(op, _STATELESS_OPS) for op in chain[:-1]
    ):
        split = split_chain_aggregate(chain)
        if split is not None and not _order_sensitive(split.aggregates):
            return _Strategy(
                "partial",
                kind=f"partial_{t_kind}",
                reason="terminal aggregate is mergeable: shard-local "
                "partials + coordinator final merge",
                routing=partition,
                split=split,
                **base,
            )

    # 3. exchange: re-partition by group key so each group is colocated.
    if t_kind in ("blocking", "tumbling", "punctuated") and all(
        isinstance(op, Select) for op in chain[:-1]
    ):
        routing = _ExtractorPartition(
            [fn for _name, fn in terminal.group_by], partition.n_shards
        )
        return _Strategy(
            "exchange",
            kind="tumbling" if t_kind == "tumbling" else "blocking",
            reason="non-mergeable aggregate: repartitioned by group key",
            routing=routing,
            **base,
        )

    # 4. terminal duplicate elimination: global first-seen replay.
    if (
        t_kind is None
        and isinstance(terminal, DistinctProject)
        and terminal.window is None
        and sum(isinstance(op, DistinctProject) for op in chain) == 1
    ):
        return _Strategy(
            "local",
            kind="arrival",
            reason="terminal distinct deduplicated at the coordinator",
            routing=partition,
            dedupe_columns=list(terminal.columns),
            **base,
        )

    return _Strategy(
        "single",
        reason="no exact sharded strategy for this chain/partition pair",
    )


# ---------------------------------------------------------------------------
# Shard workers
# ---------------------------------------------------------------------------


@dataclass
class _ShardRun:
    """One shard's outputs: per-epoch elements, flush tail, progress."""

    epochs: list
    flush: list
    progress: list
    metrics: MetricsRegistry


def _terminal_progress(op) -> float:
    """The terminal operator's notion of stream progress, per epoch."""
    if isinstance(op, GroupPartial):
        return op.max_ts
    if isinstance(op, Aggregate):
        return op._max_ts
    if isinstance(op, WindowedAggregate):
        if isinstance(op.window, PunctuationWindow):
            return op._delegate._max_ts
        if isinstance(op.window, TumblingWindow):
            return op._watermark
    return 0.0


def _run_shard(
    ops: list,
    input_name: str,
    output_name: str,
    batches: Sequence[Sequence[Record]],
    puncts: Sequence[Punctuation | None],
    batch_size,
    observe=None,
    representation: str = "tuple",
    column_backend: str | None = None,
) -> _ShardRun:
    """Run one shard's plan over its epoch slices."""
    plan = linear_plan(input_name, ops, output_name)
    engine = Engine(
        plan,
        batch_size=batch_size,
        observe=observe,
        representation=representation,
        column_backend=column_backend,
    )
    engine.start()
    terminal = ops[-1]
    epochs_out: list[list[Element]] = []
    progress: list[float] = []
    for batch, punct in zip(batches, puncts):
        produced: list[Element] = []
        if batch:
            size = engine.batch_size
            if size is None:
                for el in batch:
                    produced.extend(engine.feed(input_name, el))
            else:
                for i in range(0, len(batch), size):
                    produced.extend(
                        engine.feed_batch(input_name, batch[i : i + size])
                    )
        if punct is not None:
            produced.extend(engine.feed(input_name, punct))
        epochs_out.append(produced)
        progress.append(_terminal_progress(terminal))
    result = engine.finish()
    emitted = sum(len(rows) for rows in epochs_out)
    flush = result.outputs[output_name][emitted:]
    return _ShardRun(epochs_out, flush, progress, result.metrics)


def _process_shard_entry(
    conn, ops, input_name, output_name, batches, puncts, batch_size,
    observe=None, representation="tuple", column_backend=None,
) -> None:
    """Forked child: run the shard and ship the result over the pipe.

    Inputs arrive via fork inheritance (lambdas in plans never cross a
    pickle boundary); only the result — records, aggregate states,
    metrics, all picklable (trace spans included) — returns through
    the pipe.
    """
    try:
        run = _run_shard(
            ops, input_name, output_name, batches, puncts, batch_size,
            observe, representation, column_backend,
        )
        conn.send(("ok", run))
    except BaseException as exc:  # pragma: no cover - defensive
        try:
            conn.send(
                (
                    "error",
                    (f"{type(exc).__name__}: {exc}", traceback.format_exc()),
                )
            )
        except Exception:
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# The sharded engine
# ---------------------------------------------------------------------------


class ShardedEngine:
    """Partition-parallel plan executor with exact single-engine semantics.

    Parameters
    ----------
    plan:
        The plan to execute, unchanged — shard plans are derived copies.
    partition:
        A :class:`~repro.parallel.partition.PartitionSpec` — how records
        spread across shards.  The planner may override it (the
        ``exchange`` strategy re-partitions by group key), and ignores
        it entirely for the ``single`` fallback.
    batch_size:
        Per-shard engine batch size; ``"auto"`` (default) selects
        :data:`Engine.DEFAULT_BATCH_SIZE`.
    backend:
        ``"thread"`` (default), ``"process"``, or ``"inline"``.
    worker_timeout:
        Seconds to wait for any single shard worker before declaring it
        hung and raising :class:`~repro.errors.ShardError`.  ``None``
        (default) waits forever.  For the process backend a timed-out
        worker is killed; for the thread backend the thread cannot be
        killed, but the engine stops waiting on it.
    observe:
        Wall-clock observation (see :mod:`repro.observe`): ``None``,
        ``True``, an ``int`` sampling stride, or an
        :class:`~repro.observe.ObserveConfig`.  Each shard worker runs
        an observed engine whose spans nest under
        ``("run", "shard:<i>")`` — across the thread *and* process
        backends — and the merged run metrics carry the union of shard
        histograms, gauges, and spans plus a coordinator ``run`` span.
    representation / column_backend:
        Per-shard engine execution representation (``"tuple"`` or
        ``"columnar"``) and column storage backend — see
        :class:`~repro.core.engine.Engine`.  The columnar tier is
        certified element-identical per shard, so the merge discipline
        is unchanged.
    """

    def __init__(
        self,
        plan: Plan,
        partition: PartitionSpec,
        batch_size: int | str | None = "auto",
        backend: str = "thread",
        worker_timeout: float | None = None,
        observe=None,
        representation: str = "tuple",
        column_backend: str | None = None,
    ) -> None:
        if not isinstance(partition, PartitionSpec):
            raise PlanError(
                f"partition must be a PartitionSpec; got {partition!r}"
            )
        if backend not in _BACKENDS:
            raise PlanError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        plan.validate()
        if backend == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):  # pragma: no cover - platform dependent
            warnings.warn(
                "fork start method unavailable; ShardedEngine falls back "
                "to the thread backend (plans hold closures, which do "
                "not survive spawn pickling)",
                RuntimeWarning,
                stacklevel=2,
            )
            backend = "thread"
        if worker_timeout is not None and worker_timeout <= 0:
            raise PlanError(
                f"worker_timeout must be > 0 or None; got {worker_timeout}"
            )
        self.plan = plan
        self.partition = partition
        self.batch_size = batch_size
        self.backend = backend
        self.worker_timeout = worker_timeout
        self.observe_config = ObserveConfig.coerce(observe)
        self.representation = representation
        self.column_backend = column_backend
        self._strategy = _analyze(plan, partition)
        # Validate batch_size/representation/backend eagerly (Engine
        # performs the same checks per shard).
        Engine(
            plan,
            batch_size=batch_size,
            representation=representation,
            column_backend=column_backend,
        )

    # -- introspection ---------------------------------------------------

    @property
    def strategy(self) -> str:
        """Resolved strategy: single | local | partial | exchange."""
        return self._strategy.name

    def describe(self) -> dict:
        """Planner verdict, for logs and tests."""
        return {
            "strategy": self._strategy.name,
            "merge": self._strategy.kind,
            "reason": self._strategy.reason,
            "partition": self.partition.describe(),
            "routing": (
                self._strategy.routing.describe()
                if self._strategy.routing is not None
                else None
            ),
            "shards": self.partition.n_shards,
            "backend": self.backend,
        }

    # -- execution -------------------------------------------------------

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> RunResult:
        """Execute the plan over ``sources`` and return merged outputs."""
        st = self._strategy
        cfg = self.observe_config
        if st.name == "single":
            return Engine(
                self.plan,
                batch_size=self.batch_size,
                observe=cfg,
                representation=self.representation,
                column_backend=self.column_backend,
            ).run(sources)
        run_start = perf_counter() if cfg is not None else 0.0
        by_name = resolve_sources(self.plan, sources)
        source = by_name[st.input_name]
        epochs = split_epochs(source.events(), st.routing)
        shard_ops = self._shard_ops()
        runs = self._execute(shard_ops, epochs)
        combined = self._combine(epochs, runs)
        metrics = merge_metrics(run.metrics for run in runs)
        if cfg is not None and cfg.trace:
            tracer = Tracer(cfg.context, max_spans=cfg.max_spans)
            tracer.record(
                "run",
                run_start,
                perf_counter(),
                strategy=st.name,
                backend=self.backend,
                shards=st.routing.n_shards,
                epochs=len(epochs),
            )
            tracer.publish(metrics)
            # Keep the merged trace chronological: the coordinator span
            # starts before every worker span it encloses.
            metrics.spans.sort(key=lambda span: span.start)
        return RunResult(outputs={st.output_name: combined}, metrics=metrics)

    def _shard_ops(self) -> list[list]:
        """Derive one operator chain per shard.

        Chains are deep-copied per shard so no state is shared between
        workers; deepcopy treats the closures inside operators as atoms,
        so shards share (stateless) predicate functions but nothing
        mutable.  The plan's ``Plan`` object itself is never copied —
        its adjacency is keyed by operator identity — each shard gets a
        fresh ``linear_plan`` over its chain copy.
        """
        st = self._strategy
        chains: list[list] = []
        for _shard in range(st.routing.n_shards):
            if st.split is not None:
                ops = [copy.deepcopy(op) for op in st.split.prefix]
                ops.append(st.split.make_partial())
            else:
                ops = [copy.deepcopy(op) for op in st.chain]
            chains.append(ops)
        return chains

    def _execute(
        self, shard_ops: list[list], epochs: list[Epoch]
    ) -> list[_ShardRun]:
        st = self._strategy
        payloads = [
            (
                ops,
                st.input_name,
                st.output_name,
                [epoch.batches[shard] for epoch in epochs],
                [epoch.punct for epoch in epochs],
                self.batch_size,
                self._shard_observe(shard),
                self.representation,
                self.column_backend,
            )
            for shard, ops in enumerate(shard_ops)
        ]
        if self.backend == "inline" or len(payloads) == 1:
            runs = []
            for shard, payload in enumerate(payloads):
                try:
                    runs.append(_run_shard(*payload))
                except Exception as exc:
                    raise self._shard_error(
                        shard, f"{type(exc).__name__}: {exc}",
                        worker_traceback=traceback.format_exc(),
                    ) from exc
            return runs
        if self.backend == "thread":
            return self._execute_thread(payloads)
        return self._execute_process(payloads)

    def _shard_observe(self, shard: int):
        """Worker observe config: shard spans nest under the run span."""
        if self.observe_config is None:
            return None
        return self.observe_config.with_context("run", f"shard:{shard}")

    def _shard_error(
        self,
        shard: int,
        message: str,
        worker_traceback: str | None = None,
    ) -> ShardError:
        strategy = self._strategy.name
        return ShardError(
            f"shard {shard} ({strategy} strategy) failed: {message}",
            shard=shard,
            strategy=strategy,
            worker_traceback=worker_traceback,
        )

    def _execute_thread(self, payloads: list[tuple]) -> list[_ShardRun]:
        pool = ThreadPoolExecutor(max_workers=len(payloads))
        futures = [
            pool.submit(_run_shard, *payload) for payload in payloads
        ]
        runs: list[_ShardRun] = []
        try:
            for shard, future in enumerate(futures):
                try:
                    runs.append(future.result(timeout=self.worker_timeout))
                except FutureTimeoutError:
                    raise self._shard_error(
                        shard,
                        f"no result within {self.worker_timeout}s "
                        f"(worker presumed hung)",
                    ) from None
                except ShardError:
                    raise
                except Exception as exc:
                    raise self._shard_error(
                        shard, f"{type(exc).__name__}: {exc}",
                        worker_traceback=traceback.format_exc(),
                    ) from exc
        except ShardError:
            for future in futures:
                future.cancel()
            # Do not wait for a hung worker thread on the way out.
            pool.shutdown(wait=False)
            raise
        pool.shutdown(wait=True)
        return runs

    def _execute_process(self, payloads: list[tuple]) -> list[_ShardRun]:
        ctx = multiprocessing.get_context("fork")
        procs = []
        for payload in payloads:
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_process_shard_entry, args=(send_conn, *payload)
            )
            proc.start()
            send_conn.close()
            procs.append((proc, recv_conn))
        runs: list[_ShardRun] = []
        failure: ShardError | None = None
        # Drain pipes before joining: a worker blocked on a full pipe
        # buffer never exits.
        for shard, (proc, conn) in enumerate(procs):
            if failure is not None:
                conn.close()
                continue
            try:
                if self.worker_timeout is not None and not conn.poll(
                    self.worker_timeout
                ):
                    failure = self._shard_error(
                        shard,
                        f"no result within {self.worker_timeout}s "
                        f"(worker presumed hung)",
                    )
                    conn.close()
                    continue
                status, payload = conn.recv()
            except EOFError:
                status, payload = (
                    "error",
                    ("worker exited without a result", None),
                )
            conn.close()
            if status == "ok":
                runs.append(payload)
            else:
                message, worker_tb = payload
                failure = self._shard_error(
                    shard, message, worker_traceback=worker_tb
                )
        for proc, _conn in procs:
            if failure is not None and proc.is_alive():
                proc.terminate()
            proc.join()
        if failure is not None:
            raise failure
        return runs

    # -- combining -------------------------------------------------------

    def _combine(
        self, epochs: list[Epoch], runs: list[_ShardRun]
    ) -> list[Element]:
        kind = self._strategy.kind
        if kind == "arrival":
            return self._combine_arrival(epochs, runs)
        if kind == "blocking":
            return self._combine_blocking(epochs, runs)
        if kind == "tumbling":
            return self._combine_tumbling(epochs, runs)
        if kind == "partial_blocking":
            return self._combine_partial_blocking(epochs, runs)
        assert kind == "partial_tumbling", kind
        return self._combine_partial_tumbling(epochs, runs)

    def _combine_arrival(self, epochs, runs) -> list[Element]:
        st = self._strategy
        dedupe = (
            DistinctCombiner(st.dedupe_columns)
            if st.dedupe_columns is not None
            else None
        )
        out: list[Element] = []
        for index, epoch in enumerate(epochs):
            rows = merge_arrival(run.epochs[index] for run in runs)
            if dedupe is not None:
                rows = dedupe.filter(rows)
            out.extend(rows)
            if epoch.punct is not None:
                if dedupe is not None:
                    dedupe.purge(epoch.punct)
                out.append(epoch.punct)
        tail = merge_arrival(run.flush for run in runs)
        if dedupe is not None:
            tail = dedupe.filter(tail)
        out.extend(tail)
        return out

    def _combine_blocking(self, epochs, runs) -> list[Element]:
        """Colocated blocking aggregate: group closes are punctuation-
        synchronized across shards, so each epoch's shard rows union to
        the single engine's close set — re-sorted by group key.  Flush
        rows are re-stamped with the global max timestamp."""
        st = self._strategy
        sort_key = group_sort_key(st.group_names)
        out: list[Element] = []
        for index, epoch in enumerate(epochs):
            rows = [
                el
                for run in runs
                for el in run.epochs[index]
                if isinstance(el, Record)
            ]
            rows.sort(key=sort_key)
            out.extend(rows)
            if epoch.punct is not None:
                out.append(epoch.punct)
        global_max = max(
            (run.progress[-1] for run in runs if run.progress), default=0.0
        )
        tail = [
            el for run in runs for el in run.flush if isinstance(el, Record)
        ]
        tail.sort(key=sort_key)
        out.extend(
            Record(row.values, ts=global_max, seq=row.seq, size=row.size)
            for row in tail
        )
        return out

    def _epoch_watermarks(self, epochs, runs) -> list[float]:
        """Global stream progress after each epoch: the max over shard
        progress reports, folded with punctuation time bounds."""
        st = self._strategy
        marks: list[float] = []
        current = float("-inf")
        for index, epoch in enumerate(epochs):
            for run in runs:
                if run.progress[index] > current:
                    current = run.progress[index]
            if epoch.punct is not None:
                bound = epoch.punct.bound_for(st.ts_attr)
                if bound is not None and bound > current:
                    current = bound
            marks.append(current)
        return marks

    def _combine_tumbling(self, epochs, runs) -> list[Element]:
        """Colocated tumbling aggregate: a shard's watermark lags the
        global one, so shard emission epochs are unreliable — each
        (bucket, group) row is re-assigned to the epoch in which the
        *global* watermark crossed its bucket end, which is exactly when
        the single engine emitted it."""
        st = self._strategy
        marks = self._epoch_watermarks(epochs, runs)
        slots: list[list[Record]] = [[] for _ in epochs]
        tail: list[Record] = []
        window = st.window
        bucket_attr = st.bucket_attr
        for run in runs:
            for rows in (*run.epochs, run.flush):
                for el in rows:
                    if not isinstance(el, Record):
                        continue
                    end = window.bucket_start(el.values[bucket_attr] + 1)
                    index = bisect_left(marks, end)
                    if index < len(slots):
                        slots[index].append(el)
                    else:
                        tail.append(el)
        sort_key = bucket_sort_key(st.group_names, bucket_attr)
        out: list[Element] = []
        for index, epoch in enumerate(epochs):
            slots[index].sort(key=sort_key)
            out.extend(slots[index])
            if epoch.punct is not None:
                out.append(epoch.punct)
        tail.sort(key=sort_key)
        out.extend(tail)
        return out

    def _combine_partial_blocking(self, epochs, runs) -> list[Element]:
        """Gigascope split, unwindowed: shards ship partial states for
        punctuation-covered groups as the stream runs; the coordinator
        merges and finalizes them at each punctuation."""
        st = self._strategy
        merger = GroupMerger(st.group_names, st.split.aggregates, st.having)
        out: list[Element] = []
        for index, epoch in enumerate(epochs):
            for run in runs:
                for el in run.epochs[index]:
                    if isinstance(el, Record):
                        merger.absorb(el)
            if epoch.punct is not None:
                out.extend(merger.close_matching(epoch.punct))
                out.append(epoch.punct)
        for run in runs:
            for el in run.flush:
                if isinstance(el, Record):
                    merger.absorb(el)
        global_max = max(
            (run.progress[-1] for run in runs if run.progress), default=0.0
        )
        out.extend(merger.close_all(global_max))
        return out

    def _combine_partial_tumbling(self, epochs, runs) -> list[Element]:
        """Gigascope split, tumbling: shards ship (bucket, group) states
        at flush; the coordinator replays the epochs, closing each
        bucket in the epoch where the global watermark passed its end."""
        st = self._strategy
        split = st.split
        merger = BucketMerger(
            split.window,
            st.group_names,
            split.aggregates,
            split.having,
            bucket_attr=split.bucket_attr,
        )
        for run in runs:
            for rows in (*run.epochs, run.flush):
                for el in rows:
                    if isinstance(el, Record):
                        merger.absorb(el)
        marks = self._epoch_watermarks(epochs, runs)
        out: list[Element] = []
        for index, epoch in enumerate(epochs):
            out.extend(merger.close_upto(marks[index]))
            if epoch.punct is not None:
                out.append(epoch.punct)
        out.extend(merger.close_all())
        return out


def run_sharded(
    plan: Plan,
    sources: Sequence[Source] | Mapping[str, Source],
    partition: PartitionSpec,
    batch_size: int | str | None = "auto",
    backend: str = "thread",
    worker_timeout: float | None = None,
    observe=None,
    representation: str = "tuple",
    column_backend: str | None = None,
) -> RunResult:
    """One-shot convenience: build a :class:`ShardedEngine` and run it."""
    engine = ShardedEngine(
        plan,
        partition,
        batch_size=batch_size,
        backend=backend,
        worker_timeout=worker_timeout,
        observe=observe,
        representation=representation,
        column_backend=column_backend,
    )
    return engine.run(sources)
