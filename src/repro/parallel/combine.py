"""Deterministic coordinator-side merge of shard outputs.

Each combiner reconstructs the *exact* element sequence a single engine
would have produced, from per-epoch shard outputs.  The merge rule
depends on what the plan's terminal operator emits:

* per-arrival chains (selections, projections, maps) — every output
  record keeps the ``(ts, seq)`` stamp of the source record that caused
  it, and source stamps are unique and monotone; sorting the shard union
  by ``(ts, seq)`` is therefore the inverse of the partition
  (:func:`merge_arrival`);
* a terminal blocking aggregate — the single engine emits closed groups
  sorted by ``repr`` of the group key, so the shard union per epoch is
  re-sorted the same way (:func:`group_sort_key`), and at flush the
  rows are re-stamped with the *global* max timestamp, which no single
  shard observed;
* a terminal tumbling aggregate — rows are sorted by (bucket, group
  key); the sharded run additionally re-assigns each bucket's rows to
  the epoch in which the *global* watermark crossed the bucket end,
  because a shard's local watermark lags the global one (the sharded
  engine handles that re-assignment; this module provides the sort);
* Gigascope-style partial push-down — shards ship serialized aggregate
  states (``_states`` rows); :class:`GroupMerger` (unwindowed) and
  :class:`BucketMerger` (tumbling) merge them and produce the final
  rows, replicating the single engine's emission order, timestamps and
  HAVING filtering;
* duplicate elimination under a non-colocating partition —
  :class:`DistinctCombiner` replays the global first-seen decision over
  the merged union (each shard only knows its local firsts) including
  the punctuation-driven purge of
  :class:`~repro.operators.project.DistinctProject`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.aggregates.spec import AggSpec
from repro.core.metrics import MetricsRegistry
from repro.core.tuples import Punctuation, Record
from repro.operators.partial_aggregate import STATES_ATTR
from repro.windows.spec import TumblingWindow

__all__ = [
    "merge_arrival",
    "group_sort_key",
    "bucket_sort_key",
    "DistinctCombiner",
    "GroupMerger",
    "BucketMerger",
    "merge_metrics",
]


def merge_arrival(per_shard: Iterable[Sequence]) -> list[Record]:
    """Interleave shard record lists back into source arrival order.

    Valid whenever every output record carries the unique, monotone
    ``(ts, seq)`` stamp of the source record it derives from — true for
    all per-arrival operators, which emit via ``Record.with_values``.
    """
    merged = [
        el
        for rows in per_shard
        for el in rows
        if isinstance(el, Record)
    ]
    merged.sort(key=lambda r: (r.ts, r.seq))
    return merged


def group_sort_key(group_names: Sequence[str]) -> Callable[[Record], str]:
    """Sort key replicating the aggregate operators' group emission order.

    The single-engine aggregates sort closed groups by ``repr`` of the
    raw group-key tuple; the final rows carry those key values under the
    group attribute names, so the tuple can be rebuilt from any row.
    """
    names = list(group_names)

    def key(row: Record) -> str:
        return repr(tuple(row.values[n] for n in names))

    return key


def bucket_sort_key(
    group_names: Sequence[str], bucket_attr: str
) -> Callable[[Record], tuple]:
    """Sort key for tumbling rows: ascending bucket, then group order."""
    names = list(group_names)

    def key(row: Record) -> tuple:
        return (
            row.values[bucket_attr],
            repr(tuple(row.values[n] for n in names)),
        )

    return key


class DistinctCombiner:
    """Global duplicate elimination over merged shard outputs.

    Under a partition that does not colocate equal keys, each shard's
    :class:`~repro.operators.project.DistinctProject` emits its *local*
    first occurrence of every key.  The global first occurrence is the
    earliest of those in ``(ts, seq)`` order, so replaying first-seen
    over the arrival-merged union reproduces the single engine exactly.
    Only the unwindowed form is replayable: the windowed form refreshes
    key ages on *suppressed* occurrences too, which the shards do not
    ship.
    """

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self._seen: dict[tuple, float] = {}

    def filter(self, rows: Sequence[Record]) -> list[Record]:
        """Keep the globally-first row per key, in order."""
        out: list[Record] = []
        seen = self._seen
        columns = self.columns
        for row in rows:
            key = tuple(row.values[c] for c in columns)
            if key in seen:
                continue
            seen[key] = row.ts
            out.append(row)
        return out

    def purge(self, punct: Punctuation) -> None:
        """Drop keys covered by ``punct`` (they can never recur)."""
        bound_attrs = {name for name, _ in punct.pattern}
        if not set(self.columns) <= bound_attrs:
            return
        self._seen = {
            k: t
            for k, t in self._seen.items()
            if not punct.matches(Record(dict(zip(self.columns, k)), ts=t))
        }


class GroupMerger:
    """Coordinator-side final merge for *unwindowed* grouped aggregation.

    The HFTA role of the partial push-down: absorbs ``_states`` rows
    shipped by shard-local
    :class:`~repro.operators.partial_aggregate.GroupPartial` operators,
    merges the aggregate states per group, and emits final rows with
    the same order (groups sorted by ``repr`` of the key), timestamps
    and HAVING semantics as the single-engine blocking
    :class:`~repro.operators.aggregate.Aggregate`.
    """

    def __init__(
        self,
        group_names: Sequence[str],
        aggregates: Sequence[AggSpec],
        having: Callable[[Record], bool] | None = None,
    ) -> None:
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)
        self.having = having
        self._groups: dict[tuple, tuple[dict, list]] = {}

    def absorb(self, row: Record) -> None:
        """Merge one shipped ``_states`` row into the group table."""
        values = row.values
        key = tuple(values[n] for n in self.group_names)
        entry = self._groups.get(key)
        if entry is None:
            key_values = {n: values[n] for n in self.group_names}
            states = [spec.new_state() for spec in self.aggregates]
            entry = (key_values, states)
            self._groups[key] = entry
        for mine, theirs in zip(entry[1], values[STATES_ATTR]):
            mine.merge(theirs)

    def _emit(self, key: tuple, ts: float) -> Record | None:
        key_values, states = self._groups.pop(key)
        values = dict(key_values)
        for spec, state in zip(self.aggregates, states):
            values[spec.name] = state.result()
        row = Record(values, ts=ts)
        if self.having is not None and not self.having(row):
            return None
        return row

    def close_matching(self, punct: Punctuation) -> list[Record]:
        """Close groups covered by ``punct``, mirroring ``Aggregate``."""
        pattern_attrs = {name for name, _ in punct.pattern}
        if not set(self.group_names) <= pattern_attrs:
            return []
        closed = [
            key
            for key, (key_values, _states) in self._groups.items()
            if punct.matches(Record(key_values, ts=punct.ts))
        ]
        out: list[Record] = []
        for key in sorted(closed, key=repr):
            row = self._emit(key, punct.ts)
            if row is not None:
                out.append(row)
        return out

    def close_all(self, ts: float) -> list[Record]:
        """Flush every remaining group at the global max timestamp."""
        out: list[Record] = []
        for key in sorted(self._groups, key=repr):
            row = self._emit(key, ts)
            if row is not None:
                out.append(row)
        return out

    def __len__(self) -> int:
        return len(self._groups)


class BucketMerger:
    """Coordinator-side final merge for *tumbling* grouped aggregation.

    Absorbs (bucket, group)-keyed ``_states`` rows and closes buckets
    when told the global watermark has passed their end — the sharded
    engine computes that watermark per epoch from shard progress
    reports, since no shard sees it locally.  Emission matches
    :class:`~repro.operators.aggregate.WindowedAggregate`: ascending
    buckets, groups sorted by ``repr`` of the key, row timestamp equal
    to the bucket end, the bucket id under ``bucket_attr``, HAVING
    applied to final rows.
    """

    def __init__(
        self,
        window: TumblingWindow,
        group_names: Sequence[str],
        aggregates: Sequence[AggSpec],
        having: Callable[[Record], bool] | None = None,
        bucket_attr: str = "tb",
    ) -> None:
        self.window = window
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)
        self.having = having
        self.bucket_attr = bucket_attr
        # bucket -> group key -> (key_values, states)
        self._buckets: dict[int, dict[tuple, tuple[dict, list]]] = {}

    def absorb(self, row: Record) -> None:
        values = row.values
        bucket = values[self.bucket_attr]
        key = tuple(values[n] for n in self.group_names)
        groups = self._buckets.setdefault(bucket, {})
        entry = groups.get(key)
        if entry is None:
            key_values = {n: values[n] for n in self.group_names}
            states = [spec.new_state() for spec in self.aggregates]
            entry = (key_values, states)
            groups[key] = entry
        for mine, theirs in zip(entry[1], values[STATES_ATTR]):
            mine.merge(theirs)

    def close_upto(self, watermark: float) -> list[Record]:
        """Emit every bucket whose end has passed ``watermark``."""
        out: list[Record] = []
        closeable = sorted(
            b
            for b in self._buckets
            if self.window.bucket_start(b + 1) <= watermark
        )
        for bucket in closeable:
            groups = self._buckets.pop(bucket)
            end_ts = self.window.bucket_start(bucket + 1)
            for key in sorted(groups, key=repr):
                key_values, states = groups[key]
                values = dict(key_values)
                values[self.bucket_attr] = bucket
                for spec, state in zip(self.aggregates, states):
                    values[spec.name] = state.result()
                row = Record(values, ts=end_ts)
                if self.having is None or self.having(row):
                    out.append(row)
        return out

    def close_all(self) -> list[Record]:
        return self.close_upto(float("inf"))

    def __len__(self) -> int:
        return sum(len(groups) for groups in self._buckets.values())


def merge_metrics(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Sum per-operator counters across shard runs.

    Shard plans share operator names (they are copies of one chain), so
    the merged registry reads like a single engine's — with invocation
    and batch counts reflecting the total work across all shards.
    """
    merged = MetricsRegistry()
    for registry in registries:
        for name, m in registry.operators.items():
            agg = merged.for_operator(name)
            agg.records_in += m.records_in
            agg.records_out += m.records_out
            agg.punctuations_in += m.punctuations_in
            agg.punctuations_out += m.punctuations_out
            agg.invocations += m.invocations
            agg.busy_time += m.busy_time
            agg.batches_in += m.batches_in
            agg.wall_time += m.wall_time
            agg.timed_invocations += m.timed_invocations
        for name, value in registry.counters.items():
            if name == "observe.sampling":
                # A setting, not a count: identical across shards.
                merged.counters[name] = value
            else:
                merged.incr(name, value)
        for name, gauge in registry.gauges.items():
            merged.gauge(name).merge(gauge)
        for name, hist in registry.histograms.items():
            merged.histogram(name, hist.bounds).merge(hist)
        merged.spans.extend(registry.spans)
        merged.operator_kinds.update(registry.operator_kinds)
    # Spans arrive grouped per shard; re-order chronologically so the
    # merged trace reads like one timeline (perf_counter is the shared
    # CLOCK_MONOTONIC across threads and forked workers on Linux).
    merged.spans.sort(key=lambda span: span.start)
    return merged
