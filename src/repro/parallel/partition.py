"""Partitioning specs: how a stream is split across shards.

The shared-nothing parallel engine (:mod:`repro.parallel.sharded`)
splits one input stream into N disjoint shard streams.  Two policies:

* :class:`HashPartition` — route each record by a stable hash of one or
  more key attributes.  All records with equal key values land on the
  same shard, so any operator state keyed by (a superset of) the
  partition key is naturally colocated — the precondition for running
  the *full* plan per shard, Gigascope-style.
* :class:`RoundRobinPartition` — route by arrival position.  Perfectly
  balanced, but colocates nothing; keyed operators then need the
  partial-aggregate push-down or a coordinator-side merge.

Punctuations are *broadcast*: a punctuation asserts a property of the
whole stream, so every shard must observe it.  Each punctuation also
closes an **epoch** — the unit at which the coordinator interleaves
shard outputs back into a single deterministic sequence.

Hashing is deliberately not Python's built-in ``hash`` (randomized per
process): :func:`stable_hash` gives run-to-run and cross-process
deterministic placement.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError

__all__ = [
    "PartitionSpec",
    "HashPartition",
    "RoundRobinPartition",
    "Epoch",
    "split_epochs",
    "stable_hash",
]

Element = Record | Punctuation


def stable_hash(key: tuple) -> int:
    """Deterministic hash of a key tuple (stable across runs/processes)."""
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace"))


class PartitionSpec:
    """Base class: assigns each record of a stream to one of N shards."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise PlanError(f"n_shards must be >= 1; got {n_shards}")
        self.n_shards = n_shards

    #: Attribute names the routing depends on, or ``None`` when routing
    #: is not value-based (round-robin).  The planner uses this for the
    #: group-key ⊇ partition-key colocation test.
    key_attrs: tuple[str, ...] | None = None

    def shard_of(self, record: Record, index: int) -> int:
        """Shard id for ``record``, the ``index``-th record of the run."""
        raise NotImplementedError

    def split(
        self, records: Sequence[Record], start_index: int = 0
    ) -> list[list[Record]]:
        """Route ``records`` (the ``start_index``-th record of the run
        onward) into per-shard lists.  The generic implementation calls
        :meth:`shard_of` per record; subclasses override with tighter
        loops because this runs in the coordinator's serial section,
        which Amdahl charges against every shard."""
        buckets: list[list[Record]] = [[] for _ in range(self.n_shards)]
        for offset, record in enumerate(records):
            buckets[self.shard_of(record, start_index + offset)].append(record)
        return buckets

    def narrowed(self, n_shards: int) -> "PartitionSpec":
        """Return a copy of this spec routing over ``n_shards`` shards.

        Used by the resilience supervisor to degrade a sharded run onto
        fewer workers after repeated shard failures.
        """
        raise PlanError(
            f"{type(self).__name__} does not support narrowing"
        )

    def describe(self) -> str:
        return f"{type(self).__name__}({self.n_shards})"


class HashPartition(PartitionSpec):
    """Hash-by-key routing: ``shard = stable_hash(key values) % N``."""

    def __init__(self, key: str | Sequence[str], n_shards: int) -> None:
        super().__init__(n_shards)
        attrs = (key,) if isinstance(key, str) else tuple(key)
        if not attrs:
            raise PlanError("HashPartition requires at least one key attribute")
        self.key_attrs = attrs

    def shard_of(self, record: Record, index: int) -> int:
        key = tuple(record[a] for a in self.key_attrs)
        return stable_hash(key) % self.n_shards

    def split(
        self, records: Sequence[Record], start_index: int = 0
    ) -> list[list[Record]]:
        buckets: list[list[Record]] = [[] for _ in range(self.n_shards)]
        n = self.n_shards
        attrs = self.key_attrs
        crc = zlib.crc32
        for record in records:
            values = record.values
            key = tuple(values[a] for a in attrs)
            blob = repr(key).encode("utf-8", "backslashreplace")
            buckets[crc(blob) % n].append(record)
        return buckets

    def narrowed(self, n_shards: int) -> "HashPartition":
        return HashPartition(self.key_attrs, n_shards)

    def describe(self) -> str:
        return f"hash({', '.join(self.key_attrs)}) % {self.n_shards}"


class RoundRobinPartition(PartitionSpec):
    """Position-based routing: record ``i`` goes to shard ``i % N``."""

    key_attrs = None

    def shard_of(self, record: Record, index: int) -> int:
        return index % self.n_shards

    def split(
        self, records: Sequence[Record], start_index: int = 0
    ) -> list[list[Record]]:
        # Extended slices reproduce index-modulo routing at C speed:
        # local position j has global index start_index + j, so shard s
        # owns positions j ≡ s - start_index (mod n).
        n = self.n_shards
        if not isinstance(records, list):
            records = list(records)
        return [records[(s - start_index) % n :: n] for s in range(n)]

    def narrowed(self, n_shards: int) -> "RoundRobinPartition":
        return RoundRobinPartition(n_shards)

    def describe(self) -> str:
        return f"round_robin % {self.n_shards}"


class _ExtractorPartition(PartitionSpec):
    """Hash routing on computed key values (the group-key exchange).

    Used when the coordinator re-partitions by the terminal aggregate's
    *group* key — the fallback for plans whose aggregate states cannot
    be merged across shards (order-sensitive aggregates).
    """

    key_attrs = None

    def __init__(
        self, extractors: Sequence[Callable[[Record], object]], n_shards: int
    ) -> None:
        super().__init__(n_shards)
        self.extractors = list(extractors)

    def shard_of(self, record: Record, index: int) -> int:
        if not self.extractors:
            return 0
        key = tuple(fn(record) for fn in self.extractors)
        return stable_hash(key) % self.n_shards

    def narrowed(self, n_shards: int) -> "_ExtractorPartition":
        return _ExtractorPartition(self.extractors, n_shards)

    def describe(self) -> str:
        return f"hash(group key) % {self.n_shards}"


@dataclass
class Epoch:
    """One punctuation-delimited slice of the partitioned input.

    ``batches[s]`` holds shard ``s``'s records for the slice, in arrival
    order; ``punct`` is the punctuation closing the slice (``None`` for
    the final, end-of-stream epoch).
    """

    batches: list[list[Record]]
    punct: Punctuation | None = None


def split_epochs(
    elements: Iterable[Element], spec: PartitionSpec
) -> list[Epoch]:
    """Partition an ordered element sequence into per-shard epochs.

    Records are routed by ``spec``; every punctuation is broadcast (it
    ends the current epoch and will be fed to all shards).  The final
    epoch (``punct is None``) holds the records after the last
    punctuation, up to end of stream.
    """
    epochs: list[Epoch] = []
    current: list[Record] = []
    index = 0
    for el in elements:
        if isinstance(el, Punctuation):
            epochs.append(Epoch(batches=spec.split(current, index), punct=el))
            index += len(current)
            current = []
        else:
            current.append(el)
    epochs.append(Epoch(batches=spec.split(current, index), punct=None))
    return epochs
