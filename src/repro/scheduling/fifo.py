"""FIFO scheduling: process tuples in global arrival order.

The baseline policy of slide 43 — "let each tuple flow through the
relevant operators" before touching the next arrival.  Implemented by
always serving the operator whose head tuple entered the system first.
"""

from __future__ import annotations

from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["FIFOScheduler"]


class FIFOScheduler(Scheduler):
    """Serve the operator holding the oldest tuple in the system."""

    name = "fifo"

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        return min(ready, key=lambda r: (r.head_entry_seq, r.key))
