"""Operator-scheduling interface for the simulator.

Slide 42-43 of the tutorial: when streams are bursty, the backlog of
tuples between operators — and hence memory — depends on *which* queued
work the processor serves first.  A :class:`Scheduler` encapsulates that
policy.  The simulator presents the set of operators with queued input as
:class:`ReadyOp` snapshots and asks the scheduler to pick one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReadyOp", "Scheduler"]


@dataclass
class ReadyOp:
    """Snapshot of one operator that has queued input.

    Attributes
    ----------
    key:
        Dense operator identifier: the operator's position in the plan's
        topological order.
    port:
        Input port whose queue holds the head tuple.
    op_name:
        Operator name, for diagnostics.
    cost:
        Virtual service time to process the head tuple.
    selectivity:
        Size/cardinality reduction factor of the operator.
    head_size:
        Memory size of the tuple at the head of the queue.
    head_entry_seq:
        Global arrival order of the head tuple (FIFO uses this).
    head_entry_ts:
        System entry time of the head tuple.
    queue_length:
        Number of queued elements.
    terminal:
        Whether the operator's output leaves the system (memory drops to
        zero on completion).
    priority:
        Externally computed priority (Chain fills this with envelope
        slopes); ``0.0`` when unused.
    """

    key: int
    port: int
    op_name: str
    cost: float
    selectivity: float
    head_size: float
    head_entry_seq: int
    head_entry_ts: float
    queue_length: int
    terminal: bool
    priority: float = 0.0

    @property
    def release_rate(self) -> float:
        """Memory released per unit of service time for the head tuple."""
        out_size = 0.0 if self.terminal else self.head_size * self.selectivity
        if self.cost <= 0:
            return float("inf")
        return (self.head_size - out_size) / self.cost


class Scheduler:
    """Base class: pick the next operator to serve."""

    name = "scheduler"

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        """Return the entry of ``ready`` to serve next.

        ``ready`` is non-empty; ``now`` is the current virtual time.
        """
        raise NotImplementedError

    def on_start(self, plan) -> None:  # pragma: no cover - default no-op
        """Hook invoked once before simulation; Chain precomputes here."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
