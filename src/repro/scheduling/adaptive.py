"""Measured-rate operator scheduling.

The slide 42-43 schedulers rank queued work by *modeled* quantities
(``cost_per_tuple``, declared selectivity).  Once the observe layer can
measure real per-operator rates, the natural adaptive policy is to
serve the operator that destroys backlog fastest *as measured*: its
drop throughput ``(1 - observed_selectivity) * measured_rate`` —
records removed from the stream per second of service.

The subtlety this module exists to get right is the **never-sampled
operator**.  Under 1-in-N sampling an operator may have
``timed_invocations == 0`` even after many dispatches, and its
``measured_rate``/``observed_selectivity`` are ``nan``.  Naively
feeding ``nan`` into a ``max()`` key makes the choice depend on list
order (every comparison with ``nan`` is False), which is both wrong
and nondeterministic across plans.  :class:`MeasuredRateScheduler`
falls back to the modeled :attr:`~repro.scheduling.base.ReadyOp.
release_rate` for exactly those operators — the same audit as
``rate_operator_from_metrics(..., fallback_capacity=...)``.
"""

from __future__ import annotations

import math

from repro.core.metrics import MetricsRegistry
from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["MeasuredRateScheduler"]


class MeasuredRateScheduler(Scheduler):
    """Serve the operator with the highest *measured* drop throughput.

    Parameters
    ----------
    metrics:
        A :class:`~repro.core.metrics.MetricsRegistry` from an observed
        run of (a representative sample of) the same plan — e.g. the
        registry of a finished :class:`~repro.core.engine.Engine` run
        with ``observe=`` enabled.  Looked up by operator name at every
        :meth:`choose`, so the caller may keep measuring into it while
        the simulator replays the plan.

    Operators the observer actually timed are ranked by
    ``(1 - observed_selectivity) * measured_rate``; operators with no
    evidence (missing from the registry, never fed, or never sampled —
    ``timed_invocations == 0``) rank by the modeled
    :attr:`~repro.scheduling.base.ReadyOp.release_rate` instead.  Ties
    break by arrival order then key, like
    :class:`~repro.scheduling.greedy.GreedyScheduler`.
    """

    name = "measured_rate"

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def priority(self, ready: ReadyOp) -> float:
        """The (finite) rank of one ready operator."""
        m = self.metrics.operators.get(ready.op_name)
        if m is not None and m.timed_invocations > 0:
            rate = m.measured_rate
            selectivity = m.observed_selectivity
            if not math.isnan(rate) and not math.isnan(selectivity):
                return (1.0 - selectivity) * rate
        return ready.release_rate

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        return max(
            ready,
            key=lambda r: (self.priority(r), -r.head_entry_seq, -r.key),
        )
