"""Round-robin scheduling over operators with queued input."""

from __future__ import annotations

from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Cycle through (operator, port) pairs, serving one tuple per turn."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last: tuple[int, int] = (-1, -1)

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        ordered = sorted(ready, key=lambda r: (r.key, r.port))
        for entry in ordered:
            if (entry.key, entry.port) > self._last:
                self._last = (entry.key, entry.port)
                return entry
        chosen = ordered[0]
        self._last = (chosen.key, chosen.port)
        return chosen
