"""Learning-automata operator scheduling (arXiv:1110.1700).

"Adaptive Data Stream Management System Using Learning Automata"
couples a DSMS scheduler to a variable-structure learning automaton: the
automaton keeps a probability vector over the actions (here: which
operator to serve), samples an action, observes the environment's
response, and reinforces with the linear reward-penalty scheme

* favorable response:   ``p_i += a * (1 - p_i)``, ``p_j *= (1 - a)``
* unfavorable response: ``p_i *= (1 - b)``,
  ``p_j = b / (r - 1) + (1 - b) * p_j``

(``i`` the chosen action, ``j`` every other action, ``r`` the number of
actions, ``a``/``b`` the reward/penalty steps).  Both updates preserve
``sum(p) == 1``.

The environment signal is the simulator's memory-release model (slide
43): a choice is *favorable* when the chosen operator's
:attr:`~repro.scheduling.base.ReadyOp.release_rate` is at least the
mean over the currently ready set — i.e. the automaton is rewarded for
serving operators that free backlog memory at an above-average rate and
penalized otherwise.  Unlike :class:`~repro.scheduling.greedy.
GreedyScheduler`, which always exploits the instantaneous maximum, the
automaton *learns* a stable service mix and keeps exploring, which is
the arXiv paper's argument for robustness under drifting loads.

Determinism: the sampling RNG is reseeded in :meth:`on_start`, so
re-running the same trace (the time-machine replay discipline of
:mod:`repro.replay`) reproduces the same schedule bit-identically.
"""

from __future__ import annotations

import math
import random

from repro.errors import SchedulingError
from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["LearningAutomataScheduler"]


class LearningAutomataScheduler(Scheduler):
    """L_RP automaton over the plan's operators.

    Parameters
    ----------
    reward:
        Reward step ``a`` in (0, 1): how strongly a favorable response
        concentrates probability on the chosen operator.
    penalty:
        Penalty step ``b`` in [0, 1): how strongly an unfavorable
        response redistributes probability away from it.  ``b == 0``
        degenerates to the reward-inaction (L_RI) scheme.
    seed:
        Sampling RNG seed; reseeded at :meth:`on_start` so repeated
        runs over the same trace are identical.
    floor:
        Minimum effective sampling weight per ready operator.  The
        floor keeps every ready operator reachable (pure L_RP can
        drive a probability arbitrarily close to 0, starving a queue
        forever on a finite trace).
    """

    name = "learning_automata"

    def __init__(
        self,
        reward: float = 0.15,
        penalty: float = 0.05,
        seed: int = 0,
        floor: float = 0.01,
    ) -> None:
        if not 0.0 < reward < 1.0:
            raise SchedulingError(
                f"reward step must be in (0, 1); got {reward}"
            )
        if not 0.0 <= penalty < 1.0:
            raise SchedulingError(
                f"penalty step must be in [0, 1); got {penalty}"
            )
        if floor < 0.0:
            raise SchedulingError(f"floor must be >= 0; got {floor}")
        self.reward = reward
        self.penalty = penalty
        self.seed = seed
        self.floor = floor
        self._probs: dict[int, float] = {}
        self._rng = random.Random(seed)

    # -- lifecycle ---------------------------------------------------------

    def on_start(self, plan) -> None:
        """Uniform action probabilities over the plan's operators."""
        n = len(plan.topological_order())
        self._probs = {key: 1.0 / n for key in range(n)} if n else {}
        self._rng = random.Random(self.seed)

    # -- the automaton -----------------------------------------------------

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        # One candidate per operator: the oldest head tuple among its
        # ready ports (the action space is operators, not ports).
        by_key: dict[int, ReadyOp] = {}
        for entry in ready:
            cur = by_key.get(entry.key)
            if cur is None or (entry.head_entry_seq, entry.port) < (
                cur.head_entry_seq,
                cur.port,
            ):
                by_key[entry.key] = entry
        if not self._probs:
            # Direct use without on_start: lazily start uniform over
            # whatever keys the simulator presents.
            n = max(by_key) + 1
            self._probs = {key: 1.0 / n for key in range(n)}
        for key in by_key:
            if key not in self._probs:
                raise SchedulingError(
                    f"ready operator key {key} unknown to the automaton "
                    f"(plan changed without on_start?)"
                )
        keys = sorted(by_key)
        chosen_key = self._sample(keys)
        chosen = by_key[chosen_key]
        self._reinforce(chosen_key, self._favorable(chosen, by_key))
        return chosen

    def _sample(self, keys: list[int]) -> int:
        weights = [max(self._probs[key], self.floor) for key in keys]
        pick = self._rng.random() * sum(weights)
        acc = 0.0
        for key, weight in zip(keys, weights):
            acc += weight
            if pick < acc:
                return key
        return keys[-1]

    def _favorable(
        self, chosen: ReadyOp, by_key: dict[int, ReadyOp]
    ) -> bool:
        rate = chosen.release_rate
        if math.isinf(rate):
            return True
        finite = [
            r.release_rate
            for r in by_key.values()
            if not math.isinf(r.release_rate)
        ]
        if not finite:
            return True
        return rate >= sum(finite) / len(finite)

    def _reinforce(self, key: int, favorable: bool) -> None:
        probs = self._probs
        r = len(probs)
        if r <= 1:
            return
        p_chosen = probs[key]
        if favorable:
            a = self.reward
            for other in probs:
                if other != key:
                    probs[other] *= 1.0 - a
            probs[key] = p_chosen + a * (1.0 - p_chosen)
        else:
            b = self.penalty
            share = b / (r - 1)
            for other in probs:
                if other != key:
                    probs[other] = share + (1.0 - b) * probs[other]
            probs[key] = (1.0 - b) * p_chosen

    def probabilities(self) -> dict[int, float]:
        """Current action probabilities (a copy, for inspection/tests)."""
        return dict(self._probs)

    def __repr__(self) -> str:
        return (
            f"LearningAutomataScheduler(reward={self.reward}, "
            f"penalty={self.penalty}, seed={self.seed})"
        )
