"""Operator scheduling policies (slides 42-43)."""

from repro.scheduling.adaptive import MeasuredRateScheduler
from repro.scheduling.automata import LearningAutomataScheduler
from repro.scheduling.base import ReadyOp, Scheduler
from repro.scheduling.chain import ChainScheduler, lower_envelope_priorities
from repro.scheduling.fifo import FIFOScheduler
from repro.scheduling.greedy import GreedyScheduler
from repro.scheduling.roundrobin import RoundRobinScheduler

__all__ = [
    "ReadyOp",
    "Scheduler",
    "ChainScheduler",
    "lower_envelope_priorities",
    "FIFOScheduler",
    "GreedyScheduler",
    "LearningAutomataScheduler",
    "MeasuredRateScheduler",
    "RoundRobinScheduler",
]
