"""Greedy memory-release scheduling.

The "Greedy" policy of slide 43: always serve the operator that frees
memory fastest right now — the steepest single-operator descent.  For
the slide's two-operator example this is exactly the policy whose queue
memory the table reports (1, 1.2, 1.4, 1.6, 1.8).

Greedy is locally optimal per step but, unlike Chain (BBDM03), does not
look at the *downstream* trajectory of a tuple; see
:mod:`repro.scheduling.chain`.
"""

from __future__ import annotations

from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["GreedyScheduler"]


class GreedyScheduler(Scheduler):
    """Serve the operator with the highest instantaneous release rate."""

    name = "greedy"

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        # Ties broken by arrival order, then key, for determinism.
        return max(
            ready,
            key=lambda r: (r.release_rate, -r.head_entry_seq, -r.key),
        )
