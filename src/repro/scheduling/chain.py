"""Chain scheduling (Babcock, Babu, Datar, Motwani — SIGMOD 2003).

Chain is the memory-optimal policy referenced on slide 43 ([BBDM03]).
Each operator path is summarized by its *progress chart*: the piecewise
curve of (cumulative processing time, remaining tuple size) as a tuple
moves through the chain.  Chain computes the chart's **lower envelope**
and assigns every operator the (absolute) slope of the envelope segment
that covers it.  At runtime it always serves the queued tuple whose
operator has the steepest envelope slope, breaking ties in favour of the
earliest-arrived tuple.

On a linear chain Greedy and Chain can differ: Greedy looks only one
operator ahead, Chain credits an operator with the best *multi-operator*
descent reachable through it.  For DAGs with branching we fall back to
the single-step release rate for operators past the branch point,
documented in DESIGN.md.
"""

from __future__ import annotations

from repro.scheduling.base import ReadyOp, Scheduler

__all__ = ["ChainScheduler", "lower_envelope_priorities"]


def lower_envelope_priorities(
    costs: list[float], selectivities: list[float], terminal: bool = True
) -> list[float]:
    """Compute Chain priorities for a linear operator path.

    Parameters
    ----------
    costs, selectivities:
        Per-operator service cost and size-reduction factor, in path
        order.
    terminal:
        If ``True``, tuples leave the system after the last operator
        (remaining size drops to 0 there).

    Returns
    -------
    list[float]
        One priority (envelope slope magnitude) per operator.
    """
    k = len(costs)
    if k != len(selectivities):
        raise ValueError("costs and selectivities must have equal length")
    if k == 0:
        return []
    # Progress chart points: (cumulative cost, remaining size).
    points: list[tuple[float, float]] = [(0.0, 1.0)]
    size = 1.0
    cum = 0.0
    for i in range(k):
        cum += costs[i]
        size *= selectivities[i]
        points.append((cum, size))
    if terminal:
        points[-1] = (points[-1][0], 0.0)

    priorities = [0.0] * k
    j = 0
    while j < k:
        # Steepest descent from point j to any later point.
        best_m = j + 1
        best_slope = float("inf")  # slopes are <= 0; keep most negative
        for m in range(j + 1, k + 1):
            dx = points[m][0] - points[j][0]
            dy = points[m][1] - points[j][1]
            slope = dy / dx if dx > 0 else float("-inf")
            if slope < best_slope:
                best_slope = slope
                best_m = m
        magnitude = abs(best_slope) if best_slope != float("-inf") else float("inf")
        for i in range(j, best_m):
            priorities[i] = magnitude
        j = best_m
    return priorities


class ChainScheduler(Scheduler):
    """Serve the steepest lower-envelope segment first."""

    name = "chain"

    def __init__(self) -> None:
        self._priorities: dict[int, float] = {}

    def on_start(self, plan) -> None:
        """Precompute envelope priorities for every operator in ``plan``.

        Priorities are keyed by the operator's position in the plan's
        topological order — the same dense key the simulator puts in
        :attr:`ReadyOp.key`.  The downstream path of an operator is
        followed through single successors; a branch ends the path
        (fallback to what has been accumulated so far).
        """
        self._priorities.clear()
        order = plan.topological_order()
        keys = {id(op): i for i, op in enumerate(order)}
        entry_ops = {
            id(consumer)
            for consumers in plan.inputs.values()
            for consumer, _port in consumers
        }
        for op in order:
            if id(op) not in entry_ops:
                continue
            # Walk the full downstream path from this source-fed operator;
            # the progress chart (and hence every segment slope) is
            # anchored at the size a fresh tuple has when it enters here.
            path = []
            current = op
            terminal = False
            seen: set[int] = set()
            while True:
                if id(current) in seen:
                    break
                seen.add(id(current))
                path.append(current)
                succ = plan.successors(current)
                if not succ:
                    terminal = True
                    break
                if len(succ) != 1:
                    break
                current = succ[0][0]
            costs = [p.cost_per_tuple for p in path]
            sels = [p.selectivity for p in path]
            prios = lower_envelope_priorities(costs, sels, terminal=terminal)
            for p, prio in zip(path, prios):
                key = keys[id(p)]
                self._priorities[key] = max(self._priorities.get(key, 0.0), prio)

    def priority_of(self, ready: ReadyOp) -> float:
        return self._priorities.get(ready.key, ready.release_rate)

    def choose(self, ready: list[ReadyOp], now: float) -> ReadyOp:
        return max(
            ready,
            key=lambda r: (self.priority_of(r), -r.head_entry_seq, -r.key),
        )
