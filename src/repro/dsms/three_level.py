"""The end-to-end three-level architecture (slides 14-15, 54).

Low-level DSMSs sit at observation points (voluminous streams in, data-
reduced streams out); a high-level DSMS merges their outputs; a DBMS
stores the result for audit and offline analysis.

:class:`ThreeLevelPipeline` assembles the concrete pieces this library
provides: per-point Gigascope-style LFTA aggregation, an HFTA merge at
the high level, and a :class:`~repro.dsms.database.Database` table at
the bottom, with tuple counts at every boundary so the data-reduction
story (slide 15) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.aggregates.spec import AggSpec
from repro.core.engine import Engine
from repro.core.graph import Plan
from repro.core.stream import ListSource
from repro.core.tuples import Record, Schema, Field
from repro.dsms.database import Database
from repro.operators.partial_aggregate import (
    STATES_ATTR,
    FinalAggregate,
    PartialAggregate,
)
from repro.operators.select import Select
from repro.windows.spec import TumblingWindow

__all__ = ["LevelStats", "ThreeLevelPipeline"]


@dataclass
class LevelStats:
    """Tuple counts at each architectural boundary."""

    raw_tuples: int = 0
    low_level_out: int = 0
    high_level_out: int = 0
    db_rows: int = 0

    def reduction_low(self) -> float:
        """Raw-to-low data reduction factor."""
        if self.low_level_out == 0:
            return float("inf")
        return self.raw_tuples / self.low_level_out

    def reduction_total(self) -> float:
        if self.db_rows == 0:
            return float("inf")
        return self.raw_tuples / self.db_rows


class ThreeLevelPipeline:
    """N observation points → one high-level DSMS → one DBMS table.

    Each observation point runs ``filter → PartialAggregate`` with a
    bounded group table; the high level merges partial rows with a
    :class:`FinalAggregate`; finalized rows are appended to a database
    table whose schema is derived from the group/aggregate columns.
    """

    def __init__(
        self,
        n_points: int,
        window: TumblingWindow,
        group_attrs: Sequence[str],
        aggregates: Sequence[AggSpec],
        max_groups_low: int = 64,
        point_filter: Callable[[Record], bool] | None = None,
        having: Callable[[Record], bool] | None = None,
        bucket_attr: str = "tb",
    ) -> None:
        self.n_points = n_points
        self.window = window
        self.group_attrs = list(group_attrs)
        self.aggregates = list(aggregates)
        self.max_groups_low = max_groups_low
        self.point_filter = point_filter
        self.having = having
        self.bucket_attr = bucket_attr
        self.stats = LevelStats()
        self.database = Database("audit")
        fields = [Field(bucket_attr, int)]
        fields += [Field(a) for a in self.group_attrs]
        fields += [Field(spec.name) for spec in self.aggregates]
        self.table = self.database.create_table(
            "stream_results", Schema(fields)
        )

    def run(
        self, per_point_records: Mapping[str, Sequence[dict]] | Sequence[Sequence[dict]],
        ts_attr: str = "ts",
    ) -> list[dict]:
        """Process each observation point's batch; return final rows."""
        if isinstance(per_point_records, Mapping):
            batches = list(per_point_records.values())
        else:
            batches = list(per_point_records)
        if len(batches) != self.n_points:
            raise ValueError(
                f"expected {self.n_points} observation batches; got "
                f"{len(batches)}"
            )

        # Low level: one LFTA per observation point.
        shipped: list[Record] = []
        for i, batch in enumerate(batches):
            self.stats.raw_tuples += len(batch)
            plan = Plan(name=f"point{i}")
            plan.add_input("raw")
            upstream: object = "raw"
            if self.point_filter is not None:
                upstream = plan.add(
                    Select(self.point_filter, name=f"filter{i}"),
                    upstream=[upstream],
                )
            lfta = PartialAggregate(
                self.window,
                self.group_attrs,
                self.aggregates,
                max_groups=self.max_groups_low,
                bucket_attr=self.bucket_attr,
                name=f"lfta{i}",
            )
            plan.add(lfta, upstream=[upstream])
            plan.mark_output(lfta, "out")
            result = Engine(plan).run(
                [ListSource("raw", batch, ts_attr=ts_attr)]
            )
            point_rows = [
                el for el in result.outputs["out"] if isinstance(el, Record)
            ]
            self.stats.low_level_out += len(point_rows)
            shipped.extend(point_rows)

        # High level: merge every point's partial rows.
        shipped.sort(key=lambda r: (r[self.bucket_attr], r.seq, repr(r.key(self.group_attrs))))
        hfta = FinalAggregate(
            self.group_attrs,
            self.aggregates,
            having=self.having,
            bucket_attr=self.bucket_attr,
            name="hfta",
        )
        final_rows: list[Record] = []
        for row in shipped:
            for out in hfta.process(row, 0):
                if isinstance(out, Record):
                    final_rows.append(out)
        for out in hfta.flush():
            if isinstance(out, Record):
                final_rows.append(out)
        self.stats.high_level_out = len(final_rows)

        # DBMS: persist finalized rows (without internal state columns).
        for row in final_rows:
            clean = {
                k: v for k, v in row.values.items() if k != STATES_ATTR
            }
            self.table.insert(clean)
        self.stats.db_rows = len(self.table)
        return [dict(r.values) for r in final_rows]

    def audit(self, text: str) -> list[dict]:
        """Run an audit query over the stored results (slide 15)."""
        return self.database.query(text)
