"""Aurora-style QoS specifications (slide 47).

Aurora "accepts QoS specifications and attempts to optimize QoS for the
outputs produced".  A QoS spec is a piecewise-linear utility function;
Aurora's canonical axes are *latency* (utility decays as results age)
and *loss* (utility decays with the fraction of tuples dropped).  The
load shedder uses these to decide which output to degrade first.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.errors import StreamError

__all__ = [
    "QoSGraph",
    "TIER_LOSS_TOLERANCES",
    "latency_qos",
    "loss_qos",
    "shedding_order",
    "tier_loss_qos",
]


class QoSGraph:
    """A piecewise-linear utility function over one metric."""

    def __init__(self, points: Sequence[tuple[float, float]], name: str = "qos") -> None:
        if len(points) < 2:
            raise StreamError("QoS graph needs at least two points")
        xs = [p[0] for p in points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise StreamError("QoS x-coordinates must be strictly increasing")
        for _x, u in points:
            if not 0.0 <= u <= 1.0:
                raise StreamError("QoS utilities must be in [0,1]")
        self.points = [(float(x), float(u)) for x, u in points]
        self.name = name

    def utility(self, x: float) -> float:
        """Interpolated utility at ``x`` (clamped at the ends)."""
        pts = self.points
        if x <= pts[0][0]:
            return pts[0][1]
        if x >= pts[-1][0]:
            return pts[-1][1]
        idx = bisect_right([p[0] for p in pts], x)
        (x0, u0), (x1, u1) = pts[idx - 1], pts[idx]
        frac = (x - x0) / (x1 - x0)
        return u0 + frac * (u1 - u0)

    def critical_x(self, min_utility: float = 0.5) -> float:
        """Largest ``x`` whose utility still reaches ``min_utility``."""
        best = self.points[0][0]
        probe = self.points[0][0]
        last = self.points[-1][0]
        steps = 200
        for i in range(steps + 1):
            x = probe + (last - probe) * i / steps
            if self.utility(x) >= min_utility:
                best = x
        return best


def latency_qos(
    good_until: float, zero_at: float, name: str = "latency"
) -> QoSGraph:
    """Utility 1 up to ``good_until``, linearly to 0 at ``zero_at``."""
    if zero_at <= good_until:
        raise StreamError("zero_at must exceed good_until")
    return QoSGraph(
        [(0.0, 1.0), (good_until, 1.0), (zero_at, 0.0)], name=name
    )


def loss_qos(tolerable_loss: float, name: str = "loss") -> QoSGraph:
    """Utility 1 at no loss, declining to 0 at 100% loss, with a knee
    at ``tolerable_loss`` (loss fraction in [0,1))."""
    if not 0.0 < tolerable_loss < 1.0:
        raise StreamError("tolerable_loss must be in (0,1)")
    return QoSGraph(
        [(0.0, 1.0), (tolerable_loss, 0.9), (1.0, 0.0)], name=name
    )


#: Loss fraction each service tier tolerates before utility collapses.
#: Gold tenants barely tolerate loss (steep QoS graph past the knee), so
#: :func:`shedding_order` ranks them last; bronze tenants tolerate much
#: more and shed first.
TIER_LOSS_TOLERANCES: dict[str, float] = {
    "gold": 0.02,
    "silver": 0.15,
    "bronze": 0.45,
}


def tier_loss_qos(tier: str, name: str | None = None) -> QoSGraph:
    """The canonical loss-QoS graph for a named service tier."""
    if tier not in TIER_LOSS_TOLERANCES:
        raise StreamError(
            f"unknown QoS tier {tier!r}; expected one of "
            f"{sorted(TIER_LOSS_TOLERANCES)}"
        )
    return loss_qos(
        TIER_LOSS_TOLERANCES[tier], name=name or f"loss:{tier}"
    )


def shedding_order(
    outputs: Sequence[tuple[str, QoSGraph, float]]
) -> list[str]:
    """Rank outputs by *utility lost per unit of load shed*, ascending.

    ``outputs`` is ``(name, loss_qos_graph, current_loss)``.  The output
    whose QoS graph is flattest at its current loss loses least from
    additional shedding — Aurora sheds there first.
    """
    slopes: list[tuple[float, str]] = []
    eps = 0.01
    for name, graph, loss in outputs:
        here = graph.utility(loss)
        there = graph.utility(min(1.0, loss + eps))
        slope = (here - there) / eps
        slopes.append((slope, name))
    return [name for _slope, name in sorted(slopes, key=lambda t: (t[0], t[1]))]
