"""The three-level architecture: DSMS facade, mini-DBMS, profiles, QoS."""

from repro.dsms.database import Database, Table
from repro.dsms.profiles import (
    PROFILES,
    SystemProfile,
    comparative_matrix,
    run_profile_demo,
)
from repro.dsms.qos import QoSGraph, latency_qos, loss_qos, shedding_order
from repro.dsms.system import StandingQuery, StreamSystem
from repro.dsms.three_level import LevelStats, ThreeLevelPipeline

__all__ = [
    "Database",
    "Table",
    "PROFILES",
    "SystemProfile",
    "comparative_matrix",
    "run_profile_demo",
    "QoSGraph",
    "latency_qos",
    "loss_qos",
    "shedding_order",
    "StandingQuery",
    "StreamSystem",
    "LevelStats",
    "ThreeLevelPipeline",
]
