"""The DSMS facade: register streams, submit standing queries, push data.

This is the user-facing shape of a data-stream management system
(slide 14): persistent queries over transient data (slide 16's
inversion of the DBMS model).  Each submitted query gets its own
incremental engine; every pushed element is routed to all standing
queries that read its stream, and new results are delivered to
per-query callbacks (or buffered for polling).

Slide 19 notes that stream systems "support persistent *and* transient
queries": a stream registered with ``history`` keeps a bounded ring of
recent elements, and :meth:`StreamSystem.query_once` runs a one-time
CQL query over that recent history.  Streams registered with a
``heartbeat`` interval get timestamp punctuations injected
automatically, so tumbling/windowed standing queries emit closed
buckets even during input lulls (the Gigascope ordering-property trick,
slide 48).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Mapping

from repro.core.engine import Engine, run_plan
from repro.core.stream import ListSource
from repro.core.tuples import Punctuation, Record, Schema
from repro.cql.planner import compile_query
from repro.cql.registry import Catalog
from repro.errors import SemanticError
from repro.operators.punctuate import Heartbeat
from repro.shedding.base import Shedder

__all__ = ["StandingQuery", "StreamSystem"]

Element = Record | Punctuation


class StandingQuery:
    """One registered continuous query."""

    def __init__(
        self,
        name: str,
        text: str,
        engine: Engine,
        callback: Callable[[Record], None] | None = None,
    ) -> None:
        self.name = name
        self.text = text
        self.engine = engine
        self.callback = callback
        self.results: list[Record] = []
        self.engine.start()

    @property
    def inputs(self) -> set[str]:
        return set(self.engine.plan.inputs)

    def feed(self, input_name: str, element: Element) -> list[Record]:
        produced = self.engine.feed(input_name, element)
        new_records = [el for el in produced if isinstance(el, Record)]
        self.results.extend(new_records)
        if self.callback is not None:
            for record in new_records:
                self.callback(record)
        return new_records

    def finish(self) -> list[Record]:
        """End-of-stream: flush the query, collect remaining results."""
        result = self.engine.finish()
        tail = [
            el
            for el in result.outputs.get("out", [])
            if isinstance(el, Record)
        ]
        # `outputs` includes everything; drop what we already delivered.
        fresh = tail[len(self.results):]
        self.results.extend(fresh)
        if self.callback is not None:
            for record in fresh:
                self.callback(record)
        return self.results


class StreamSystem:
    """A small DSMS: catalog + standing queries + push interface."""

    def __init__(self, name: str = "dsms", shedder: Shedder | None = None) -> None:
        self.name = name
        self.catalog = Catalog()
        self.queries: dict[str, StandingQuery] = {}
        self.shedder = shedder
        self._seq = 0
        self.pushed = 0
        self.shed = 0
        self._history: dict[str, deque[Record]] = {}
        self._heartbeats: dict[str, Heartbeat] = {}

    # -- catalog ------------------------------------------------------------

    def register_stream(
        self,
        name: str,
        schema: Schema,
        history: int | None = None,
        heartbeat: float | None = None,
    ) -> None:
        """Register a stream.

        Parameters
        ----------
        history:
            Keep the most recent ``history`` records for transient
            :meth:`query_once` queries (slide 19).
        heartbeat:
            Inject a ``Punctuation(ts <= boundary)`` every ``heartbeat``
            units of the ordering attribute, derived from the stream's
            own ordering (sound because streams are ts-ordered).
        """
        self.catalog.register_stream(name, schema)
        if history is not None:
            if history < 1:
                raise SemanticError(f"history must be >= 1; got {history}")
            self._history[name] = deque(maxlen=history)
        if heartbeat is not None:
            attr = schema.ordering or "ts"
            self._heartbeats[name] = Heartbeat(heartbeat, attr=attr)

    def register_function(self, name: str, fn: Callable[..., Any]) -> None:
        self.catalog.register_function(name, fn)

    # -- queries ------------------------------------------------------------

    def submit(
        self,
        name: str,
        text: str,
        callback: Callable[[Record], None] | None = None,
        require_bounded_memory: bool = False,
    ) -> StandingQuery:
        """Register a continuous query; results flow until :meth:`stop`."""
        if name in self.queries:
            raise SemanticError(f"duplicate query name {name!r}")
        plan = compile_query(
            text, self.catalog, require_bounded_memory=require_bounded_memory
        )
        query = StandingQuery(name, text, Engine(plan), callback)
        self.queries[name] = query
        return query

    def stop(self, name: str) -> list[Record]:
        """Deregister a query, flushing and returning its full results."""
        query = self.queries.pop(name)
        return query.finish()

    # -- data path ------------------------------------------------------------

    def push(self, stream: str, row: Mapping[str, Any] | Element) -> None:
        """Push one element into ``stream``, fanning out to queries."""
        element = self._to_element(stream, row)
        if (
            self.shedder is not None
            and isinstance(element, Record)
            and not self.shedder(element)
        ):
            self.shed += 1
            return
        self.pushed += 1
        if stream in self._history and isinstance(element, Record):
            self._history[stream].append(element)
        elements: list[Element] = [element]
        heartbeat = self._heartbeats.get(stream)
        if heartbeat is not None and isinstance(element, Record):
            # Heartbeat emits due punctuations *before* the record.
            elements = heartbeat.process(element)
        for el in elements:
            for query in self.queries.values():
                if stream in query.inputs:
                    query.feed(stream, el)

    def push_many(self, stream: str, rows: Iterable[Mapping[str, Any] | Element]) -> None:
        for row in rows:
            self.push(stream, row)

    def _to_element(
        self, stream: str, row: Mapping[str, Any] | Element
    ) -> Element:
        if isinstance(row, (Record, Punctuation)):
            return row
        schema = self.catalog.schema(stream)
        if schema.ordering:
            if schema.ordering not in row:
                from repro.errors import SchemaError

                raise SchemaError(
                    f"row pushed to {stream!r} lacks its ordering "
                    f"attribute {schema.ordering!r}"
                )
            ts = float(row[schema.ordering])
        else:
            ts = float(self._seq)
        self._seq += 1
        return Record(row, ts=ts, seq=self._seq)

    def create_view(
        self,
        name: str,
        text: str,
        schema: Schema,
        history: int | None = None,
    ) -> StandingQuery:
        """Register a continuous query whose results form a new stream.

        GSQL's stream-in/stream-out paradigm "permits composability"
        (slide 13), and Aurora's third query mode is the *view*
        (slide 47): downstream standing queries can read ``name`` like
        any base stream.  ``schema`` describes the view's output rows
        (the planner does not infer output schemas).
        """
        self.register_stream(name, schema, history=history)
        view_query = self.submit(
            f"_view_{name}",
            text,
            callback=lambda record, _n=name: self.push(_n, record),
        )
        return view_query

    def query_once(self, text: str) -> list[dict]:
        """Run a transient (one-time) query over buffered recent history.

        Slide 19: stream systems support persistent *and* transient
        queries.  The query's FROM streams must have been registered
        with ``history=...``; the answer covers exactly the buffered
        suffix of each stream.
        """
        plan = compile_query(text, self.catalog)
        sources = {}
        for input_name in plan.inputs:
            if input_name not in self._history:
                raise SemanticError(
                    f"stream {input_name!r} keeps no history; register it "
                    "with history=N to support transient queries"
                )
            sources[input_name] = ListSource(
                input_name, list(self._history[input_name])
            )
        return run_plan(plan, sources).values()

    def finish_all(self) -> dict[str, list[Record]]:
        """Flush every standing query; return name -> results."""
        out = {}
        for name in list(self.queries):
            out[name] = self.stop(name)
        return out
