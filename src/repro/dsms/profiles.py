"""System profiles and the comparative matrix (slide 52).

The tutorial's closing table contrasts five prototype systems along six
dimensions.  A profile here is not just documentation: each one names
the concrete configuration of *this* library that realizes the system's
signature behaviours (scheduler, shedding, answer mode, architecture),
and :func:`run_profile_demo` executes a canonical query under that
configuration to show the profile is live.  :func:`comparative_matrix`
regenerates the slide's table from the profile objects (experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.graph import Plan
from repro.core.simulation import SimConfig, Simulation
from repro.core.stream import ListSource
from repro.operators.select import Select
from repro.scheduling.base import Scheduler
from repro.scheduling.chain import ChainScheduler
from repro.scheduling.fifo import FIFOScheduler
from repro.scheduling.greedy import GreedyScheduler
from repro.scheduling.roundrobin import RoundRobinScheduler
from repro.shedding.base import Shedder
from repro.shedding.controller import LoadController

__all__ = ["SystemProfile", "PROFILES", "comparative_matrix", "run_profile_demo"]


@dataclass(frozen=True)
class SystemProfile:
    """One row of the slide-52 matrix plus its engine realization."""

    system: str
    architecture: str
    data_model: str
    query_language: str
    query_answers: str
    query_plan: str
    #: how this library realizes the profile
    scheduler_factory: Callable[[], Scheduler]
    shedder_factory: Callable[[], Shedder | None]
    approximate: bool
    notes: str = ""

    def matrix_row(self) -> dict[str, str]:
        return {
            "System": self.system,
            "Architecture": self.architecture,
            "Data Model": self.data_model,
            "Query Language": self.query_language,
            "Query Answers": self.query_answers,
            "Query Plan": self.query_plan,
        }


PROFILES: dict[str, SystemProfile] = {
    "aurora": SystemProfile(
        system="Aurora",
        architecture="low-level",
        data_model="RS-in RS-out",
        query_language="Operators",
        query_answers="approximate",
        query_plan="QoS-based, load shedding",
        scheduler_factory=RoundRobinScheduler,
        shedder_factory=lambda: LoadController(
            low_watermark=8.0, high_watermark=32.0, max_drop_rate=0.9
        ),
        approximate=True,
        notes="operator boxes-and-arrows; QoS-driven shedding (slide 47)",
    ),
    "gigascope": SystemProfile(
        system="Gigascope",
        architecture="two level (low, high)",
        data_model="S-in S-out",
        query_language="GSQL",
        query_answers="exact",
        query_plan="decomposition, avoid drops",
        scheduler_factory=FIFOScheduler,
        shedder_factory=lambda: None,
        approximate=False,
        notes="LFTA/HFTA split; see repro.gigascope (slide 48)",
    ),
    "hancock": SystemProfile(
        system="Hancock",
        architecture="High-level",
        data_model="RS-in R-out",
        query_language="Procedural",
        query_answers="exact, signatures",
        query_plan="optimize for I/O, process blocks",
        scheduler_factory=FIFOScheduler,
        shedder_factory=lambda: None,
        approximate=False,
        notes="block processing; see repro.hancock (slide 49)",
    ),
    "stream": SystemProfile(
        system="STREAM",
        architecture="low-level",
        data_model="RS-in RS-out",
        query_language="CQL",
        query_answers="approximate",
        query_plan="optimize space, static analysis",
        scheduler_factory=ChainScheduler,
        shedder_factory=lambda: None,
        approximate=True,
        notes="Chain scheduling + ABB+02 bounded-memory analysis (slide 50)",
    ),
    "telegraph": SystemProfile(
        system="Telegraph",
        architecture="high-level",
        data_model="RS-in RS-out",
        query_language="SQL-based",
        query_answers="exact",
        query_plan="adaptive plans, multi-query",
        scheduler_factory=GreedyScheduler,
        shedder_factory=lambda: None,
        approximate=False,
        notes="eddies + shared multi-query execution (slide 51)",
    ),
}

MATRIX_COLUMNS = (
    "System",
    "Architecture",
    "Data Model",
    "Query Language",
    "Query Answers",
    "Query Plan",
)


def comparative_matrix() -> list[dict[str, str]]:
    """Regenerate the slide-52 table, one dict per system row."""
    order = ["aurora", "gigascope", "hancock", "stream", "telegraph"]
    return [PROFILES[name].matrix_row() for name in order]


def run_profile_demo(
    profile_name: str, n_tuples: int = 40, burst_rate: float = 2.0
) -> dict[str, Any]:
    """Run the canonical 2-filter chain under a profile's configuration.

    Returns peak memory, outputs, and shed count — the observable
    differences between profiles on an overloaded bursty input.
    """
    profile = PROFILES[profile_name]
    plan = Plan()
    plan.add_input("S")
    op1 = plan.add(
        Select(lambda r: True, name="op1", selectivity=0.2), upstream=["S"]
    )
    op2 = plan.add(
        Select(lambda r: True, name="op2", selectivity=0.5), upstream=[op1]
    )
    plan.mark_output(op2, "out")
    rows = [
        {"v": i, "ts": i / burst_rate} for i in range(n_tuples)
    ]
    shedder = profile.shedder_factory()
    sim = Simulation(
        plan,
        profile.scheduler_factory(),
        SimConfig(sample_interval=1.0, shedder=shedder),
    )
    result = sim.run([ListSource("S", rows, ts_attr="ts")])
    return {
        "system": profile.system,
        "scheduler": profile.scheduler_factory().name,
        "peak_memory": result.memory.max(),
        "output_weight": round(result.output_weight.get("out", 0.0), 3),
        "shed": result.shed,
        "approximate": profile.approximate,
    }
