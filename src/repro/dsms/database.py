"""A deliberately small in-memory DBMS (slides 14-15).

The third tier of the architecture: "resource rich... useful to audit
query results of the data stream system; supports sophisticated query
processing".  It provides heap tables with append/update, predicate
scans, and — the nice part — the *same* CQL dialect as the stream tier:
a table is queried by streaming its rows through a compiled plan, so an
audit query is literally the standing query re-run over stored data.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.core.engine import run_plan
from repro.core.stream import ListSource
from repro.core.tuples import Record, Schema
from repro.cql.planner import compile_query
from repro.cql.registry import Catalog
from repro.errors import SchemaError, StorageError

__all__ = ["Table", "Database"]


class Table:
    """A heap table with schema validation."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self.rows: list[dict] = []

    def insert(self, row: Mapping[str, Any]) -> None:
        self.schema.validate(row)
        self.rows.append(dict(row))

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def scan(
        self, predicate: Callable[[dict], bool] | None = None
    ) -> list[dict]:
        if predicate is None:
            return list(self.rows)
        return [r for r in self.rows if predicate(r)]

    def delete(self, predicate: Callable[[dict], bool]) -> int:
        before = len(self.rows)
        self.rows = [r for r in self.rows if not predicate(r)]
        return before - len(self.rows)

    def update(
        self,
        predicate: Callable[[dict], bool],
        changes: Mapping[str, Any],
    ) -> int:
        count = 0
        for row in self.rows:
            if predicate(row):
                row.update(changes)
                count += 1
        return count

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """A named collection of tables with CQL querying."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(
                f"no table {name!r}; database has {sorted(self._tables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def query(self, text: str) -> list[dict]:
        """Run a CQL query over stored tables; return result rows.

        Tables referenced in FROM are streamed through the compiled
        plan in insertion order (tables are finite relations, so the
        "transient query over stored data" semantics of slide 16 holds).
        """
        catalog = Catalog()
        for name, table in self._tables.items():
            catalog.register_stream(name, table.schema, is_stream=False)
        plan = compile_query(text, catalog)
        sources = {}
        for input_name in plan.inputs:
            table = self.table(input_name)
            ts_attr = table.schema.ordering
            rows = table.rows
            if ts_attr is not None:
                # Tables are unordered relations; re-establish the
                # declared stream order so order-sensitive operators
                # (tumbling windows, window joins) behave correctly.
                rows = sorted(rows, key=lambda r: r[ts_attr])
            sources[input_name] = ListSource(
                input_name,
                rows,
                ts_attr=ts_attr,
                strict_order=False,
            )
        result = run_plan(plan, sources)
        return result.values()
