"""Shard supervision: epoch checkpointing, retry, and degradation.

:class:`Supervisor` wraps a :class:`~repro.parallel.sharded.ShardedEngine`
and turns its one-shot shard execution into an *epoch-lockstep* protocol
with crash recovery:

1. The coordinator splits the input into punctuation-delimited epochs
   (exactly as the sharded engine does) and drives every shard worker
   one epoch at a time.
2. Every ``checkpoint_every`` epochs it collects an
   :class:`~repro.core.engine.EngineCheckpoint` from each worker — the
   epoch-aligned snapshot discipline of the stream fault-tolerance
   literature (checkpoint at watermark boundaries, never mid-window).
3. When a worker crashes (process exit, worker exception) or hangs
   (no result within ``epoch_timeout``), the supervisor rebuilds that
   shard from fresh operator copies, restores the last checkpoint,
   **replays** the epochs since it — discarding the replayed output,
   which is the coordinator-side dedup that keeps results exactly-once —
   and retries the failed epoch after an exponential backoff.
4. A shard that keeps failing past ``max_retries`` triggers graceful
   degradation: the run is restarted on half as many shards (narrowed
   partition), down to a plain single :class:`~repro.core.engine.Engine`
   as the last rung.

Because replayed output is discarded and the failed epoch is re-executed
from a consistent snapshot, the supervised result is bit-identical to a
fault-free single-engine run — the invariant the chaos suite asserts for
every example plan.

Faults from a :class:`~repro.resilience.chaos.FaultInjector` are decided
*here*, in the coordinator, and shipped to workers with the epoch data;
see :mod:`repro.resilience.chaos` for why.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.engine import Engine, EngineCheckpoint, RunResult, resolve_sources
from repro.core.graph import Plan, linear_plan
from repro.core.metrics import MetricsRegistry
from repro.core.stream import Source
from repro.core.tuples import Punctuation, Record
from repro.errors import PlanError, ShardError
from repro.observe.trace import Span, Tracer
from repro.parallel.combine import merge_metrics
from repro.parallel.partition import Epoch, split_epochs
from repro.parallel.sharded import (
    ShardedEngine,
    _ShardRun,
    _Strategy,
    _terminal_progress,
)
from repro.resilience.chaos import Fault, FaultInjector, InjectedFault

__all__ = ["Supervisor", "SupervisorReport"]

Element = Record | Punctuation


@dataclass
class SupervisorReport:
    """What the supervisor had to do during one run."""

    retries: int = 0
    replayed_epochs: int = 0
    checkpoints: int = 0
    #: ``None`` while no degradation happened; otherwise the final rung
    #: (``"shards=k"`` or ``"single"``).
    degraded_to: str | None = None
    #: human-readable recovery log, in order
    events: list[str] = field(default_factory=list)


class _DegradeSignal(Exception):
    """Internal: a shard exhausted its retries; drop to fewer shards."""

    def __init__(self, cause: ShardError) -> None:
        super().__init__(str(cause))
        self.cause = cause


class _WorkerHung(Exception):
    """Internal: no epoch result within the timeout."""


def _fresh_ops(st: _Strategy) -> list:
    """One shard's operator chain, freshly copied (no shared state)."""
    if st.split is not None:
        ops = [copy.deepcopy(op) for op in st.split.prefix]
        ops.append(st.split.make_partial())
    else:
        ops = [copy.deepcopy(op) for op in st.chain]
    return ops


class _ShardCore:
    """One shard's engine plus epoch bookkeeping (runs in any backend)."""

    def __init__(
        self, ops: list, input_name: str, output_name: str, batch_size,
        observe=None, representation: str = "tuple",
        column_backend: str | None = None,
    ) -> None:
        self.ops = ops
        self.input_name = input_name
        self.output_name = output_name
        plan = linear_plan(input_name, ops, output_name)
        self.engine = Engine(
            plan,
            batch_size=batch_size,
            observe=observe,
            representation=representation,
            column_backend=column_backend,
        )
        self.engine.start()
        self.emitted = 0

    def feed_prefix(self, batch: Sequence[Record], upto: int) -> None:
        """Feed the first ``upto`` records only (fault staging)."""
        size = self.engine.batch_size
        if size is None:
            for el in batch[:upto]:
                self.engine.feed(self.input_name, el)
        else:
            for i in range(0, upto, size):
                self.engine.feed_batch(
                    self.input_name, batch[i : min(i + size, upto)]
                )

    def run_epoch(
        self, batch: Sequence[Record], punct: Punctuation | None
    ) -> tuple[list[Element], float]:
        produced: list[Element] = []
        size = self.engine.batch_size
        if size is None:
            for el in batch:
                produced.extend(self.engine.feed(self.input_name, el))
        else:
            for i in range(0, len(batch), size):
                produced.extend(
                    self.engine.feed_batch(
                        self.input_name, batch[i : i + size]
                    )
                )
        if punct is not None:
            produced.extend(self.engine.feed(self.input_name, punct))
        self.emitted += len(produced)
        return produced, _terminal_progress(self.ops[-1])

    def checkpoint(self) -> EngineCheckpoint:
        return self.engine.checkpoint()

    def restore(self, cp: EngineCheckpoint) -> None:
        self.engine.restore_checkpoint(cp)
        # A fresh (rebuilt) worker restores onto an *empty* output list,
        # so count what is actually buffered, not the checkpoint's
        # original position — flush slicing only needs everything fed
        # after the restore to be accounted for.
        self.emitted = len(self.engine._outputs[self.output_name])

    def stats(self):
        """Picklable per-operator counter snapshot (adaptive feedback)."""
        from repro.observe.feedback import collect_stats

        return collect_stats(self.engine.metrics)

    def revise(self, revisions) -> None:
        """Apply plan revisions at the current epoch boundary.

        Lazy import: :mod:`repro.adaptive` drives these workers, so a
        top-level import here would be a cycle.
        """
        from repro.adaptive.revision import apply_revisions

        self.ops = apply_revisions(
            self.engine,
            revisions,
            self.input_name,
            self.output_name,
            self.ops,
        )

    def take_feedback(self) -> list:
        """Drain feedback this shard's operators pushed to ingress.

        Picklable ``(input_name, FeedbackPunctuation)`` pairs — the
        coordinator broadcasts the union so every shard sheds the same
        slice (a hot key is hot wherever the partitioner routed it).
        """
        return self.engine.take_ingress_feedback()

    def apply_feedback(self, items) -> None:
        """Install coordinator-broadcast feedback at this shard's ingress."""
        self.engine.apply_feedback(items)

    def finish(self) -> tuple[list[Element], float, MetricsRegistry]:
        result = self.engine.finish()
        flush = result.outputs[self.output_name][self.emitted :]
        return flush, _terminal_progress(self.ops[-1]), result.metrics


def _apply_fault(core: _ShardCore, batch: Sequence[Record], fault: Fault):
    """Stage a shard fault mid-epoch: feed half the batch, then fail."""
    core.feed_prefix(batch, len(batch) // 2)
    if fault.kind == "hang":
        time.sleep(fault.seconds)
    raise InjectedFault(
        f"injected {fault.kind} on shard {fault.shard} "
        f"(epoch {fault.epoch})"
    )


# ---------------------------------------------------------------------------
# Worker backends
# ---------------------------------------------------------------------------


class _InlineWorker:
    """Synchronous worker (debugging backend).  Hangs degrade to crashes:
    there is no second thread of control to time them out from."""

    def __init__(self, core: _ShardCore) -> None:
        self.core = core
        self._pending = None

    def start_epoch(self, batch, punct, fault: Fault | None) -> None:
        self._pending = (batch, punct, fault)

    def join_epoch(self, timeout: float | None):
        batch, punct, fault = self._pending
        self._pending = None
        if fault is not None:
            _apply_fault(self.core, batch, fault)
        return self.core.run_epoch(batch, punct)

    def replay_epoch(self, batch, punct) -> None:
        self.core.run_epoch(batch, punct)

    def snapshot(self) -> EngineCheckpoint:
        return self.core.checkpoint()

    def restore(self, cp: EngineCheckpoint) -> None:
        self.core.restore(cp)

    def stats(self):
        return self.core.stats()

    def revise(self, revisions) -> None:
        self.core.revise(revisions)

    def take_feedback(self):
        return self.core.take_feedback()

    def apply_feedback(self, items) -> None:
        self.core.apply_feedback(items)

    def finish(self):
        return self.core.finish()

    def close(self, abandon: bool = False) -> None:
        self._pending = None


class _ThreadWorker:
    """One shard on a dedicated single-thread executor.

    A hung epoch cannot be killed (Python threads are uninterruptible),
    but it *can* be abandoned: the supervisor stops waiting, leaves the
    thread to finish its sleep, and rebuilds the shard on a fresh
    executor from the last checkpoint.
    """

    def __init__(self, core: _ShardCore) -> None:
        self.core = core
        self.pool = ThreadPoolExecutor(max_workers=1)
        self.future = None

    def _epoch(self, batch, punct, fault: Fault | None):
        if fault is not None:
            _apply_fault(self.core, batch, fault)
        return self.core.run_epoch(batch, punct)

    def start_epoch(self, batch, punct, fault: Fault | None) -> None:
        self.future = self.pool.submit(self._epoch, batch, punct, fault)

    def join_epoch(self, timeout: float | None):
        try:
            return self.future.result(timeout=timeout)
        except FutureTimeoutError:
            raise _WorkerHung(
                f"worker hung: no epoch result within {timeout}s"
            ) from None

    def replay_epoch(self, batch, punct) -> None:
        self.core.run_epoch(batch, punct)

    def snapshot(self) -> EngineCheckpoint:
        return self.core.checkpoint()

    def restore(self, cp: EngineCheckpoint) -> None:
        self.core.restore(cp)

    def stats(self):
        # Called by the coordinator between epochs, when the pool thread
        # is idle — same lockstep discipline as snapshot().
        return self.core.stats()

    def revise(self, revisions) -> None:
        self.core.revise(revisions)

    def take_feedback(self):
        # Coordinator-only call between epochs (the pool thread is idle).
        return self.core.take_feedback()

    def apply_feedback(self, items) -> None:
        self.core.apply_feedback(items)

    def finish(self):
        return self.core.finish()

    def close(self, abandon: bool = False) -> None:
        self.pool.shutdown(wait=not abandon)


def _process_worker_main(
    conn, ops, input_name, output_name, batch_size, observe=None,
    representation="tuple", column_backend=None,
) -> None:
    """Forked child: serve epoch/snapshot/restore/finish commands.

    A ``crash`` fault is a real process death (``os._exit``), not an
    exception — the parent observes it as EOF on the result pipe,
    exactly like a segfaulted or OOM-killed worker.
    """
    core = _ShardCore(
        ops, input_name, output_name, batch_size, observe,
        representation, column_backend,
    )
    try:
        while True:
            cmd = conn.recv()
            tag = cmd[0]
            if tag == "epoch":
                _idx, batch, punct, fault = cmd[1:]
                if fault is not None:
                    core.feed_prefix(batch, len(batch) // 2)
                    if fault.kind == "hang":
                        time.sleep(fault.seconds)
                    os._exit(17)
                try:
                    produced, progress = core.run_epoch(batch, punct)
                except Exception as exc:
                    conn.send(
                        (
                            "error",
                            f"{type(exc).__name__}: {exc}",
                            traceback.format_exc(),
                        )
                    )
                    break
                conn.send(("ok", produced, progress))
            elif tag == "replay":
                _idx, batch, punct = cmd[1:]
                core.run_epoch(batch, punct)
                conn.send(("ok",))
            elif tag == "snapshot":
                conn.send(("ok", core.checkpoint()))
            elif tag == "restore":
                core.restore(cmd[1])
                conn.send(("ok",))
            elif tag == "stats":
                conn.send(("ok", core.stats()))
            elif tag == "revise":
                core.revise(cmd[1])
                conn.send(("ok",))
            elif tag == "take_feedback":
                conn.send(("ok", core.take_feedback()))
            elif tag == "apply_feedback":
                core.apply_feedback(cmd[1])
                conn.send(("ok",))
            elif tag == "finish":
                conn.send(("ok", core.finish()))
                break
            else:  # pragma: no cover - protocol error
                break
    except EOFError:  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


class _ProcessWorker:
    """One shard in a long-lived forked child, driven over two pipes.

    The operator chain crosses via fork inheritance (plans hold
    closures, which never survive pickling); commands, batches,
    checkpoints, and results — all picklable — cross the pipes.
    """

    def __init__(
        self, ops, input_name: str, output_name: str, batch_size,
        observe=None, representation: str = "tuple",
        column_backend: str | None = None,
    ) -> None:
        ctx = multiprocessing.get_context("fork")
        # Two one-way pipes.  The child holds the *only* write end of
        # the result pipe, so a child death is an immediate EOF in the
        # parent even while sibling workers (forked later, inheriting
        # parent fds) are alive.
        self._cmd_recv, self._cmd_send = ctx.Pipe(duplex=False)
        self._res_recv, self._res_send = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(
            target=_process_worker_main,
            args=(
                _PipePair(self._cmd_recv, self._res_send),
                ops,
                input_name,
                output_name,
                batch_size,
                observe,
                representation,
                column_backend,
            ),
        )
        self.proc.start()
        self._cmd_recv.close()
        self._res_send.close()

    def _recv(self, timeout: float | None):
        if timeout is not None and not self._res_recv.poll(timeout):
            raise _WorkerHung(
                f"worker hung: no epoch result within {timeout}s"
            )
        try:
            reply = self._res_recv.recv()
        except EOFError:
            exitcode = self.proc.exitcode
            raise ShardError(
                "worker process died without a result "
                f"(exitcode={exitcode})"
            ) from None
        if reply[0] == "error":
            _tag, message, worker_tb = reply
            raise ShardError(message, worker_traceback=worker_tb)
        return reply[1:]

    def start_epoch(self, batch, punct, fault: Fault | None) -> None:
        self._cmd_send.send(("epoch", 0, list(batch), punct, fault))

    def join_epoch(self, timeout: float | None):
        produced, progress = self._recv(timeout)
        return produced, progress

    def replay_epoch(self, batch, punct) -> None:
        self._cmd_send.send(("replay", 0, list(batch), punct))
        self._recv(None)

    def snapshot(self) -> EngineCheckpoint:
        self._cmd_send.send(("snapshot",))
        (cp,) = self._recv(None)
        return cp

    def restore(self, cp: EngineCheckpoint) -> None:
        self._cmd_send.send(("restore", cp))
        self._recv(None)

    def stats(self):
        self._cmd_send.send(("stats",))
        (snap,) = self._recv(None)
        return snap

    def revise(self, revisions) -> None:
        # Revisions are picklable by design (names + scalars only);
        # the worker resolves them against its own operator instances.
        self._cmd_send.send(("revise", revisions))
        self._recv(None)

    def take_feedback(self):
        # Feedback punctuations are frozen value dataclasses — picklable.
        self._cmd_send.send(("take_feedback",))
        (items,) = self._recv(None)
        return items

    def apply_feedback(self, items) -> None:
        self._cmd_send.send(("apply_feedback", list(items)))
        self._recv(None)

    def finish(self):
        self._cmd_send.send(("finish",))
        (payload,) = self._recv(None)
        self.proc.join()
        return payload

    def close(self, abandon: bool = False) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join()
        self._cmd_send.close()
        self._res_recv.close()


class _PipePair:
    """Child-side view of the two one-way pipes as one connection."""

    def __init__(self, recv_conn, send_conn) -> None:
        self._recv_conn = recv_conn
        self._send_conn = send_conn

    def recv(self):
        return self._recv_conn.recv()

    def send(self, obj) -> None:
        self._send_conn.send(obj)

    def close(self) -> None:
        self._recv_conn.close()
        self._send_conn.close()


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


class Supervisor:
    """Fault-tolerant driver for a :class:`ShardedEngine`.

    Parameters
    ----------
    engine:
        The sharded engine to supervise.  Its plan, partition, batch
        size, and backend are honoured; only its execution is replaced
        by the epoch-lockstep protocol.
    max_retries:
        Retries per (shard, epoch) before degrading to fewer shards.
    backoff_base, backoff_factor:
        Retry ``i`` (1-based) sleeps ``backoff_base * backoff_factor**(i-1)``
        seconds before rebuilding the shard.
    epoch_timeout:
        Seconds to wait for any shard's epoch result before treating the
        worker as hung.  ``None`` disables hang detection (crashes are
        still caught).
    checkpoint_every:
        Epoch interval between checkpoints.  ``1`` checkpoints every
        epoch (shortest replay, most snapshot traffic); larger values
        trade replay work for snapshot overhead.
    injector:
        Optional :class:`~repro.resilience.chaos.FaultInjector` whose
        shard-fault schedule is applied during the run.
    record_log:
        Optional :class:`~repro.replay.RecordLog`.  When attached, the
        coordinator journals every completed epoch (merged-order
        elements plus the broadcast feedback union) into it, and
        recovery replays a rebuilt shard from the *journal* — re-split
        through the partitioner from position zero, so position-stateful
        routing stays identical — instead of the in-memory epoch list.
        The log is cleared if graceful degradation restarts the run; a
        degraded-to-single run is not journaled.
    """

    def __init__(
        self,
        engine: ShardedEngine,
        max_retries: int = 3,
        backoff_base: float = 0.01,
        backoff_factor: float = 2.0,
        epoch_timeout: float | None = None,
        checkpoint_every: int = 1,
        injector: FaultInjector | None = None,
        record_log=None,
    ) -> None:
        if max_retries < 0:
            raise PlanError(f"max_retries must be >= 0; got {max_retries}")
        if checkpoint_every < 1:
            raise PlanError(
                f"checkpoint_every must be >= 1; got {checkpoint_every}"
            )
        self.engine = engine
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.epoch_timeout = epoch_timeout
        self.checkpoint_every = checkpoint_every
        self.injector = injector
        self.record_log = record_log
        self.report = SupervisorReport()
        self._attempts: dict[tuple[int, int], int] = {}
        self._tracer: Tracer | None = None
        self._run_started = 0.0

    # -- public entry ------------------------------------------------------

    def run(
        self, sources: Sequence[Source] | Mapping[str, Source]
    ) -> RunResult:
        """Execute under supervision; output matches a fault-free run."""
        self.report = SupervisorReport()
        self._attempts = {}
        engine = self.engine
        cfg = engine.observe_config
        self._run_started = time.perf_counter()
        # Coordinator-side trace: epoch rounds, checkpoints, recoveries
        # and replays nest under the "run" span, beside the per-shard
        # worker spans the engines record (same context discipline).
        self._tracer = (
            Tracer(cfg.context + ("run",), max_spans=cfg.max_spans)
            if cfg is not None and cfg.trace
            else None
        )
        st = engine._strategy
        if st.name == "single":
            return self._run_plain(engine.plan, engine.batch_size, sources)
        by_name = resolve_sources(engine.plan, sources)
        elements = list(by_name[st.input_name].events())
        while True:
            try:
                return self._run_sharded(engine, elements)
            except _DegradeSignal as sig:
                n = engine._strategy.routing.n_shards
                if n <= 1:
                    self.report.degraded_to = "single"
                    self.report.events.append(
                        f"degraded to single engine after: {sig.cause}"
                    )
                    return self._run_plain(
                        self.engine.plan,
                        self.engine.batch_size,
                        sources,
                    )
                narrowed = max(1, n // 2)
                self.report.degraded_to = f"shards={narrowed}"
                self.report.events.append(
                    f"degraded {n} -> {narrowed} shards after: {sig.cause}"
                )
                engine = ShardedEngine(
                    self.engine.plan,
                    self.engine.partition.narrowed(narrowed),
                    batch_size=self.engine.batch_size,
                    backend=self.engine.backend,
                    observe=self.engine.observe_config,
                    representation=self.engine.representation,
                    column_backend=self.engine.column_backend,
                )
                if engine._strategy.name == "single":
                    self.report.degraded_to = "single"
                    return self._run_plain(
                        self.engine.plan,
                        self.engine.batch_size,
                        sources,
                    )

    # -- supervised sharded run -------------------------------------------

    def _run_sharded(
        self, engine: ShardedEngine, elements: list[Element]
    ) -> RunResult:
        st = engine._strategy
        epochs = split_epochs(elements, st.routing)
        n = st.routing.n_shards
        log = self.record_log
        if log is not None:
            if log.n_epochs or log.dropped_revisions:
                # A degradation restarted the protocol: the journal must
                # describe the run that produces the output, not the
                # abandoned attempt.
                log.clear()
            log.meta.update(
                {
                    "batch_size": engine.batch_size,
                    "representation": engine.representation,
                    "column_backend": engine.column_backend,
                    "inputs": [st.input_name],
                    "outputs": [st.output_name],
                    "supervised": True,
                }
            )
        log_cursor = 0
        log_out = 0
        workers = [self._make_worker(engine, st, s) for s in range(n)]
        accepted: list[list[list[Element]]] = [[] for _ in range(n)]
        progress: list[list[float]] = [[] for _ in range(n)]
        cp_epoch = 0
        checkpoints = [w.snapshot() for w in workers]
        self.report.checkpoints += 1
        # Per-epoch log of the broadcast feedback union.  Recovery
        # replays re-apply it after each replayed epoch so a rebuilt
        # shard re-sheds exactly what the original run shed — recovery
        # must not un-shed.
        feedback_log: list[list] = []
        tracer = self._tracer
        try:
            for e, epoch in enumerate(epochs):
                epoch_started = time.perf_counter()
                for shard, worker in enumerate(workers):
                    worker.start_epoch(
                        epoch.batches[shard],
                        epoch.punct,
                        self._next_fault(shard, e),
                    )
                for shard in range(n):
                    while True:
                        try:
                            produced, prog = workers[shard].join_epoch(
                                self.epoch_timeout
                            )
                            break
                        except Exception as exc:
                            workers[shard] = self._recover(
                                engine,
                                st,
                                workers[shard],
                                shard,
                                e,
                                epochs,
                                cp_epoch,
                                checkpoints[shard],
                                exc,
                                feedback_log,
                            )
                            workers[shard].start_epoch(
                                epoch.batches[shard],
                                epoch.punct,
                                self._next_fault(shard, e),
                            )
                    accepted[shard].append(produced)
                    progress[shard].append(prog)
                # Every worker is quiescent: exchange feedback.  Any
                # advice a shard's operators emitted this epoch is
                # broadcast to all shards — a hot key is hot wherever
                # the partitioner routed it.  apply_feedback is
                # idempotent, so the originating shard re-installing its
                # own advice is a no-op.
                exchanged: list = []
                for worker in workers:
                    exchanged.extend(worker.take_feedback())
                if exchanged:
                    for worker in workers:
                        worker.apply_feedback(exchanged)
                feedback_log.append(exchanged)
                if log is not None:
                    # Journal the epoch only once every shard completed
                    # it, so the log never describes an epoch a recovery
                    # might still be replaying.  Output positions count
                    # coordinator-accepted elements (exact for the
                    # "local" strategy; partial-aggregate combines merge
                    # further, so treat them as diagnostics there).
                    from repro.replay.log import EpochRecord

                    count = sum(len(b) for b in epoch.batches) + (
                        1 if epoch.punct is not None else 0
                    )
                    log_out += sum(
                        len(accepted[s][e]) for s in range(n)
                    ) + (1 if epoch.punct is not None else 0)
                    log.append(
                        EpochRecord(
                            index=e,
                            elements=[
                                (st.input_name, el)
                                for el in elements[
                                    log_cursor : log_cursor + count
                                ]
                            ],
                            output_positions={st.output_name: log_out},
                            feedback=list(exchanged),
                            final=epoch.punct is None,
                        )
                    )
                    log_cursor += count
                if tracer is not None:
                    tracer.record(
                        f"epoch:{e}",
                        epoch_started,
                        time.perf_counter(),
                        epoch=e,
                        shards=n,
                    )
                if (e + 1) % self.checkpoint_every == 0 and e + 1 < len(
                    epochs
                ):
                    if tracer is None:
                        checkpoints = [w.snapshot() for w in workers]
                    else:
                        with tracer.span(f"checkpoint:{e + 1}", epoch=e + 1):
                            checkpoints = [w.snapshot() for w in workers]
                    cp_epoch = e + 1
                    self.report.checkpoints += 1
            runs: list[_ShardRun] = []
            for shard, worker in enumerate(workers):
                flush, _final_prog, metrics = worker.finish()
                runs.append(
                    _ShardRun(
                        accepted[shard], flush, progress[shard], metrics
                    )
                )
        finally:
            for worker in workers:
                worker.close(abandon=True)
        combined = engine._combine(epochs, runs)
        metrics = merge_metrics(run.metrics for run in runs)
        self._publish(metrics)
        return RunResult(outputs={st.output_name: combined}, metrics=metrics)

    def _next_fault(self, shard: int, epoch: int) -> Fault | None:
        attempt = self._attempts.get((shard, epoch), 0)
        self._attempts[(shard, epoch)] = attempt + 1
        if self.injector is None:
            return None
        return self.injector.fault_for(shard, epoch, attempt)

    def _make_worker(self, engine: ShardedEngine, st: _Strategy, shard: int):
        ops = _fresh_ops(st)
        observe = engine._shard_observe(shard)
        if engine.backend == "process":
            return _ProcessWorker(
                ops, st.input_name, st.output_name, engine.batch_size,
                observe, engine.representation, engine.column_backend,
            )
        core = _ShardCore(
            ops, st.input_name, st.output_name, engine.batch_size,
            observe, engine.representation, engine.column_backend,
        )
        if engine.backend == "thread":
            return _ThreadWorker(core)
        return _InlineWorker(core)

    def _recover(
        self,
        engine: ShardedEngine,
        st: _Strategy,
        failed_worker,
        shard: int,
        epoch_index: int,
        epochs: list[Epoch],
        cp_epoch: int,
        checkpoint: EngineCheckpoint,
        exc: Exception,
        feedback_log: list[list] | None = None,
    ):
        """Rebuild ``shard`` from its last checkpoint and replay forward."""
        attempt = self._attempts.get((shard, epoch_index), 1)
        cause = ShardError(
            f"shard {shard} failed during epoch {epoch_index} "
            f"(attempt {attempt}): {type(exc).__name__}: {exc}",
            shard=shard,
            strategy=st.name,
            worker_traceback=getattr(exc, "worker_traceback", None),
        )
        failed_worker.close(abandon=True)
        if attempt > self.max_retries:
            raise _DegradeSignal(cause) from exc
        self.report.retries += 1
        self.report.events.append(str(cause))
        time.sleep(self.backoff_base * self.backoff_factor ** (attempt - 1))
        worker = self._make_worker(engine, st, shard)
        worker.restore(checkpoint)
        # Replay the epochs since the checkpoint.  Their output is
        # discarded — the coordinator already accepted it — which is
        # exactly the dedup that keeps replays invisible downstream.
        # Each replay is traced with ``replay=True`` so a recovery run's
        # trace distinguishes re-executed epochs from first-run epochs.
        replay_epochs: Sequence[Epoch] = epochs
        feedback_source: Sequence[list] | None = feedback_log
        log = self.record_log
        if (
            log is not None
            and log.base_epoch == 0
            and log.n_epochs >= epoch_index
        ):
            # Log-backed recovery: rebuild the replay batches from the
            # durable journal instead of coordinator memory.  The whole
            # journaled stream is re-split through the partitioner from
            # position zero, so position-stateful routing (round-robin)
            # re-derives the original per-shard batches exactly.
            trace = [el for _name, el in log.all_elements(0, epoch_index)]
            replay_epochs = split_epochs(trace, st.routing)
            feedback_source = [
                entry.feedback for entry in log.entries(0, epoch_index)
            ]
        tracer = self._tracer
        for replay_index in range(cp_epoch, epoch_index):
            epoch = replay_epochs[replay_index]
            replay_started = time.perf_counter()
            worker.replay_epoch(epoch.batches[shard], epoch.punct)
            if feedback_source is not None and replay_index < len(
                feedback_source
            ):
                items = feedback_source[replay_index]
                if items:
                    # Re-install the feedback union exactly where the
                    # original run did, so the replayed epochs shed the
                    # same slice (idempotent against advice the restored
                    # checkpoint already carried).
                    worker.apply_feedback(items)
            self.report.replayed_epochs += 1
            if tracer is not None:
                tracer.record(
                    f"replay:{replay_index}",
                    replay_started,
                    time.perf_counter(),
                    shard=shard,
                    epoch=replay_index,
                    replay=True,
                    attempt=attempt,
                )
        # Replay re-emits only advice the original run already
        # broadcast (replay is deterministic), so drain and discard it
        # rather than re-broadcasting duplicates at the next boundary.
        worker.take_feedback()
        return worker

    # -- single-engine path ------------------------------------------------

    def _run_plain(
        self,
        plan: Plan,
        batch_size,
        sources: Sequence[Source] | Mapping[str, Source],
    ) -> RunResult:
        """Run (or re-run, after degradation) on one plain engine.

        Sources are restartable by contract, so a retry is a clean
        re-execution; faults here are whole-run failures (e.g. injected
        operator exceptions), retried up to ``max_retries`` times.
        """
        attempt = 0
        while True:
            try:
                result = Engine(
                    plan,
                    batch_size=batch_size,
                    observe=self.engine.observe_config,
                    representation=self.engine.representation,
                    column_backend=self.engine.column_backend,
                ).run(sources)
                self._publish(result.metrics)
                return result
            except Exception as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                self.report.retries += 1
                self.report.events.append(
                    f"single-engine run failed (attempt {attempt}): "
                    f"{type(exc).__name__}: {exc}"
                )
                time.sleep(
                    self.backoff_base
                    * self.backoff_factor ** (attempt - 1)
                )

    def _publish(self, metrics: MetricsRegistry) -> None:
        metrics.incr("supervisor.retries", self.report.retries)
        metrics.incr("supervisor.replayed_epochs", self.report.replayed_epochs)
        metrics.incr("supervisor.checkpoints", self.report.checkpoints)
        if self.report.degraded_to is not None:
            metrics.incr("supervisor.degradations", 1)
        tracer = self._tracer
        if tracer is None:
            return
        tracer.publish(metrics)
        cfg = self.engine.observe_config
        metrics.spans.append(
            Span(
                cfg.context + ("run",),
                self._run_started,
                time.perf_counter(),
                {
                    "supervised": True,
                    "retries": self.report.retries,
                    "replayed_epochs": self.report.replayed_epochs,
                    "checkpoints": self.report.checkpoints,
                    "degraded_to": self.report.degraded_to,
                },
            )
        )
        metrics.spans.sort(key=lambda span: span.start)
