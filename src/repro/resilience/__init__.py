"""Fault-tolerant execution (PR 4 / milestone M4).

Public surface:

* the operator ``snapshot()/restore()`` protocol plus
  :class:`~repro.core.engine.EngineCheckpoint` — epoch-aligned engine
  checkpoints (re-exported here for convenience);
* :class:`~repro.resilience.supervisor.Supervisor` — epoch-lockstep
  shard supervision over a :class:`~repro.parallel.sharded.ShardedEngine`
  with checkpoint/replay recovery and graceful degradation;
* :class:`~repro.resilience.chaos.FaultInjector` — seeded deterministic
  fault schedules (shard crashes/hangs, operator exceptions, stream
  perturbations) for the chaos suite;
* :class:`~repro.resilience.overload.OverloadGuard` — live ingress
  admission control wiring bounded queues and the shedding controllers
  into the push engine.
"""

from repro.core.engine import EngineCheckpoint
from repro.errors import ShardError
from repro.resilience.chaos import (
    Fault,
    FaultInjector,
    FaultyOperator,
    InjectedFault,
)
from repro.resilience.overload import OverloadGuard
from repro.resilience.supervisor import Supervisor, SupervisorReport

__all__ = [
    "EngineCheckpoint",
    "ShardError",
    "Fault",
    "FaultInjector",
    "FaultyOperator",
    "InjectedFault",
    "OverloadGuard",
    "Supervisor",
    "SupervisorReport",
]
